//! Smoke tests of every figure's experimental pathway at toy scale: the
//! qualitative shapes the paper reports must already be visible on small
//! inputs, and the harness plumbing (suite registry, method runners,
//! stats) must hold together.

use diggerbees::baselines::bfs;
use diggerbees::baselines::cpu_ws::{self, CpuWsConfig, CpuWsStyle};
use diggerbees::baselines::nvg::{self, NvgConfig};
use diggerbees::core::{run_sim, DiggerBeesConfig, StackLevels, VictimPolicy};
use diggerbees::gen::grid;
use diggerbees::gen::Suite;
use diggerbees::graph::sources::select_sources;
use diggerbees::sim::MachineModel;

/// Fig. 5/6 pathway: methods produce comparable MTEPS and NVG-DFS fails
/// on a deep graph while unordered methods sail through.
#[test]
fn fig5_pathway_nvg_fails_where_diggerbees_succeeds() {
    let h100 = MachineModel::h100();
    let g = grid::long_path(60_000);
    let nvg = nvg::run(
        &g,
        0,
        &NvgConfig {
            memory_budget_bytes: 1 << 20,
            ..Default::default()
        },
        &h100,
    );
    assert!(
        nvg.is_err(),
        "path-tracking NVG must exhaust memory on deep paths"
    );
    let db = run_sim(&g, 0, &DiggerBeesConfig::v4(h100.sm_count), &h100);
    assert_eq!(db.stats.vertices_visited, 60_000);
    assert!(db.mteps > 0.0);
}

/// Fig. 6 pathway: the BFS-vs-DFS crossover by graph depth.
#[test]
fn fig6_pathway_depth_crossover() {
    let h100 = MachineModel::h100();
    // Deep: a large sparse lattice. Shallow: an R-MAT core.
    let deep = grid::grid_road(300, 300, 0.9, 0, 1);
    let shallow = diggerbees::gen::rmat::rmat(13, 16, Default::default(), 5);
    let cfg = DiggerBeesConfig::v4(h100.sm_count);

    let deep_root = select_sources(&deep, 1, 42)[0];
    let db_deep = run_sim(&deep, deep_root, &cfg, &h100);
    let bfs_deep = bfs::best_bfs(&deep, deep_root, &h100).1;
    assert!(
        db_deep.mteps > bfs_deep.mteps,
        "DFS must beat BFS on deep graphs: {} vs {}",
        db_deep.mteps,
        bfs_deep.mteps
    );

    let shallow_root = select_sources(&shallow, 1, 42)[0];
    let db_shallow = run_sim(&shallow, shallow_root, &cfg, &h100);
    let bfs_shallow = bfs::best_bfs(&shallow, shallow_root, &h100).1;
    assert!(
        bfs_shallow.mteps > db_shallow.mteps,
        "BFS must beat DFS on shallow social graphs: {} vs {}",
        bfs_shallow.mteps,
        db_shallow.mteps
    );
}

/// Fig. 7 pathway: H100 outruns A100 in seconds on the same workload.
#[test]
fn fig7_pathway_h100_scales_over_a100() {
    let g = grid::grid_road(200, 200, 0.9, 0, 3);
    let root = select_sources(&g, 1, 42)[0];
    let a100 = MachineModel::a100();
    let h100 = MachineModel::h100();
    let ra = run_sim(&g, root, &DiggerBeesConfig::v4(a100.sm_count), &a100);
    let rh = run_sim(&g, root, &DiggerBeesConfig::v4(h100.sm_count), &h100);
    assert!(
        rh.mteps > ra.mteps,
        "H100 ({}) must beat A100 ({})",
        rh.mteps,
        ra.mteps
    );
}

/// Fig. 8 pathway: the breakdown ordering v1 <= v2 <= v3 (allowing
/// slack), with inter-block stealing the decisive step.
#[test]
fn fig8_pathway_breakdown_ordering() {
    let h100 = MachineModel::h100();
    let g = grid::grid_road(250, 250, 0.9, 0, 8);
    let root = select_sources(&g, 1, 42)[0];
    let run = |cfg: DiggerBeesConfig| run_sim(&g, root, &cfg, &h100).mteps;
    let v1 = run(DiggerBeesConfig::v1());
    let v2 = run(DiggerBeesConfig::v2());
    let v3 = run(DiggerBeesConfig::v3());
    assert!(
        v2 > v1,
        "two-level stack must beat the global stack: {v2} vs {v1}"
    );
    assert!(
        v3 > 2.0 * v2,
        "inter-block stealing must be the big step: {v3} vs {v2}"
    );
}

/// Fig. 9 pathway: two-choice victim selection balances load at least as
/// well as random selection.
#[test]
fn fig9_pathway_two_choice_balances() {
    let h100 = MachineModel::h100();
    let g = diggerbees::gen::pref::pref_attach(40_000, 4, 0.6, 3);
    let root = select_sources(&g, 1, 42)[0];
    let cv = |policy| {
        let cfg = DiggerBeesConfig {
            victim_policy: policy,
            ..DiggerBeesConfig::v4(h100.sm_count)
        };
        run_sim(&g, root, &cfg, &h100).stats.block_load_cv()
    };
    let random = cv(VictimPolicy::Random);
    let two = cv(VictimPolicy::TwoChoice);
    assert!(
        two <= random * 1.15,
        "two-choice CV ({two:.3}) should not be worse than random ({random:.3})"
    );
}

/// Fig. 10 pathway: extreme cutoffs do not beat the defaults by much.
#[test]
fn fig10_pathway_default_cutoffs_reasonable() {
    let h100 = MachineModel::h100();
    let g = grid::grid_road(200, 200, 0.9, 0, 5);
    let root = select_sources(&g, 1, 42)[0];
    let run = |hot, cold| {
        let cfg = DiggerBeesConfig {
            hot_cutoff: hot,
            cold_cutoff: cold,
            ..DiggerBeesConfig::v4(h100.sm_count)
        };
        run_sim(&g, root, &cfg, &h100).mteps
    };
    let default = run(32, 64);
    let tiny = run(2, 2);
    let huge = run(128, 256); // cold steal batch 128 = the whole HotRing
    assert!(
        default > 0.6 * tiny.max(huge),
        "defaults badly beaten: {default} vs {tiny}/{huge}"
    );
}

/// Suite registry integrity used by all figure binaries.
#[test]
fn suite_registry_supports_harness() {
    assert_eq!(Suite::representative12().len(), 12);
    assert_eq!(Suite::representative6().len(), 6);
    assert!(Suite::full().len() >= 30);
    // Small members must build quickly and be usable end-to-end.
    let g = Suite::by_name("road_s").unwrap().build();
    let xeon = MachineModel::xeon_max();
    let r = cpu_ws::run(&g, 0, CpuWsStyle::Ckl, &CpuWsConfig::default(), &xeon);
    assert!(r.mteps > 0.0);
}

/// The one-level v1 stack pays global-memory cost: on identical small
/// inputs it must be slower than the two-level configuration per cycle.
#[test]
fn one_level_stack_costs_more() {
    let h100 = MachineModel::h100();
    let g = grid::long_path(5000);
    let base = DiggerBeesConfig {
        blocks: 1,
        warps_per_block: 1,
        inter_block: false,
        ..Default::default()
    };
    let one = run_sim(
        &g,
        0,
        &DiggerBeesConfig {
            stack: StackLevels::One,
            ..base
        },
        &h100,
    );
    let two = run_sim(&g, 0, &base, &h100);
    assert!(
        two.stats.cycles < one.stats.cycles,
        "two-level should be cheaper: {} vs {}",
        two.stats.cycles,
        one.stats.cycles
    );
}
