//! Model-based property tests for the lock-free StampedRing: arbitrary
//! single-threaded operation sequences must behave exactly like the
//! reference `HotRing`, and multi-threaded stress must conserve entries.

use diggerbees::core::lockfree::StampedRing;
use diggerbees::core::stack::HotRing;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Single-threaded: StampedRing == HotRing under arbitrary push /
    /// pop / take_from_tail sequences.
    #[test]
    fn stamped_ring_matches_reference(ops in proptest::collection::vec(0u8..4, 1..200)) {
        let lf = StampedRing::new(8);
        let mut reference = HotRing::new(8);
        let mut counter = 0u32;
        for op in ops {
            match op {
                0 | 1 => {
                    let e = (counter, counter.wrapping_mul(31));
                    counter += 1;
                    let a = lf.push(e);
                    let b = reference.push(e);
                    prop_assert_eq!(a.is_ok(), b.is_ok(), "push disagreement");
                }
                2 => {
                    let a = lf.pop();
                    let b = reference.pop();
                    prop_assert_eq!(a, b, "pop disagreement");
                }
                _ => {
                    // steal two from the tail when at least four remain
                    let a = lf.take_from_tail(2, 4, 1);
                    let b = if reference.len() >= 4 {
                        reference.take_from_tail(2)
                    } else {
                        Vec::new()
                    };
                    prop_assert_eq!(a, b, "steal disagreement");
                }
            }
            prop_assert_eq!(lf.len() as u64, reference.len(), "length disagreement");
        }
    }

    /// Multi-threaded conservation: under a random mix of owner ops and
    /// two thieves, every pushed entry is consumed exactly once.
    #[test]
    fn stamped_ring_concurrent_conservation(total in 200u32..2000, seed in 0u64..32) {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let ring = Arc::new(StampedRing::new(16));
        let consumed = Arc::new(AtomicU64::new(0));
        let sum = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let ring = Arc::clone(&ring);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::Acquire) < total as u64 {
                    for (v, _) in ring.take_from_tail(3, 2, 1) {
                        sum.fetch_add(v as u64, Ordering::Relaxed);
                        consumed.fetch_add(1, Ordering::AcqRel);
                    }
                    std::thread::yield_now();
                }
            }));
        }
        let mut pushed = 0u32;
        let mut rng = seed.wrapping_add(0x9e3779b97f4a7c15);
        while pushed < total {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if ring.push((pushed, 0)).is_ok() {
                pushed += 1;
            } else if let Some((v, _)) = ring.pop() {
                sum.fetch_add(v as u64, Ordering::Relaxed);
                consumed.fetch_add(1, Ordering::AcqRel);
            }
            if rng % 5 == 0 {
                if let Some((v, _)) = ring.pop() {
                    sum.fetch_add(v as u64, Ordering::Relaxed);
                    consumed.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
        while consumed.load(Ordering::Acquire) < total as u64 {
            if let Some((v, _)) = ring.pop() {
                sum.fetch_add(v as u64, Ordering::Relaxed);
                consumed.fetch_add(1, Ordering::AcqRel);
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(consumed.load(Ordering::Relaxed), total as u64);
        let expect: u64 = (total as u64 - 1) * total as u64 / 2;
        prop_assert_eq!(sum.load(Ordering::Relaxed), expect, "entries lost or duplicated");
    }
}
