//! Property-based tests over random graphs: the engines' output
//! contracts hold for *arbitrary* inputs, not just the curated families,
//! and the two-level stack never loses or duplicates entries under
//! arbitrary operation sequences (model-based testing against a
//! reference stack).

use diggerbees::baselines::cpu_ws::{self, CpuWsConfig, CpuWsStyle};
use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::core::stack::{ColdSeg, Entry, HotRing};
use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::graph::builder::from_edge_list;
use diggerbees::graph::traversal::reachable_set;
use diggerbees::graph::validate::{check_reachability, check_spanning_tree};
use diggerbees::graph::CsrGraph;
use diggerbees::sim::MachineModel;
use proptest::prelude::*;

fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 1..max_m)
            .prop_map(move |edges| from_edge_list(n, &edges, false))
    })
}

fn small_cfg(seed: u64) -> DiggerBeesConfig {
    DiggerBeesConfig {
        blocks: 3,
        warps_per_block: 2,
        hot_size: 8,
        hot_cutoff: 4,
        cold_cutoff: 4,
        flush_batch: 4,
        seed,
        ..Default::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn sim_engine_valid_on_arbitrary_graphs(g in arb_graph(60, 150), root in 0u32..60, seed in 0u64..1000) {
        prop_assume!((root as usize) < g.num_vertices());
        let r = run_sim(&g, root, &small_cfg(seed), &MachineModel::h100());
        check_reachability(&g, root, &r.visited).unwrap();
        check_spanning_tree(&g, root, &r.visited, &r.parent).unwrap();
    }

    #[test]
    fn native_engine_valid_on_arbitrary_graphs(g in arb_graph(50, 120), root in 0u32..50) {
        prop_assume!((root as usize) < g.num_vertices());
        let r = NativeEngine::new(NativeConfig { algo: small_cfg(7) }).run(&g, root);
        check_reachability(&g, root, &r.visited).unwrap();
        check_spanning_tree(&g, root, &r.visited, &r.parent).unwrap();
    }

    #[test]
    fn cpu_ws_visits_exactly_reachable(g in arb_graph(60, 150), root in 0u32..60) {
        prop_assume!((root as usize) < g.num_vertices());
        let truth = reachable_set(&g, root);
        for style in [CpuWsStyle::Ckl, CpuWsStyle::Acr] {
            let r = cpu_ws::run(&g, root, style, &CpuWsConfig::default(), &MachineModel::xeon_max());
            prop_assert_eq!(&r.visited, &truth);
        }
    }

    /// Model-based test: an arbitrary interleaving of push/pop/steal/
    /// flush/refill over HotRing + ColdSeg conserves the multiset of
    /// entries (nothing lost, nothing duplicated) and respects LIFO
    /// semantics at the owner end.
    #[test]
    fn two_level_stack_conserves_entries(ops in proptest::collection::vec(0u8..6, 1..300)) {
        let mut hot = HotRing::new(8);
        let mut cold = ColdSeg::new(4); // tiny: forces spill coverage
        let mut stolen: Vec<Entry> = Vec::new();
        let mut popped: Vec<Entry> = Vec::new();
        let mut pushed = 0u32;

        for op in ops {
            match op {
                // push (flush first if full — the engine's protocol)
                0 | 1 => {
                    if hot.is_full() {
                        let batch = hot.take_from_tail(4);
                        cold.push_top(&batch);
                    }
                    hot.push((pushed, pushed)).unwrap();
                    pushed += 1;
                }
                // pop (refill if empty)
                2 => {
                    if hot.is_empty() && !cold.is_empty() {
                        let batch = cold.take_from_top(4);
                        hot.push_batch(&batch);
                    }
                    if let Some(e) = hot.pop() {
                        popped.push(e);
                    }
                }
                // intra steal from hot tail
                3 => {
                    if hot.len() >= 4 {
                        stolen.extend(hot.take_from_tail(2));
                    }
                }
                // inter steal from cold bottom
                4 => {
                    if cold.len() >= 2 {
                        stolen.extend(cold.take_from_bottom(1));
                    }
                }
                // flush
                _ => {
                    if hot.len() >= 4 {
                        let batch = hot.take_from_tail(2);
                        cold.push_top(&batch);
                    }
                }
            }
        }
        // Drain everything left.
        loop {
            if hot.is_empty() {
                if cold.is_empty() {
                    break;
                }
                let batch = cold.take_from_top(4);
                hot.push_batch(&batch);
            }
            popped.push(hot.pop().unwrap());
        }
        let mut all: Vec<u32> = popped.iter().chain(stolen.iter()).map(|e| e.0).collect();
        all.sort_unstable();
        let expect: Vec<u32> = (0..pushed).collect();
        prop_assert_eq!(all, expect, "entries lost or duplicated");
    }

    #[test]
    fn hotring_is_lifo_without_steals(values in proptest::collection::vec(any::<u32>(), 1..64)) {
        let mut hot = HotRing::new(64);
        for (i, &v) in values.iter().enumerate() {
            hot.push((v, i as u32)).unwrap();
        }
        for (i, &v) in values.iter().enumerate().rev() {
            prop_assert_eq!(hot.pop(), Some((v, i as u32)));
        }
        prop_assert!(hot.is_empty());
    }
}
