//! Cross-crate application tests: the §1 use cases running on generated
//! workloads with both DiggerBees engines underneath.

use diggerbees::apps::articulation::{articulation_points, verify_articulation};
use diggerbees::apps::forest::{spanning_forest, verify_forest, NativeDfs, SimDfs};
use diggerbees::apps::reach::ReachOracle;
use diggerbees::apps::scc::{scc, verify_scc};
use diggerbees::apps::topo::{is_dag, topo_sort, verify_topo_order, TopoResult};
use diggerbees::core::native::NativeConfig;
use diggerbees::core::DiggerBeesConfig;
use diggerbees::gen::{grid, mesh, pref, rmat};
use diggerbees::graph::traversal::reachable_set;
use diggerbees::sim::MachineModel;

fn small_algo() -> DiggerBeesConfig {
    DiggerBeesConfig {
        blocks: 2,
        warps_per_block: 2,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        ..Default::default()
    }
}

#[test]
fn citation_dags_topo_sort_and_scc_agree() {
    for seed in [1u64, 2, 3] {
        let g = pref::citation_dag(800, 3, seed);
        // A citation DAG is acyclic: topo sort succeeds…
        let TopoResult::Order(order) = topo_sort(&g) else {
            panic!("citation DAG must be acyclic");
        };
        verify_topo_order(&g, &order).unwrap();
        // …and every SCC is a singleton.
        let r = scc(&g);
        assert_eq!(r.count as usize, g.num_vertices());
    }
}

#[test]
fn rmat_dag_construction_is_acyclic() {
    let und = rmat::rmat(10, 6, rmat::RmatParams::default(), 9);
    let dag = rmat::to_dag(&und);
    assert!(is_dag(&dag));
}

#[test]
fn directed_cycles_are_caught_and_grouped() {
    // Ring of rings: 3 cycles chained by one-way bridges.
    let mut b = diggerbees::graph::GraphBuilder::directed(9);
    for c in 0..3u32 {
        let base = c * 3;
        b.edge(base, base + 1);
        b.edge(base + 1, base + 2);
        b.edge(base + 2, base);
        if c < 2 {
            b.edge(base, base + 3);
        }
    }
    let g = b.build();
    assert!(!is_dag(&g));
    let r = scc(&g);
    assert_eq!(r.count, 3);
    verify_scc(&g, &r).unwrap();
}

#[test]
fn mesh_articulation_matches_brute_force() {
    let g = mesh::bubbles(6, 8, 0, 3); // chain of rings: junctions are cuts
    let r = articulation_points(&g);
    verify_articulation(&g, &r).unwrap();
    assert!(
        r.articulation.iter().any(|&b| b),
        "bubble junctions are articulation points"
    );
}

#[test]
fn forest_on_fragmented_road_network() {
    // A heavily thinned grid fragments into many components.
    let g = grid::grid_road(40, 40, 0.45, 0, 11);
    let native = NativeDfs(NativeConfig { algo: small_algo() });
    let f = spanning_forest(&g, &native);
    assert!(f.num_components() > 1, "thin grid should fragment");
    verify_forest(&g, &f).unwrap();

    // The simulated engine builds an equivalent partition.
    let sim = SimDfs {
        cfg: small_algo(),
        machine: MachineModel::h100(),
    };
    let f2 = spanning_forest(&g, &sim);
    assert_eq!(f.num_components(), f2.num_components());
    for v in 0..g.num_vertices() {
        // Same partition (components discovered in the same root order).
        assert_eq!(f.comp[v], f2.comp[v]);
    }
}

#[test]
fn oracle_on_social_graph() {
    let g = rmat::rmat(10, 8, rmat::RmatParams::default(), 4);
    let hubs: Vec<u32> = (0..4)
        .map(|i| {
            (0..g.num_vertices() as u32)
                .filter(|&v| v % 4 == i)
                .max_by_key(|&v| g.degree(v))
                .unwrap()
        })
        .collect();
    let native = NativeDfs(NativeConfig { algo: small_algo() });
    let oracle = ReachOracle::build(&g, &hubs, &native);
    for (i, &h) in hubs.iter().enumerate() {
        let truth = reachable_set(&g, h);
        assert_eq!(oracle.coverage(i), truth.iter().filter(|&&b| b).count());
    }
}
