//! Cross-checks the tracing subsystem against the engines' own
//! statistics: on one run, the `CountingTracer` totals derived from the
//! event stream must agree with the `SimStats` counters the engine
//! accumulates itself, and the event stream written through the Chrome
//! exporter must survive a parse round trip.

use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::core::native_lockfree::LockFreeEngine;
use diggerbees::core::{run_sim_traced, DiggerBeesConfig};
use diggerbees::graph::{CsrGraph, GraphBuilder};
use diggerbees::sim::MachineModel;
use diggerbees::trace::chrome::{chrome_trace_document, events_from_document};
use diggerbees::trace::json::Value;
use diggerbees::trace::{CounterSnapshot, CountingTracer, EventKind, RingBufferTracer};

fn grid(w: u32, h: u32) -> CsrGraph {
    let mut b = GraphBuilder::undirected(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.edge(y * w + x, y * w + x + 1);
            }
            if y + 1 < h {
                b.edge(y * w + x, (y + 1) * w + x);
            }
        }
    }
    b.build()
}

fn sim_cfg() -> DiggerBeesConfig {
    DiggerBeesConfig {
        blocks: 8,
        warps_per_block: 4,
        ..Default::default()
    }
}

/// The identities every engine's event stream must satisfy against the
/// stats of the same run.
fn check_against_stats(snap: &CounterSnapshot, stats: &diggerbees::sim::SimStats) {
    assert_eq!(
        snap.pushes, stats.vertices_visited,
        "one Push per visited vertex"
    );
    assert_eq!(snap.pops, snap.pushes, "every pushed entry eventually dies");
    assert_eq!(snap.flushes, stats.flushes);
    assert_eq!(snap.refills, stats.refills);
    assert_eq!(snap.steals_intra, stats.steals_intra);
    assert_eq!(snap.steals_inter, stats.steals_inter);
    assert_eq!(snap.steal_fails, stats.steal_failures);
    assert_eq!(snap.kernel_phases, 2, "one Start and one Finish");
}

#[test]
fn sim_trace_counts_match_stats() {
    let g = grid(60, 60);
    let m = MachineModel::h100();
    let cfg = sim_cfg();
    let tracer = CountingTracer::new(cfg.blocks as usize);
    let r = run_sim_traced(&g, 0, &cfg, &m, &tracer);
    let snap = tracer.snapshot();
    check_against_stats(&snap, &r.stats);
    // The sim engine's per-block task counts are exactly the per-block
    // Push histogram — the identity `trace_methods` relies on.
    assert_eq!(snap.pushes_per_block, r.stats.tasks_per_block);
}

#[test]
fn sim_trace_is_deterministic_on_fixed_seed() {
    let g = grid(40, 40);
    let m = MachineModel::h100();
    let cfg = sim_cfg();
    let (t1, t2) = (
        CountingTracer::new(cfg.blocks as usize),
        CountingTracer::new(cfg.blocks as usize),
    );
    run_sim_traced(&g, 0, &cfg, &m, &t1);
    run_sim_traced(&g, 0, &cfg, &m, &t2);
    assert_eq!(t1.snapshot(), t2.snapshot());
}

#[test]
fn sim_ring_stream_is_ordered_and_chrome_round_trips() {
    let g = grid(25, 25);
    let m = MachineModel::h100();
    let cfg = DiggerBeesConfig {
        blocks: 2,
        warps_per_block: 2,
        ..Default::default()
    };
    let tracer = RingBufferTracer::new(1 << 20);
    let r = run_sim_traced(&g, 0, &cfg, &m, &tracer);
    assert_eq!(tracer.dropped(), 0, "ring sized for the whole run");
    let events = tracer.snapshot();

    // The DES processes warps in cycle order, so the stream is globally
    // nondecreasing in time.
    assert!(events.windows(2).all(|w| w[0].cycle <= w[1].cycle));

    // Count identities also hold for the raw stream.
    let pushes = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Push { .. }))
        .count();
    assert_eq!(pushes as u64, r.stats.vertices_visited);

    // Exporter round trip over a real engine stream.
    let text = chrome_trace_document(&events).to_json();
    let back = events_from_document(&Value::parse(&text).expect("valid JSON"));
    assert_eq!(back, events);
}

#[test]
fn native_trace_counts_match_stats() {
    let g = grid(50, 50);
    let algo = DiggerBeesConfig {
        blocks: 2,
        warps_per_block: 2,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        ..Default::default()
    };
    let tracer = CountingTracer::new(algo.blocks as usize);
    let out = NativeEngine::new(NativeConfig { algo }).run_traced(&g, 0, &tracer);
    check_against_stats(&tracer.snapshot(), &out.stats);
}

#[test]
fn lockfree_trace_counts_match_stats() {
    let g = grid(50, 50);
    let algo = DiggerBeesConfig {
        blocks: 2,
        warps_per_block: 2,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        ..Default::default()
    };
    let tracer = CountingTracer::new(algo.blocks as usize);
    let out = LockFreeEngine::new(NativeConfig { algo }).run_traced(&g, 0, &tracer);
    check_against_stats(&tracer.snapshot(), &out.stats);
}
