//! Determinism: every simulated engine is bit-for-bit reproducible for a
//! fixed seed, and seeds actually matter where randomness is involved.

use diggerbees::baselines::bfs::{self, BfsFlavor};
use diggerbees::baselines::cpu_ws::{self, CpuWsConfig, CpuWsStyle};
use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::gen::grid::grid_road;
use diggerbees::sim::MachineModel;

fn cfg(seed: u64) -> DiggerBeesConfig {
    DiggerBeesConfig {
        blocks: 6,
        warps_per_block: 4,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        seed,
        ..Default::default()
    }
}

#[test]
fn diggerbees_sim_is_reproducible() {
    let g = grid_road(50, 50, 0.9, 3, 4);
    let h100 = MachineModel::h100();
    let a = run_sim(&g, 0, &cfg(1), &h100);
    let b = run_sim(&g, 0, &cfg(1), &h100);
    assert_eq!(a.visited, b.visited);
    assert_eq!(a.parent, b.parent);
    assert_eq!(a.stats.cycles, b.stats.cycles);
    assert_eq!(a.stats.steals_intra, b.stats.steals_intra);
    assert_eq!(a.stats.steals_inter, b.stats.steals_inter);
    assert_eq!(a.stats.steal_failures, b.stats.steal_failures);
    assert_eq!(a.stats.tasks_per_block, b.stats.tasks_per_block);
    assert_eq!(a.trace, b.trace);
}

#[test]
fn seed_changes_the_schedule_not_the_contract() {
    let g = grid_road(50, 50, 0.9, 3, 4);
    let h100 = MachineModel::h100();
    let a = run_sim(&g, 0, &cfg(1), &h100);
    let b = run_sim(&g, 0, &cfg(2), &h100);
    // Same reachability either way…
    assert_eq!(a.visited, b.visited);
    // …but victim sampling differs, so the schedules should diverge.
    assert!(
        a.stats.cycles != b.stats.cycles || a.parent != b.parent,
        "different seeds should produce different schedules"
    );
}

#[test]
fn cpu_baselines_are_reproducible() {
    let g = grid_road(40, 40, 0.9, 2, 9);
    let xeon = MachineModel::xeon_max();
    for style in [CpuWsStyle::Ckl, CpuWsStyle::Acr] {
        let a = cpu_ws::run(&g, 0, style, &CpuWsConfig::default(), &xeon);
        let b = cpu_ws::run(&g, 0, style, &CpuWsConfig::default(), &xeon);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.visited, b.visited);
        assert_eq!(a.edges_traversed, b.edges_traversed);
    }
}

#[test]
fn bfs_models_are_reproducible() {
    let g = grid_road(40, 40, 0.9, 2, 9);
    let h100 = MachineModel::h100();
    for flavor in [BfsFlavor::Gunrock, BfsFlavor::BerryBees] {
        let a = bfs::run(&g, 0, flavor, &h100);
        let b = bfs::run(&g, 0, flavor, &h100);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.level, b.level);
    }
}

#[test]
fn machine_model_changes_cycles_not_outputs() {
    let g = grid_road(40, 40, 0.9, 2, 9);
    let a = run_sim(&g, 0, &cfg(1), &MachineModel::a100());
    let h = run_sim(&g, 0, &cfg(1), &MachineModel::h100());
    assert_eq!(a.visited, h.visited);
    assert_ne!(
        a.stats.cycles, h.stats.cycles,
        "different machines, different cycles"
    );
    // H100 must be at least as fast in wall-clock terms.
    let a_s = MachineModel::a100().cycles_to_seconds(a.stats.cycles);
    let h_s = MachineModel::h100().cycles_to_seconds(h.stats.cycles);
    assert!(h_s < a_s * 1.2, "H100 regressed vs A100: {h_s} vs {a_s}");
}
