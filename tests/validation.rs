//! Output-contract tests: every tree-producing engine satisfies the
//! spanning-tree contract (Table 2's `visited` + `parent` semantics) on
//! every generator family, and the strict DFS-tree property holds for
//! the ordered methods.

use diggerbees::baselines::deque_dfs;
use diggerbees::baselines::nvg::{self, NvgConfig};
use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::core::{run_sim, DiggerBeesConfig, StackLevels, VictimPolicy};
use diggerbees::gen::{grid, mesh, rmat};
use diggerbees::graph::validate::{
    check_dfs_tree_property, check_reachability, check_spanning_tree,
};
use diggerbees::graph::{serial_dfs, CsrGraph};
use diggerbees::sim::MachineModel;

fn graphs() -> Vec<CsrGraph> {
    vec![
        grid::grid_road(35, 35, 0.9, 2, 1),
        mesh::delaunay_mesh(25, 25, 2),
        rmat::rmat(9, 6, rmat::RmatParams::default(), 8),
        grid::long_path(3000),
        grid::kary_tree(2, 10),
    ]
}

fn cfgs() -> Vec<DiggerBeesConfig> {
    let base = DiggerBeesConfig {
        blocks: 3,
        warps_per_block: 3,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        ..Default::default()
    };
    vec![
        base,
        DiggerBeesConfig {
            stack: StackLevels::One,
            blocks: 1,
            inter_block: false,
            ..base
        },
        DiggerBeesConfig {
            victim_policy: VictimPolicy::Random,
            ..base
        },
        DiggerBeesConfig {
            hot_cutoff: 2,
            cold_cutoff: 2,
            ..base
        },
        DiggerBeesConfig {
            hot_cutoff: 16,
            cold_cutoff: 16,
            hot_size: 32,
            ..base
        },
    ]
}

#[test]
fn sim_engine_contract_over_configs() {
    let h100 = MachineModel::h100();
    for g in graphs() {
        for cfg in cfgs() {
            let r = run_sim(&g, 0, &cfg, &h100);
            check_reachability(&g, 0, &r.visited).unwrap();
            check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
            // Conservation: every visited vertex was counted once.
            assert_eq!(
                r.stats.vertices_visited,
                r.visited.iter().filter(|&&b| b).count() as u64
            );
            assert_eq!(
                r.stats.tasks_per_block.iter().sum::<u64>(),
                r.stats.vertices_visited,
                "per-block task counts must sum to visited vertices"
            );
        }
    }
}

#[test]
fn native_engine_contract_over_configs() {
    for g in graphs() {
        for cfg in cfgs().into_iter().take(3) {
            let r = NativeEngine::new(NativeConfig { algo: cfg }).run(&g, 0);
            check_reachability(&g, 0, &r.visited).unwrap();
            check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
            assert_eq!(
                r.stats.tasks_per_block.iter().sum::<u64>(),
                r.visited.iter().filter(|&&b| b).count() as u64
            );
        }
    }
}

#[test]
fn serial_and_nvg_satisfy_strict_dfs_property() {
    let h100 = MachineModel::h100();
    for g in graphs() {
        if g.is_directed() {
            continue;
        }
        let s = serial_dfs(&g, 0);
        check_dfs_tree_property(&g, 0, &s.visited, &s.parent).unwrap();
        if let Ok(r) = nvg::run(&g, 0, &NvgConfig::default(), &h100) {
            check_dfs_tree_property(&g, 0, &r.visited, r.parent.as_ref().unwrap()).unwrap();
        }
    }
}

#[test]
fn deque_dfs_contract() {
    for g in graphs() {
        let r = deque_dfs::run(&g, 0, 3, 7);
        check_reachability(&g, 0, &r.visited).unwrap();
        check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
    }
}

#[test]
fn traversed_edges_equals_visited_degree_sum() {
    let h100 = MachineModel::h100();
    for g in graphs() {
        let cfg = cfgs()[0];
        let r = run_sim(&g, 0, &cfg, &h100);
        let want: u64 = (0..g.num_vertices() as u32)
            .filter(|&v| r.visited[v as usize])
            .map(|v| g.degree(v) as u64)
            .sum();
        assert_eq!(r.stats.edges_traversed, want, "TEPS numerator mismatch");
    }
}
