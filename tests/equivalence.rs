//! Cross-crate equivalence: every traversal method in the workspace
//! agrees on the reachable set, and the ordered methods agree on the
//! lexicographic order, across graphs from every generator family.

use diggerbees::baselines::bfs::{self, BfsFlavor};
use diggerbees::baselines::cpu_ws::{self, CpuWsConfig, CpuWsStyle};
use diggerbees::baselines::deque_dfs;
use diggerbees::baselines::nvg::{self, NvgConfig};
use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::gen::{grid, mesh, pref, rmat};
use diggerbees::graph::traversal::{bfs_levels, reachable_set};
use diggerbees::graph::{serial_dfs, CsrGraph};
use diggerbees::sim::MachineModel;

fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("grid", grid::grid_road(40, 40, 0.85, 3, 11)),
        ("mesh", mesh::delaunay_mesh(30, 30, 5)),
        ("bubbles", mesh::bubbles(30, 10, 15, 9)),
        ("rmat", rmat::rmat(10, 8, rmat::RmatParams::default(), 3)),
        ("pref", pref::pref_attach(900, 3, 0.5, 7)),
        ("comb", grid::comb(80, 4)),
        ("tree", grid::kary_tree(3, 7)),
    ]
}

fn small_db() -> DiggerBeesConfig {
    DiggerBeesConfig {
        blocks: 4,
        warps_per_block: 4,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        ..Default::default()
    }
}

#[test]
fn all_methods_agree_on_reachability() {
    let h100 = MachineModel::h100();
    let xeon = MachineModel::xeon_max();
    for (name, g) in test_graphs() {
        let sources = diggerbees::graph::sources::select_sources(&g, 2, 42);
        for &root in &sources {
            let truth = reachable_set(&g, root);

            let db = run_sim(&g, root, &small_db(), &h100);
            assert_eq!(db.visited, truth, "DiggerBees sim on {name} from {root}");

            let native = NativeEngine::new(NativeConfig { algo: small_db() }).run(&g, root);
            assert_eq!(
                native.visited, truth,
                "DiggerBees native on {name} from {root}"
            );

            let ckl = cpu_ws::run(&g, root, CpuWsStyle::Ckl, &CpuWsConfig::default(), &xeon);
            assert_eq!(ckl.visited, truth, "CKL on {name} from {root}");

            let acr = cpu_ws::run(&g, root, CpuWsStyle::Acr, &CpuWsConfig::default(), &xeon);
            assert_eq!(acr.visited, truth, "ACR on {name} from {root}");

            let gun = bfs::run(&g, root, BfsFlavor::Gunrock, &h100);
            assert_eq!(gun.visited, truth, "Gunrock on {name} from {root}");

            let berry = bfs::run(&g, root, BfsFlavor::BerryBees, &h100);
            assert_eq!(berry.visited, truth, "BerryBees on {name} from {root}");

            let dq = deque_dfs::run(&g, root, 3, 42);
            assert_eq!(dq.visited, truth, "deque DFS on {name} from {root}");
        }
    }
}

#[test]
fn nvg_matches_serial_lexicographic_order() {
    let h100 = MachineModel::h100();
    let cfg = NvgConfig::default();
    for (name, g) in test_graphs() {
        // Bound the work: skip graphs NVG legitimately fails on.
        match nvg::run(&g, 0, &cfg, &h100) {
            Ok(r) => {
                let want = serial_dfs(&g, 0);
                assert_eq!(
                    r.order.as_ref().unwrap(),
                    &want.order,
                    "NVG order differs from serial DFS on {name}"
                );
                assert_eq!(
                    r.parent.as_ref().unwrap(),
                    &want.parent,
                    "NVG parents differ from serial DFS on {name}"
                );
            }
            Err(e) => {
                assert!(
                    e.reason.contains("budget"),
                    "NVG failed on {name} for an unexpected reason: {e}"
                );
            }
        }
    }
}

#[test]
fn bfs_levels_match_reference_everywhere() {
    let h100 = MachineModel::h100();
    for (name, g) in test_graphs() {
        let (want, _) = bfs_levels(&g, 0);
        for flavor in [BfsFlavor::Gunrock, BfsFlavor::BerryBees] {
            let r = bfs::run(&g, 0, flavor, &h100);
            assert_eq!(r.level.as_ref().unwrap(), &want, "levels differ on {name}");
        }
    }
}

#[test]
fn directed_graphs_respect_arc_direction() {
    let g = pref::citation_dag(400, 3, 5);
    let h100 = MachineModel::h100();
    // In a citation DAG arcs point to older vertices; from the newest
    // vertex much is reachable, from vertex 0 nothing is.
    let truth_from_0 = reachable_set(&g, 0);
    assert_eq!(truth_from_0.iter().filter(|&&b| b).count(), 1);
    let db = run_sim(&g, 0, &small_db(), &h100);
    assert_eq!(db.visited, truth_from_0);

    let newest = (g.num_vertices() - 1) as u32;
    let truth = reachable_set(&g, newest);
    let db = run_sim(&g, newest, &small_db(), &h100);
    assert_eq!(db.visited, truth);
    let native = NativeEngine::new(NativeConfig { algo: small_db() }).run(&g, newest);
    assert_eq!(native.visited, truth);
}
