//! `diggerbees` — command-line traversal runner.
//!
//! ```text
//! diggerbees <graph> [options]
//!
//! <graph>                a suite name (euro_osm, ljournal, road_s, …)
//!                        or a path to a Matrix Market .mtx file
//! --method <m>           diggerbees (default) | serial | ckl | acr |
//!                        nvg | gunrock | berrybees | native | lockfree
//! --machine <m>          h100 (default) | a100 | xeon
//! --source <v>           source vertex (default: GAP-style pick)
//! --sources <n>          average over n GAP-style sources (default 1)
//! --blocks <n>           thread blocks (default: one per SM)
//! --warps <n>            warps per block (default 8)
//! --hot-cutoff <n>       intra-block steal threshold (default 32)
//! --cold-cutoff <n>      inter-block steal threshold (default 64)
//! --stats                print graph characterization first
//! ```
//!
//! Examples:
//!
//! ```text
//! diggerbees euro_osm
//! diggerbees ljournal --method berrybees
//! diggerbees my_graph.mtx --method native --blocks 4 --warps 2
//! ```

use diggerbees::baselines::bfs::{self, BfsFlavor};
use diggerbees::baselines::cpu_ws::{self, CpuWsConfig, CpuWsStyle};
use diggerbees::baselines::nvg::{self, NvgConfig};
use diggerbees::baselines::serial;
use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::core::native_lockfree::LockFreeEngine;
use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::gen::Suite;
use diggerbees::graph::{mm, sources::select_sources, stats::graph_stats, CsrGraph};
use diggerbees::sim::MachineModel;
use std::process::ExitCode;

struct Args {
    graph: String,
    method: String,
    machine: String,
    source: Option<u32>,
    sources: usize,
    blocks: Option<u32>,
    warps: u32,
    hot_cutoff: u32,
    cold_cutoff: u32,
    stats: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        method: "diggerbees".into(),
        machine: "h100".into(),
        source: None,
        sources: 1,
        blocks: None,
        warps: 8,
        hot_cutoff: 32,
        cold_cutoff: 64,
        stats: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--method" => args.method = take("--method")?,
            "--machine" => args.machine = take("--machine")?,
            "--source" => args.source = Some(parse_num(&take("--source")?)?),
            "--sources" => args.sources = parse_num(&take("--sources")?)? as usize,
            "--blocks" => args.blocks = Some(parse_num(&take("--blocks")?)?),
            "--warps" => args.warps = parse_num(&take("--warps")?)?,
            "--hot-cutoff" => args.hot_cutoff = parse_num(&take("--hot-cutoff")?)?,
            "--cold-cutoff" => args.cold_cutoff = parse_num(&take("--cold-cutoff")?)?,
            "--stats" => args.stats = true,
            "--help" | "-h" => {
                return Err("usage: diggerbees <graph> [--method m] [--machine m] \
                            [--source v] [--sources n] [--blocks n] [--warps n] \
                            [--hot-cutoff n] [--cold-cutoff n] [--stats]"
                    .into())
            }
            other if args.graph.is_empty() && !other.starts_with('-') => {
                args.graph = other.to_string();
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.graph.is_empty() {
        return Err("missing <graph> (a suite name or a .mtx path); --help for usage".into());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| format!("invalid number: {s}"))
}

fn load_graph(name: &str) -> Result<CsrGraph, String> {
    if name.ends_with(".mtx") {
        return mm::read_matrix_market_file(name).map_err(|e| e.to_string());
    }
    match Suite::by_name(name) {
        Some(spec) => Ok(spec.build()),
        None => {
            let known: Vec<&str> = Suite::full().iter().map(|s| s.name).collect();
            Err(format!("unknown graph '{name}'; known: {}", known.join(", ")))
        }
    }
}

fn machine(name: &str) -> Result<MachineModel, String> {
    match name {
        "h100" => Ok(MachineModel::h100()),
        "a100" => Ok(MachineModel::a100()),
        "xeon" => Ok(MachineModel::xeon_max()),
        other => Err(format!("unknown machine '{other}' (h100|a100|xeon)")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let g = match load_graph(&args.graph) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let m = match machine(&args.machine) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: {} vertices, {} edges ({:.1} MB CSR)",
        args.graph,
        g.num_vertices(),
        g.num_edges(),
        g.memory_bytes() as f64 / 1e6
    );

    let roots: Vec<u32> = match args.source {
        Some(s) => vec![s],
        None => select_sources(&g, args.sources, 42),
    };
    if args.stats {
        let s = graph_stats(&g, roots[0]);
        println!(
            "stats: avg deg {:.2}, max deg {}, skew {:.1}, BFS levels {}, DFS stack {}, reachable {}",
            s.avg_degree, s.max_degree, s.degree_skew, s.bfs_levels, s.dfs_max_stack, s.reachable
        );
    }

    let cfg = DiggerBeesConfig {
        blocks: args.blocks.unwrap_or(m.sm_count),
        warps_per_block: args.warps,
        hot_cutoff: args.hot_cutoff,
        cold_cutoff: args.cold_cutoff,
        ..Default::default()
    };

    let mut mteps_all = Vec::new();
    for &root in &roots {
        let label = args.method.as_str();
        let mteps = match label {
            "diggerbees" => {
                let r = run_sim(&g, root, &cfg, &m);
                println!(
                    "root {root}: {:.1} MTEPS, {} cycles, {} visited, steals {}+{}",
                    r.mteps,
                    r.stats.cycles,
                    r.stats.vertices_visited,
                    r.stats.steals_intra,
                    r.stats.steals_inter
                );
                Some(r.mteps)
            }
            "serial" => Some(serial::run(&g, root, &MachineModel::xeon_max()).mteps),
            "ckl" => Some(
                cpu_ws::run(&g, root, CpuWsStyle::Ckl, &CpuWsConfig::default(),
                            &MachineModel::xeon_max()).mteps,
            ),
            "acr" => Some(
                cpu_ws::run(&g, root, CpuWsStyle::Acr, &CpuWsConfig::default(),
                            &MachineModel::xeon_max()).mteps,
            ),
            "nvg" => match nvg::run(&g, root, &NvgConfig::default(), &m) {
                Ok(r) => Some(r.mteps),
                Err(e) => {
                    println!("root {root}: NVG-DFS failed ({e})");
                    None
                }
            },
            "gunrock" => Some(bfs::run(&g, root, BfsFlavor::Gunrock, &m).mteps),
            "berrybees" => Some(bfs::run(&g, root, BfsFlavor::BerryBees, &m).mteps),
            "native" | "lockfree" => {
                let ncfg = NativeConfig {
                    algo: DiggerBeesConfig {
                        blocks: args.blocks.unwrap_or(2),
                        warps_per_block: if args.warps == 8 { 2 } else { args.warps },
                        hot_cutoff: args.hot_cutoff,
                        cold_cutoff: args.cold_cutoff,
                        ..Default::default()
                    },
                };
                let out = if label == "native" {
                    NativeEngine::new(ncfg).run(&g, root)
                } else {
                    LockFreeEngine::new(ncfg).run(&g, root)
                };
                println!(
                    "root {root}: wall {:?}, {} visited, steals {}+{}",
                    out.wall,
                    out.stats.vertices_visited,
                    out.stats.steals_intra,
                    out.stats.steals_inter
                );
                Some(out.mteps())
            }
            other => {
                eprintln!("unknown method '{other}'");
                return ExitCode::FAILURE;
            }
        };
        if let Some(v) = mteps {
            mteps_all.push(v);
        }
    }
    if !mteps_all.is_empty() {
        println!(
            "{} on {}: {:.1} MTEPS (avg over {} source(s))",
            args.method,
            args.machine,
            mteps_all.iter().sum::<f64>() / mteps_all.len() as f64,
            mteps_all.len()
        );
    }
    ExitCode::SUCCESS
}
