//! `diggerbees` — command-line traversal runner and server.
//!
//! ```text
//! diggerbees <graph> [options]
//!
//! <graph>                a suite name (euro_osm, ljournal, road_s, …)
//!                        or a path to a Matrix Market .mtx file
//! --method <m>           diggerbees (default) | serial | ckl | acr |
//!                        nvg | gunrock | berrybees | native | lockfree
//! --machine <m>          h100 (default) | a100 | xeon
//! --source <v>           source vertex (default: GAP-style pick)
//! --sources <n>          average over n GAP-style sources (default 1)
//! --blocks <n>           thread blocks (default: one per SM)
//! --warps <n>            warps per block (default 8)
//! --hot-cutoff <n>       intra-block steal threshold (default 32)
//! --cold-cutoff <n>      inter-block steal threshold (default 64)
//! --stats                print graph characterization first
//! --trace <out>          record execution events for the first source
//!                        and write them to <out>; supported for
//!                        diggerbees, native, lockfree, ckl, acr
//! --trace-format <f>     chrome | csv; default: by extension
//!                        (.csv → csv, anything else → chrome)
//! --profile <out>        (diggerbees method only) attribute every
//!                        simulated cycle of the first source to a
//!                        phase per SM; writes flamegraph-compatible
//!                        folded stacks to <out> and prints a summary
//! --faults <spec>        (diggerbees method only) run under a
//!                        deterministic fault plan, e.g.
//!                        'kill:sm=3@cycle=10000' or
//!                        'seed=7;dropsteal:sm=*@p=0.1'; prints
//!                        injection/recovery stats per source
//!
//! diggerbees serve [options]        run the NDJSON traversal service
//!
//! --addr <host:port>     listen address (default 127.0.0.1:7345)
//! --workers <n>          worker threads (default 4)
//! --queue-cap <n>        admission queue bound (default 1024)
//! --tenant-quota <n>     per-tenant queued-request bound (default none)
//! --budget-mb <n>        corpus-cache budget in MB (default 256)
//! --trace <out>          write serve events on shutdown
//! --trace-format <f>     chrome | csv (as above)
//! --faults <spec>        inject worker-domain faults into request
//!                        execution, e.g. 'seed=7;kill:worker=*@p=0.01'
//! --retry-max <n>        retries per crashed request (default 2); the
//!                        final attempt degrades to the serial engine
//! --restart-budget <n>   pool-wide worker respawn budget (default 8)
//! --breaker-threshold <n> consecutive per-tenant failures that trip
//!                        the circuit breaker (default 5; 0 disables)
//! --breaker-cooldown-ms <n> open-breaker cooldown before a half-open
//!                        probe is admitted (default 250)
//! --flight-dir <dir>     write `.dbfr` flight dumps here on panic /
//!                        fault / deadline-miss (recorder is always
//!                        on; without a dir, dumps stay in memory)
//! --flight-cap <n>       spans retained per worker ring (default 4096)
//! --max-dumps <n>        automatic dump-file cap (default 8)
//! --slo <spec>           per-tenant objectives feeding the `db_slo_*`
//!                        burn-rate series, as comma-separated
//!                        `tenant:latency_us:latency_obj:avail_obj`
//!                        (e.g. '*:50000:0.99:0.999'); `*` matches
//!                        every tenant
//!
//! diggerbees store pack [options]   pack a graph into a .dbsg file
//!
//! --graph <key>          corpus key (grid:W:H, dag:N, suite name, …)
//!                        or social:N — a streaming social graph that
//!                        is packed row-by-row without materializing
//! --out <file>           output pack path (required)
//! --seed <s>             social-graph seed (default 1)
//! --no-compress          store raw u32 columns (no delta+varint)
//! --hub-threshold <n>    degree at which rows go to the raw hub
//!                        section (default 64)
//!
//! diggerbees store inspect <file>   print a pack's header + layout
//! diggerbees store verify <file>    checksum-verify and decode a pack
//!
//! diggerbees metrics [options]      scrape a running server
//!
//! --addr <host:port>     server address (default 127.0.0.1:7345)
//! --json                 print the JSON metrics snapshot instead of
//!                        the Prometheus text exposition
//! --check                validate the exposition with the bundled
//!                        parser; exit nonzero on any malformed line
//!
//! diggerbees flight inspect <f.dbfr> [--trace <hex-id>]
//!                        validate a flight-recorder dump and render
//!                        its span trees (all traces, or one by id)
//! diggerbees flight export <f.dbfr> --out <file.json>
//!                        convert a dump to Chrome-trace JSON
//!                        (chrome://tracing / Perfetto)
//!
//! diggerbees top [options]          live serve dashboard (SLO burn)
//!
//! --addr <host:port>     server address (default 127.0.0.1:7345)
//! --interval-ms <n>      refresh interval (default 2000)
//! --iters <n>            stop after n refreshes (default: forever)
//! --once                 scrape once, print one frame, exit
//! --file <scrape.txt>    render from a saved Prometheus scrape
//!                        instead of a live server (for CI)
//!
//! diggerbees check [options]        run the correctness analyses
//!
//! --root <dir>           repo root for the lint pass (default .)
//! --race <trace.csv>     also race-check a recorded `--trace` CSV
//! --skew <ns>            happens-before slack for --race (default
//!                        1000000; built-in sim check always uses 0)
//! --lint-only            skip the model checker and race detector
//! --models-only          skip the lint pass and race detector
//! --analyze              also run the db-analyze static analysis:
//!                        workspace call graph + A1..A5 checks; the
//!                        textual lint rules each A-rule supersedes
//!                        (R1/R2/R3/R5) are filtered from the lint
//!                        output while it is active
//! --baseline <file>      with --analyze: gate on *new* findings only;
//!                        known fingerprints live in this committed
//!                        JSON file (stale entries warn)
//! --write-baseline <f>   with --analyze: write the current findings
//!                        as a fresh baseline instead of gating
//! --sarif <out>          with --analyze: also write the findings as
//!                        SARIF 2.1.0 JSON for CI annotation
//! ```
//!
//! Examples:
//!
//! ```text
//! diggerbees euro_osm
//! diggerbees ljournal --method berrybees
//! diggerbees my_graph.mtx --method native --blocks 4 --warps 2
//! diggerbees serve --addr 127.0.0.1:7345 --workers 4
//! ```
//!
//! The server runs until a client sends `{"op":"shutdown"}`, then
//! drains its queues and exits. See README.md "Serving" for the wire
//! protocol.

use diggerbees::baselines::bfs::{self, BfsFlavor};
use diggerbees::baselines::cpu_ws::{self, CpuWsConfig, CpuWsStyle};
use diggerbees::baselines::nvg::{self, NvgConfig};
use diggerbees::baselines::serial;
use diggerbees::check::race::{detect, RaceConfig};
use diggerbees::check::{
    lint_tree, EpochModel, EpochScenario, Explorer, Model, Outcome, ProtoModel, ProtoScenario,
    RingModel, RingScenario, WalModel, WalScenario,
};
use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::core::native_lockfree::LockFreeEngine;
use diggerbees::core::{
    run_sim, run_sim_faulted, run_sim_profiled, run_sim_traced, DiggerBeesConfig,
};
use diggerbees::fault::{FaultPlan, Injector};
use diggerbees::gen::Suite;
use diggerbees::graph::{mm, sources::select_sources, stats::graph_stats, CsrGraph, GraphBuilder};
use diggerbees::serve::net::{fetch_metrics, fetch_prometheus};
use diggerbees::serve::{ServeConfig, Server, TcpServer};
use diggerbees::sim::{CycleProfiler, MachineModel, SimPhase};
use diggerbees::trace::{chrome, csv, NullTracer, RingBufferTracer, TraceEvent};
use std::process::ExitCode;

/// Ring capacity for `--trace`: newest ~4M events are kept (~100 MB);
/// older events are dropped and the drop count is reported.
const TRACE_CAPACITY: usize = 1 << 22;

/// Methods whose engines are instrumented for `--trace`.
const TRACEABLE: &[&str] = &["diggerbees", "native", "lockfree", "ckl", "acr"];

/// Explicit trace export format (`--trace-format`); `None` falls back
/// to extension sniffing (`.csv` → CSV, anything else → Chrome JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TraceFormat {
    Chrome,
    Csv,
}

impl TraceFormat {
    fn parse(s: &str) -> Result<TraceFormat, String> {
        match s {
            "chrome" => Ok(TraceFormat::Chrome),
            "csv" => Ok(TraceFormat::Csv),
            other => Err(format!("unknown trace format '{other}' (chrome|csv)")),
        }
    }

    fn for_path(explicit: Option<TraceFormat>, path: &str) -> TraceFormat {
        explicit.unwrap_or(if path.ends_with(".csv") {
            TraceFormat::Csv
        } else {
            TraceFormat::Chrome
        })
    }
}

struct Args {
    graph: String,
    method: String,
    machine: String,
    source: Option<u32>,
    sources: usize,
    blocks: Option<u32>,
    warps: u32,
    hot_cutoff: u32,
    cold_cutoff: u32,
    stats: bool,
    trace: Option<String>,
    trace_format: Option<TraceFormat>,
    profile: Option<String>,
    faults: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        graph: String::new(),
        method: "diggerbees".into(),
        machine: "h100".into(),
        source: None,
        sources: 1,
        blocks: None,
        warps: 8,
        hot_cutoff: 32,
        cold_cutoff: 64,
        stats: false,
        trace: None,
        trace_format: None,
        profile: None,
        faults: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--method" => args.method = take("--method")?,
            "--machine" => args.machine = take("--machine")?,
            "--source" => args.source = Some(parse_num(&take("--source")?)?),
            "--sources" => args.sources = parse_num(&take("--sources")?)? as usize,
            "--blocks" => args.blocks = Some(parse_num(&take("--blocks")?)?),
            "--warps" => args.warps = parse_num(&take("--warps")?)?,
            "--hot-cutoff" => args.hot_cutoff = parse_num(&take("--hot-cutoff")?)?,
            "--cold-cutoff" => args.cold_cutoff = parse_num(&take("--cold-cutoff")?)?,
            "--stats" => args.stats = true,
            "--trace" => args.trace = Some(take("--trace")?),
            "--trace-format" => {
                args.trace_format = Some(TraceFormat::parse(&take("--trace-format")?)?)
            }
            "--profile" => args.profile = Some(take("--profile")?),
            "--faults" => args.faults = Some(take("--faults")?),
            "--help" | "-h" => {
                return Err("usage: diggerbees <graph> [--method m] [--machine m] \
                            [--source v] [--sources n] [--blocks n] [--warps n] \
                            [--hot-cutoff n] [--cold-cutoff n] [--stats] \
                            [--trace out.json] [--trace-format chrome|csv] \
                            [--profile out.folded] [--faults spec]\n\
                            \x20      diggerbees serve [--addr host:port] [--workers n] \
                            [--queue-cap n] [--tenant-quota n] [--budget-mb n] \
                            [--trace out.json] [--trace-format chrome|csv] \
                            [--faults spec] [--retry-max n] [--restart-budget n] \
                            [--breaker-threshold n] [--breaker-cooldown-ms n] \
                            [--wal-dir dir] [--fsync always|group=N|never]\n\
                            \x20      diggerbees metrics [--addr host:port] [--json] \
                            [--check]\n\
                            \x20      diggerbees flight <inspect|export> <file.dbfr> \
                            [--trace hex] [--out file.json]\n\
                            \x20      diggerbees top [--addr host:port] [--interval-ms n] \
                            [--iters n] [--once] [--file scrape.txt]\n\
                            \x20      diggerbees wal <inspect|verify> <dir|wal.log>\n\
                            \x20      diggerbees check [--root dir] [--race trace.csv] \
                            [--skew ns] [--lint-only] [--models-only] [--analyze] \
                            [--baseline file] [--write-baseline file] [--sarif out]"
                    .into())
            }
            other if args.graph.is_empty() && !other.starts_with('-') => {
                args.graph = other.to_string();
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if args.graph.is_empty() {
        return Err("missing <graph> (a suite name or a .mtx path); --help for usage".into());
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u32, String> {
    s.parse().map_err(|_| format!("invalid number: {s}"))
}

fn load_graph(name: &str) -> Result<CsrGraph, String> {
    if name.ends_with(".mtx") {
        return mm::read_matrix_market_file(name).map_err(|e| e.to_string());
    }
    match Suite::by_name(name) {
        Some(spec) => Ok(spec.build()),
        None => {
            let known: Vec<&str> = Suite::full().iter().map(|s| s.name).collect();
            Err(format!(
                "unknown graph '{name}'; known: {}",
                known.join(", ")
            ))
        }
    }
}

fn machine(name: &str) -> Result<MachineModel, String> {
    match name {
        "h100" => Ok(MachineModel::h100()),
        "a100" => Ok(MachineModel::a100()),
        "xeon" => Ok(MachineModel::xeon_max()),
        other => Err(format!("unknown machine '{other}' (h100|a100|xeon)")),
    }
}

fn main() -> ExitCode {
    match std::env::args().nth(1).as_deref() {
        Some("serve") => return serve_main(),
        Some("metrics") => return metrics_main(),
        Some("check") => return check_main(),
        Some("store") => return store_main(),
        Some("wal") => return wal_main(),
        Some("flight") => return flight_main(),
        Some("top") => return top_main(),
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let g = match load_graph(&args.graph) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let m = match machine(&args.machine) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{}: {} vertices, {} edges ({:.1} MB CSR)",
        args.graph,
        g.num_vertices(),
        g.num_edges(),
        g.memory_bytes() as f64 / 1e6
    );

    if args.trace.is_some() && !TRACEABLE.contains(&args.method.as_str()) {
        eprintln!(
            "--trace is not supported for method '{}' (supported: {})",
            args.method,
            TRACEABLE.join(", ")
        );
        return ExitCode::FAILURE;
    }
    if args.profile.is_some() && args.method != "diggerbees" {
        eprintln!(
            "--profile attributes simulated cycles and is only supported \
             for the 'diggerbees' method (got '{}')",
            args.method
        );
        return ExitCode::FAILURE;
    }
    if args.faults.is_some() && args.method != "diggerbees" {
        eprintln!(
            "--faults drives the simulator's SM-domain chaos hooks and is \
             only supported for the 'diggerbees' method (got '{}'); \
             worker-domain faults live on `diggerbees serve --faults`",
            args.method
        );
        return ExitCode::FAILURE;
    }
    if args.faults.is_some() && args.profile.is_some() {
        eprintln!("--faults and --profile are mutually exclusive");
        return ExitCode::FAILURE;
    }
    let fault_plan = match &args.faults {
        Some(spec) => match FaultPlan::parse(spec) {
            Ok(p) => Some(p),
            Err(e) => {
                eprintln!("bad --faults spec '{spec}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    // Fail fast on an unwritable trace destination: creating the file
    // up front beats discovering a bad path after minutes of traversal.
    let trace_file = match &args.trace {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => {
                eprintln!("cannot write trace file '{path}': {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let tracer = args
        .trace
        .as_ref()
        .map(|_| RingBufferTracer::new(TRACE_CAPACITY));

    let roots: Vec<u32> = match args.source {
        Some(s) => vec![s],
        None => select_sources(&g, args.sources, 42),
    };
    if tracer.is_some() && roots.len() > 1 {
        println!("note: --trace records the first source only");
    }
    if args.stats {
        let s = graph_stats(&g, roots[0]);
        println!(
            "stats: avg deg {:.2}, max deg {}, skew {:.1}, BFS levels {}, DFS stack {}, reachable {}",
            s.avg_degree, s.max_degree, s.degree_skew, s.bfs_levels, s.dfs_max_stack, s.reachable
        );
    }

    let cfg = DiggerBeesConfig {
        blocks: args.blocks.unwrap_or(m.sm_count),
        warps_per_block: args.warps,
        hot_cutoff: args.hot_cutoff,
        cold_cutoff: args.cold_cutoff,
        ..Default::default()
    };

    let mut mteps_all = Vec::new();
    for (ri, &root) in roots.iter().enumerate() {
        let label = args.method.as_str();
        // Only the first source goes into the trace ring.
        let rt = if ri == 0 { tracer.as_ref() } else { None };
        let mteps = match label {
            "diggerbees" => {
                // Only the first source is profiled (same rule as --trace).
                let profiler = (ri == 0 && args.profile.is_some())
                    .then(|| CycleProfiler::new(cfg.blocks as usize));
                // A fresh injector per source: each traversal replays
                // the plan from a clean slate, so every source is
                // independently deterministic.
                let injector = fault_plan.clone().map(Injector::new);
                let r = match (&injector, &profiler, rt) {
                    (Some(i), _, Some(t)) => run_sim_faulted(&g, root, &cfg, &m, t, i),
                    (Some(i), _, None) => run_sim_faulted(&g, root, &cfg, &m, &NullTracer, i),
                    (None, Some(p), Some(t)) => run_sim_profiled(&g, root, &cfg, &m, t, p),
                    (None, Some(p), None) => run_sim_profiled(&g, root, &cfg, &m, &NullTracer, p),
                    (None, None, Some(t)) => run_sim_traced(&g, root, &cfg, &m, t),
                    (None, None, None) => run_sim(&g, root, &cfg, &m),
                };
                if let (Some(prof), Some(path)) = (&profiler, &args.profile) {
                    if let Err(e) = export_profile(prof, path, r.stats.cycles) {
                        eprintln!("failed to write profile to '{path}': {e}");
                        return ExitCode::FAILURE;
                    }
                }
                println!(
                    "root {root}: {:.1} MTEPS, {} cycles, {} visited, steals {}+{}",
                    r.mteps,
                    r.stats.cycles,
                    r.stats.vertices_visited,
                    r.stats.steals_intra,
                    r.stats.steals_inter
                );
                if let Some(i) = &injector {
                    println!(
                        "root {root}: faults: {} injected, {} SM(s) killed, \
                         {} block(s) / {} ring entries recovered",
                        i.injected(),
                        r.stats.sms_killed,
                        r.stats.blocks_recovered,
                        r.stats.entries_recovered
                    );
                }
                Some(r.mteps)
            }
            "serial" => Some(serial::run(&g, root, &MachineModel::xeon_max()).mteps),
            "ckl" | "acr" => {
                let style = if label == "ckl" {
                    CpuWsStyle::Ckl
                } else {
                    CpuWsStyle::Acr
                };
                let xeon = MachineModel::xeon_max();
                let ws_cfg = CpuWsConfig::default();
                let r = match rt {
                    Some(t) => cpu_ws::run_traced(&g, root, style, &ws_cfg, &xeon, t),
                    None => cpu_ws::run(&g, root, style, &ws_cfg, &xeon),
                };
                Some(r.mteps)
            }
            "nvg" => match nvg::run(&g, root, &NvgConfig::default(), &m) {
                Ok(r) => Some(r.mteps),
                Err(e) => {
                    println!("root {root}: NVG-DFS failed ({e})");
                    None
                }
            },
            "gunrock" => Some(bfs::run(&g, root, BfsFlavor::Gunrock, &m).mteps),
            "berrybees" => Some(bfs::run(&g, root, BfsFlavor::BerryBees, &m).mteps),
            "native" | "lockfree" => {
                let ncfg = NativeConfig {
                    algo: DiggerBeesConfig {
                        blocks: args.blocks.unwrap_or(2),
                        warps_per_block: if args.warps == 8 { 2 } else { args.warps },
                        hot_cutoff: args.hot_cutoff,
                        cold_cutoff: args.cold_cutoff,
                        ..Default::default()
                    },
                };
                let out = match (label, rt) {
                    ("native", Some(t)) => NativeEngine::new(ncfg).run_traced(&g, root, t),
                    ("native", None) => NativeEngine::new(ncfg).run(&g, root),
                    (_, Some(t)) => LockFreeEngine::new(ncfg).run_traced(&g, root, t),
                    (_, None) => LockFreeEngine::new(ncfg).run(&g, root),
                };
                println!(
                    "root {root}: wall {:?}, {} visited, steals {}+{}",
                    out.wall,
                    out.stats.vertices_visited,
                    out.stats.steals_intra,
                    out.stats.steals_inter
                );
                Some(out.mteps())
            }
            other => {
                eprintln!("unknown method '{other}'");
                return ExitCode::FAILURE;
            }
        };
        if let Some(v) = mteps {
            mteps_all.push(v);
        }
    }
    if !mteps_all.is_empty() {
        println!(
            "{} on {}: {:.1} MTEPS (avg over {} source(s))",
            args.method,
            args.machine,
            mteps_all.iter().sum::<f64>() / mteps_all.len() as f64,
            mteps_all.len()
        );
    }
    if let (Some(path), Some(file), Some(tracer)) = (&args.trace, trace_file, &tracer) {
        let format = TraceFormat::for_path(args.trace_format, path);
        let dropped = tracer.dropped();
        let events = tracer.snapshot();
        if let Err(e) = write_trace(file, format, &events, dropped) {
            eprintln!("failed to write trace to '{path}': {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "trace: {} events written to {path} ({format:?})",
            events.len()
        );
        if dropped > 0 {
            eprintln!(
                "warning: trace ring overflowed; oldest {dropped} events dropped \
                 (capacity {TRACE_CAPACITY}); drop count embedded in the export"
            );
        }
    }
    ExitCode::SUCCESS
}

/// Writes `events` to an already-opened trace file in the given
/// format, embedding the ring buffer's drop count (Chrome: an
/// `otherData.dropped_events` field; CSV: a `Dropped` trailer row).
fn write_trace(
    file: std::fs::File,
    format: TraceFormat,
    events: &[TraceEvent],
    dropped: u64,
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(file);
    match format {
        TraceFormat::Csv => csv::write_csv_with_drops(events, dropped, &mut out)?,
        TraceFormat::Chrome => chrome::write_chrome_trace_with_drops(events, dropped, &mut out)?,
    }
    out.flush()
}

/// Writes the cycle-attribution profile as flamegraph-compatible
/// folded stacks (`diggerbees;sm<N>;<phase> <cycles>` lines) and
/// prints a per-phase summary of where the simulated warp-cycles went.
fn export_profile(prof: &CycleProfiler, path: &str, makespan: u64) -> std::io::Result<()> {
    std::fs::write(path, prof.folded_stacks())?;
    let total: u64 = SimPhase::ALL.iter().map(|&p| prof.total_cycles(p)).sum();
    println!(
        "profile: folded stacks for {} SM(s) written to {path} \
         (makespan {makespan} cycles, {total} warp-cycles attributed)",
        prof.sms()
    );
    for &p in SimPhase::ALL.iter() {
        let c = prof.total_cycles(p);
        println!(
            "profile: {:>12}  {:>14} warp-cycles ({:5.1}%)",
            p.name(),
            c,
            100.0 * c as f64 / total.max(1) as f64
        );
    }
    Ok(())
}

/// `diggerbees store pack|inspect|verify`: the `.dbsg` pack toolbox.
///
/// `pack` streams `social:N` graphs row-by-row into the pack writer
/// (peak memory is one adjacency row plus the `row_ptr` array), so
/// multi-million-vertex packs never materialize a CSR; every other
/// corpus key builds in RAM first. `inspect` prints the header and
/// layout of an existing pack; `verify` checksum-verifies and fully
/// decodes it, exiting nonzero on any typed load error.
fn store_main() -> ExitCode {
    use diggerbees::store::{load, PackOptions, PackWriter};

    let fail = |e: String| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    let mut it = std::env::args().skip(2);
    let verb = match it.next() {
        Some(v) => v,
        None => return fail("usage: diggerbees store <pack|inspect|verify> ...".into()),
    };
    match verb.as_str() {
        "pack" => {
            let mut graph_key = String::new();
            let mut out = String::new();
            let mut seed = 1u64;
            let mut opts = PackOptions::default();
            while let Some(a) = it.next() {
                let mut take = |name: &str| -> Result<String, String> {
                    it.next().ok_or_else(|| format!("{name} requires a value"))
                };
                let r = (|| -> Result<(), String> {
                    match a.as_str() {
                        "--graph" => graph_key = take("--graph")?,
                        "--out" => out = take("--out")?,
                        "--seed" => seed = parse_num(&take("--seed")?)? as u64,
                        "--no-compress" => opts.compress = false,
                        "--hub-threshold" => {
                            opts.hub_threshold = parse_num(&take("--hub-threshold")?)?
                        }
                        other => return Err(format!("unknown argument: {other}")),
                    }
                    Ok(())
                })();
                if let Err(e) = r {
                    return fail(e);
                }
            }
            if graph_key.is_empty() || out.is_empty() {
                return fail("store pack needs --graph <key> and --out <file>".into());
            }
            let t0 = std::time::Instant::now();
            let summary = if let Some(dims) = graph_key.strip_prefix("social:") {
                let (n_str, avg_str) = match dims.split_once(':') {
                    Some((n, avg)) => (n, Some(avg)),
                    None => (dims, None),
                };
                let n: u32 = match n_str.parse::<u32>().ok().filter(|&n| n > 0) {
                    Some(n) => n,
                    None => {
                        return fail(format!(
                            "bad social key 'social:{dims}' (want social:N or social:N:AVG)"
                        ))
                    }
                };
                let mut params = diggerbees::gen::SocialParams::default();
                if let Some(avg) = avg_str {
                    params.avg_degree = match avg.parse::<u32>().ok().filter(|&d| d > 0) {
                        Some(d) => d,
                        None => {
                            return fail(format!("bad average degree '{avg}' in '{graph_key}'"))
                        }
                    };
                }
                let sg = diggerbees::gen::SocialGraph::new(n, seed, params);
                let mut w = match PackWriter::create(&out, n, true, opts) {
                    Ok(w) => w,
                    Err(e) => return fail(format!("cannot start pack '{out}': {e}")),
                };
                let mut err = None;
                sg.for_each_row(|u, row| {
                    if err.is_none() {
                        if let Err(e) = w.push_row(row) {
                            err = Some(format!("packing row {u}: {e}"));
                        }
                    }
                });
                if let Some(e) = err {
                    return fail(e);
                }
                match w.finish() {
                    Ok(s) => s,
                    Err(e) => return fail(format!("sealing pack '{out}': {e}")),
                }
            } else {
                let g = match diggerbees::serve::corpus::build_graph(&graph_key) {
                    Ok(g) => g,
                    Err(e) => return fail(e),
                };
                match diggerbees::store::pack_graph(&g, &out, opts) {
                    Ok(s) => s,
                    Err(e) => return fail(format!("packing '{graph_key}': {e}")),
                }
            };
            println!(
                "packed {graph_key} -> {out}: {} vertices, {} arcs, {} bytes \
                 ({:.2}x vs raw CSR, {} hub rows / {} hub arcs) in {:.1}s",
                summary.n,
                summary.arcs,
                summary.file_bytes,
                summary.file_bytes as f64 / summary.csr_bytes.max(1) as f64,
                summary.hub_rows,
                summary.hub_arcs,
                t0.elapsed().as_secs_f64()
            );
            ExitCode::SUCCESS
        }
        "inspect" | "verify" => {
            let path = match it.next() {
                Some(p) => p,
                None => return fail(format!("usage: diggerbees store {verb} <file.dbsg>")),
            };
            let t0 = std::time::Instant::now();
            match load(&path) {
                Ok(s) => {
                    println!("{}", diggerbees::graph::GraphStore::describe(&s));
                    let h = s.header();
                    println!(
                        "header: version {} sections {} hub-threshold {} partitions {}",
                        h.version, h.section_count, h.hub_threshold, h.partition_count
                    );
                    let g = diggerbees::graph::GraphStore::graph(&s);
                    println!(
                        "residency: {} heap bytes, {} mapped bytes, {} charged",
                        g.heap_bytes(),
                        g.mapped_bytes(),
                        diggerbees::graph::GraphStore::charged_bytes(&s)
                    );
                    if verb == "verify" {
                        println!(
                            "verify: all section checksums and row decodes OK in {:.1}s",
                            t0.elapsed().as_secs_f64()
                        );
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => fail(format!("{verb} {path}: {e}")),
            }
        }
        other => fail(format!(
            "unknown store verb '{other}' (pack|inspect|verify)"
        )),
    }
}

/// `diggerbees wal`: offline inspection of a durability directory —
/// the checksummed WAL and the checkpoint manifest that `serve
/// --wal-dir` maintains. `inspect` summarizes; `verify` additionally
/// loads every pack the manifest references. Both run read-only (the
/// torn-tail report says what recovery *would* truncate).
fn wal_main() -> ExitCode {
    use diggerbees::wal::{scan_file, Manifest, MANIFEST_FILE, WAL_FILE};

    let fail = |e: String| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    let mut it = std::env::args().skip(2);
    let verb = match it.next() {
        Some(v) if v == "inspect" || v == "verify" => v,
        _ => return fail("usage: diggerbees wal <inspect|verify> <dir|wal.log>".into()),
    };
    let path = match it.next() {
        Some(p) => std::path::PathBuf::from(p),
        None => return fail(format!("usage: diggerbees wal {verb} <dir|wal.log>")),
    };
    let (wal_path, manifest_path) = if path.is_dir() {
        (path.join(WAL_FILE), Some(path.join(MANIFEST_FILE)))
    } else {
        (path.clone(), None)
    };
    let scan = match scan_file(&wal_path) {
        Ok(s) => s,
        Err(e) => return fail(format!("{verb} {}: {e}", wal_path.display())),
    };
    println!(
        "wal {}: {} record(s), next LSN {}",
        wal_path.display(),
        scan.records.len(),
        scan.next_lsn
    );
    // Per-corpus breakdown in first-seen order.
    let mut order: Vec<String> = Vec::new();
    for r in &scan.records {
        if !order.contains(&r.corpus) {
            order.push(r.corpus.clone());
        }
    }
    for corpus in &order {
        let recs: Vec<_> = scan
            .records
            .iter()
            .filter(|r| &r.corpus == corpus)
            .collect();
        let (adds, dels, tombs) = recs.iter().fold((0usize, 0usize, 0usize), |acc, r| {
            (
                acc.0 + r.adds.len(),
                acc.1 + r.dels.len(),
                acc.2 + r.tombs.len(),
            )
        });
        println!(
            "  corpus {corpus}: {} record(s), lsn {}..={}, epochs {}..={}, \
             {adds} add(s) {dels} del(s) {tombs} tombstone(s)",
            recs.len(),
            recs.first().map_or(0, |r| r.lsn),
            recs.last().map_or(0, |r| r.lsn),
            recs.first().map_or(0, |r| r.epoch),
            recs.last().map_or(0, |r| r.epoch),
        );
    }
    if scan.tail.torn {
        println!(
            "tail: TORN — recovery would truncate {} trailing byte(s)",
            scan.tail.truncated_bytes
        );
    } else {
        println!("tail: clean");
    }
    let mut broken = 0usize;
    if let Some(mp) = manifest_path {
        match Manifest::load(&mp) {
            Ok(Some(m)) => {
                println!("manifest {}: {} entry(ies)", mp.display(), m.entries.len());
                for me in m.entries.values() {
                    let pack = me
                        .pack
                        .as_ref()
                        .map_or("<none>".to_string(), |p| p.display().to_string());
                    println!(
                        "  corpus {}: checkpoint epoch {}, lsn {}, {} applied, pack {pack}",
                        me.corpus, me.epoch, me.lsn, me.applied
                    );
                    if verb == "verify" {
                        if let Some(p) = &me.pack {
                            // Manifests record bare pack names resolved
                            // against the directory they live in.
                            let p = if p.is_absolute() {
                                p.clone()
                            } else {
                                mp.parent().unwrap_or(std::path::Path::new(".")).join(p)
                            };
                            match diggerbees::store::load(&p) {
                                Ok(_) => println!("    pack OK"),
                                Err(e) => {
                                    broken += 1;
                                    println!("    pack BROKEN: {e}");
                                }
                            }
                        }
                    }
                }
            }
            Ok(None) => println!("manifest {}: absent (no checkpoint yet)", mp.display()),
            Err(e) => return fail(format!("{verb} {}: {e}", mp.display())),
        }
    }
    if verb == "verify" {
        if broken > 0 {
            return fail(format!("verify: {broken} broken pack(s)"));
        }
        println!("verify: every frame checksum and referenced pack OK");
    }
    ExitCode::SUCCESS
}

/// `diggerbees metrics`: scrape a running server over the NDJSON
/// endpoint — Prometheus text by default, `--json` for the snapshot,
/// `--check` to validate the exposition with the bundled parser.
fn metrics_main() -> ExitCode {
    let mut addr = "127.0.0.1:7345".to_string();
    let mut json = false;
    let mut check = false;
    let mut it = std::env::args().skip(2);
    let fail = |e: String| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => match it.next() {
                Some(v) => addr = v,
                None => return fail("--addr requires a value".into()),
            },
            "--json" => json = true,
            "--check" => check = true,
            other => return fail(format!("unknown argument: {other} (see --help)")),
        }
    }
    use std::net::ToSocketAddrs;
    let sock = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(s) => s,
        None => return fail(format!("cannot resolve address '{addr}'")),
    };
    if json {
        return match fetch_metrics(&sock) {
            Ok(m) => {
                println!("{}", m.to_value().to_json());
                ExitCode::SUCCESS
            }
            Err(e) => fail(format!("cannot fetch metrics from {addr}: {e}")),
        };
    }
    let text = match fetch_prometheus(&sock) {
        Ok(t) => t,
        Err(e) => return fail(format!("cannot scrape {addr}: {e}")),
    };
    if check {
        match diggerbees::metrics::validate_exposition(&text) {
            Ok(exp) => {
                let mut names: Vec<&str> = exp.samples.iter().map(|s| s.name.as_str()).collect();
                names.dedup();
                println!(
                    "ok: {} samples across {} series from {addr}",
                    exp.samples.len(),
                    names.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(format!("malformed exposition from {addr}: {e}")),
        }
    } else {
        print!("{text}");
        ExitCode::SUCCESS
    }
}

/// `diggerbees serve`: bind the NDJSON endpoint and run until a client
/// sends `{"op":"shutdown"}`, then drain and report.
fn serve_main() -> ExitCode {
    let mut addr = "127.0.0.1:7345".to_string();
    let mut cfg = ServeConfig::default();
    let mut trace: Option<String> = None;
    let mut trace_format: Option<TraceFormat> = None;
    let mut it = std::env::args().skip(2);
    let fail = |e: String| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        let r = (|| -> Result<(), String> {
            match a.as_str() {
                "--addr" => addr = take("--addr")?,
                "--workers" => cfg.workers = parse_num(&take("--workers")?)?.max(1) as usize,
                "--queue-cap" => {
                    cfg.queue_capacity = parse_num(&take("--queue-cap")?)?.max(1) as usize
                }
                "--tenant-quota" => {
                    cfg.tenant_quota = Some(parse_num(&take("--tenant-quota")?)? as usize)
                }
                "--budget-mb" => {
                    cfg.corpus_budget_bytes = (parse_num(&take("--budget-mb")?)? as usize) << 20
                }
                "--trace" => trace = Some(take("--trace")?),
                "--trace-format" => {
                    trace_format = Some(TraceFormat::parse(&take("--trace-format")?)?)
                }
                "--faults" => {
                    let spec = take("--faults")?;
                    let plan = FaultPlan::parse(&spec)
                        .map_err(|e| format!("bad --faults spec '{spec}': {e}"))?;
                    cfg.resilience.faults = Some(std::sync::Arc::new(Injector::new(plan)));
                }
                "--retry-max" => cfg.resilience.retry_max = parse_num(&take("--retry-max")?)?,
                "--restart-budget" => {
                    cfg.resilience.restart_budget = parse_num(&take("--restart-budget")?)?
                }
                "--breaker-threshold" => {
                    cfg.resilience.breaker_threshold = parse_num(&take("--breaker-threshold")?)?
                }
                "--breaker-cooldown-ms" => {
                    cfg.resilience.breaker_cooldown_ms =
                        parse_num(&take("--breaker-cooldown-ms")?)? as u64
                }
                "--flight-dir" => {
                    cfg.flight.dump_dir = Some(std::path::PathBuf::from(take("--flight-dir")?))
                }
                "--flight-cap" => {
                    cfg.flight.per_worker_capacity = parse_num(&take("--flight-cap")?)? as usize
                }
                "--max-dumps" => cfg.flight.max_dumps = parse_num(&take("--max-dumps")?)?,
                "--slo" => {
                    let spec = take("--slo")?;
                    cfg.slo = diggerbees::metrics::SloConfig::parse(&spec)
                        .map_err(|e| format!("bad --slo spec '{spec}': {e}"))?;
                }
                "--wal-dir" => {
                    cfg.durability.wal_dir = Some(std::path::PathBuf::from(take("--wal-dir")?))
                }
                "--fsync" => {
                    let spec = take("--fsync")?;
                    cfg.durability.fsync = diggerbees::wal::FsyncPolicy::parse(&spec)
                        .map_err(|e| format!("bad --fsync spec '{spec}': {e}"))?;
                }
                other => return Err(format!("unknown argument: {other} (see --help)")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            return fail(e);
        }
    }
    let trace_file = match &trace {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => return fail(format!("cannot write trace file '{path}': {e}")),
        },
        None => None,
    };
    if trace.is_some() {
        cfg.trace_capacity = TRACE_CAPACITY;
    }
    let server = match Server::try_start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => return fail(format!("cannot start server: {e}")),
    };
    if let Some(info) = server.handle().recovery() {
        println!(
            "recovery: {} corpora, {} record(s) replayed, {} skipped{}",
            info.corpora,
            info.replayed,
            info.skipped,
            if info.torn_truncated {
                " (torn WAL tail truncated)"
            } else {
                ""
            }
        );
    }
    let mut tcp = match TcpServer::bind(server.handle(), &addr) {
        Ok(t) => t,
        Err(e) => return fail(format!("cannot bind {addr}: {e}")),
    };
    println!(
        "serving on {} ({} workers, queue {}, corpus budget {} MB); \
         send {{\"op\":\"shutdown\"}} to stop",
        tcp.addr(),
        cfg.workers,
        cfg.queue_capacity,
        cfg.corpus_budget_bytes >> 20
    );
    while !tcp.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("shutdown requested; draining...");
    tcp.stop();
    let handle = server.handle();
    let events = handle.trace_events();
    let dropped = handle.trace_dropped();
    let m = server.shutdown();
    println!(
        "served {} ok / {} expired / {} rejected / {} errors / {} failed; \
         p50 {} us, p99 {} us; cache hit rate {:.3}, {} steals",
        m.completed,
        m.expired,
        m.rejected(),
        m.errors,
        m.failed,
        m.p50_us,
        m.p99_us,
        m.cache_hit_rate(),
        m.steals
    );
    if m.retries + m.worker_panics + m.breaker_trips + m.faults_injected > 0 {
        println!(
            "resilience: {} faults injected, {} retries, {} degraded to serial; \
             {} worker panic(s), {} respawn(s); {} breaker trip(s), {} shed",
            m.faults_injected,
            m.retries,
            m.degraded,
            m.worker_panics,
            m.worker_respawns,
            m.breaker_trips,
            m.rejected_breaker
        );
    }
    if let (Some(path), Some(file)) = (&trace, trace_file) {
        let format = TraceFormat::for_path(trace_format, path);
        if let Err(e) = write_trace(file, format, &events, dropped) {
            return fail(format!("failed to write trace to '{path}': {e}"));
        }
        println!(
            "trace: {} events written to {path} ({format:?})",
            events.len()
        );
        if dropped > 0 {
            eprintln!(
                "warning: trace ring overflowed; oldest {dropped} events dropped \
                 (capacity {TRACE_CAPACITY}); drop count embedded in the export"
            );
        }
    }
    ExitCode::SUCCESS
}

/// `diggerbees flight inspect|export`: the `.dbfr` flight-dump toolbox.
///
/// `inspect` decodes a dump, validates its span trees (single root per
/// trace, sound parentage, forward time) and renders them as indented
/// text; `--trace <hex-id>` narrows to one trace. `export` converts a
/// dump to Chrome-trace JSON for `chrome://tracing` / Perfetto.
fn flight_main() -> ExitCode {
    use diggerbees::span::{chrome_document, render_trace, validate_dump, FlightDump};

    let fail = |e: String| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    let mut it = std::env::args().skip(2);
    let verb = match it.next() {
        Some(v) => v,
        None => return fail("usage: diggerbees flight <inspect|export> <file.dbfr> ...".into()),
    };
    let path = match it.next() {
        Some(p) => p,
        None => return fail(format!("usage: diggerbees flight {verb} <file.dbfr> ...")),
    };
    let bytes = match std::fs::read(&path) {
        Ok(b) => b,
        Err(e) => return fail(format!("cannot read '{path}': {e}")),
    };
    let dump = match FlightDump::decode(&bytes) {
        Ok(d) => d,
        Err(e) => return fail(format!("'{path}' is not a valid .dbfr dump: {e}")),
    };
    match verb.as_str() {
        "inspect" => {
            let mut filter: Option<u64> = None;
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--trace" => {
                        let v = match it.next() {
                            Some(v) => v,
                            None => return fail("--trace requires a value".into()),
                        };
                        filter = match u64::from_str_radix(v.trim_start_matches("0x"), 16) {
                            Ok(x) => Some(x),
                            Err(_) => return fail(format!("bad trace id '{v}' (want hex)")),
                        };
                    }
                    other => return fail(format!("unknown argument: {other}")),
                }
            }
            let trees = match validate_dump(&dump) {
                Ok(t) => t,
                Err(e) => return fail(format!("'{path}' fails span-tree validation: {e}")),
            };
            let complete = trees.iter().filter(|t| t.is_complete()).count();
            println!(
                "{path}: reason={} spans={} traces={} complete={} partial={} \
                 dropped={} tenants={}",
                dump.reason.name(),
                dump.spans.len(),
                trees.len(),
                complete,
                trees.len() - complete,
                dump.dropped,
                dump.tenants.len()
            );
            let mut shown = 0usize;
            for t in &trees {
                if filter.is_some_and(|f| f != t.trace_id) {
                    continue;
                }
                print!("{}", render_trace(&dump, t));
                shown += 1;
            }
            if let (Some(f), 0) = (filter, shown) {
                return fail(format!("no trace {f:#018x} in '{path}'"));
            }
            ExitCode::SUCCESS
        }
        "export" => {
            let mut out = String::new();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--out" => {
                        out = match it.next() {
                            Some(v) => v,
                            None => return fail("--out requires a value".into()),
                        }
                    }
                    other => return fail(format!("unknown argument: {other}")),
                }
            }
            if out.is_empty() {
                return fail("flight export needs --out <file.json>".into());
            }
            let doc = chrome_document(&dump);
            if let Err(e) = std::fs::write(&out, doc.to_json()) {
                return fail(format!("cannot write '{out}': {e}"));
            }
            println!(
                "exported {} spans ({} traces' worth, reason={}) to {out}",
                dump.spans.len(),
                diggerbees::span::build_traces(&dump).len(),
                dump.reason.name()
            );
            ExitCode::SUCCESS
        }
        other => fail(format!("unknown flight verb '{other}' (inspect|export)")),
    }
}

/// `diggerbees top`: a live terminal dashboard over the Prometheus
/// endpoint — request rates, latency ladder quantiles, guard state and
/// per-tenant SLO burn rates, refreshed in place. `--file` renders one
/// frame from a saved scrape instead (no server needed; used by CI).
fn top_main() -> ExitCode {
    use diggerbees::metrics::{render_dashboard, validate_exposition, Exposition};

    let fail = |e: String| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    let mut addr = "127.0.0.1:7345".to_string();
    let mut interval_ms: u64 = 2000;
    let mut iters: Option<u64> = None;
    let mut once = false;
    let mut file: Option<String> = None;
    let mut it = std::env::args().skip(2);
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        let r = (|| -> Result<(), String> {
            match a.as_str() {
                "--addr" => addr = take("--addr")?,
                "--interval-ms" => interval_ms = parse_num(&take("--interval-ms")?)?.max(1) as u64,
                "--iters" => iters = Some(parse_num(&take("--iters")?)? as u64),
                "--once" => once = true,
                "--file" => file = Some(take("--file")?),
                other => return Err(format!("unknown argument: {other} (see --help)")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            return fail(e);
        }
    }
    let interval_s = interval_ms as f64 / 1000.0;
    if let Some(path) = &file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(format!("cannot read scrape '{path}': {e}")),
        };
        return match validate_exposition(&text) {
            Ok(exp) => {
                print!("{}", render_dashboard(&exp, None, interval_s));
                ExitCode::SUCCESS
            }
            Err(e) => fail(format!("malformed exposition in '{path}': {e}")),
        };
    }
    use std::net::ToSocketAddrs;
    let sock = match addr.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(s) => s,
        None => return fail(format!("cannot resolve address '{addr}'")),
    };
    let mut prev: Option<Exposition> = None;
    let mut frames = 0u64;
    loop {
        let text = match fetch_prometheus(&sock) {
            Ok(t) => t,
            Err(e) => return fail(format!("cannot scrape {addr}: {e}")),
        };
        let exp = match validate_exposition(&text) {
            Ok(e) => e,
            Err(e) => return fail(format!("malformed exposition from {addr}: {e}")),
        };
        let frame = render_dashboard(&exp, prev.as_ref(), interval_s);
        if once || iters.is_some() {
            // Scripted runs get plain frames (no control codes).
            print!("{frame}");
        } else {
            // Clear + home, then the frame: redraw in place.
            print!("\x1b[2J\x1b[H{frame}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        frames += 1;
        if once || iters.is_some_and(|k| frames >= k) {
            return ExitCode::SUCCESS;
        }
        prev = Some(exp);
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// Runs one bounded-model-checker config and prints its verdict.
/// Returns the number of findings (0 or 1).
fn run_model_config<M: Model>(name: &str, model: &M) -> usize {
    match Explorer::default().run(model) {
        Outcome::Pass(s) => {
            println!(
                "model {name}: ok ({} states, {} transitions, {} quiescent)",
                s.states, s.transitions, s.final_states
            );
            0
        }
        Outcome::Fail {
            violation,
            schedule,
            stats,
        } => {
            println!(
                "model {name}: FAIL [{}] {} (after {} states)\n  replay schedule: {:?}",
                violation.oracle, violation.detail, stats.states, schedule
            );
            1
        }
        Outcome::BoundExceeded(s) => {
            println!(
                "model {name}: BOUND EXCEEDED at {} states — config too large, not a pass",
                s.states
            );
            1
        }
    }
}

/// `diggerbees check`: run the db-check analyses — the repo lint pass,
/// the bounded model checker over the ring/steal protocol transcriptions,
/// and the vector-clock race detector over a freshly traced sim run
/// (plus, with `--race`, any recorded `--trace` CSV). Exits nonzero if
/// any analysis reports a finding.
fn check_main() -> ExitCode {
    let mut root = ".".to_string();
    let mut race_file: Option<String> = None;
    let mut skew: u64 = 1_000_000;
    let mut lint_only = false;
    let mut models_only = false;
    let mut analyze = false;
    let mut baseline_file: Option<String> = None;
    let mut write_baseline: Option<String> = None;
    let mut sarif_out: Option<String> = None;
    let mut it = std::env::args().skip(2);
    let fail = |e: String| {
        eprintln!("{e}");
        ExitCode::FAILURE
    };
    while let Some(a) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} requires a value"))
        };
        let r = (|| -> Result<(), String> {
            match a.as_str() {
                "--root" => root = take("--root")?,
                "--race" => race_file = Some(take("--race")?),
                "--skew" => {
                    let v = take("--skew")?;
                    skew = v.parse().map_err(|_| format!("invalid --skew: {v}"))?;
                }
                "--lint-only" => lint_only = true,
                "--models-only" => models_only = true,
                "--analyze" => analyze = true,
                "--baseline" => baseline_file = Some(take("--baseline")?),
                "--write-baseline" => write_baseline = Some(take("--write-baseline")?),
                "--sarif" => sarif_out = Some(take("--sarif")?),
                other => return Err(format!("unknown argument: {other} (see --help)")),
            }
            Ok(())
        })();
        if let Err(e) = r {
            return fail(e);
        }
    }
    let mut findings = 0usize;

    // 1. Lint pass over the source tree. When the static analyzer is
    //    active, the textual rules it supersedes (R1/R2/R3/R5 are
    //    covered interprocedurally by A2/A5/A1) are filtered out so a
    //    site is not reported twice under two rule names.
    if !models_only {
        match lint_tree(std::path::Path::new(&root)) {
            Ok(hits) => {
                let mut superseded = 0usize;
                for h in &hits {
                    if analyze && diggerbees::check::lint::superseded_by(h.rule).is_some() {
                        superseded += 1;
                        continue;
                    }
                    println!("lint: {}:{}: [{}] {}", h.file, h.line, h.rule, h.detail);
                    findings += 1;
                }
                println!("lint: {} finding(s) in {root}", hits.len() - superseded);
                if superseded > 0 {
                    println!(
                        "lint: {superseded} finding(s) under superseded rules \
                         deferred to --analyze"
                    );
                }
            }
            Err(e) => return fail(format!("lint: cannot walk '{root}': {e}")),
        }
    }

    // 1b. Static analysis: workspace call graph + A1..A5, gated on the
    //     committed baseline when one is given.
    if analyze && !models_only {
        let cfg = diggerbees::analyze::Config::for_repo();
        let run = match diggerbees::analyze::analyze_tree(std::path::Path::new(&root), &cfg) {
            Ok(r) => r,
            Err(e) => return fail(format!("analyze: {e}")),
        };
        println!(
            "analyze: {} file(s), {} function(s), {} call edge(s)",
            run.files, run.fns, run.edges
        );
        if let Some(path) = &sarif_out {
            let doc = diggerbees::analyze::sarif::to_sarif(&run.findings);
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    let _ = std::fs::create_dir_all(dir);
                }
            }
            if let Err(e) = std::fs::write(path, doc) {
                return fail(format!("analyze: cannot write SARIF '{path}': {e}"));
            }
            println!("analyze: SARIF written to {path}");
        }
        if let Some(path) = &write_baseline {
            let doc = diggerbees::analyze::baseline::to_json(&run.findings);
            if let Err(e) = std::fs::write(path, doc) {
                return fail(format!("analyze: cannot write baseline '{path}': {e}"));
            }
            println!(
                "analyze: baseline with {} entr{} written to {path}",
                run.findings.len(),
                if run.findings.len() == 1 { "y" } else { "ies" }
            );
        } else if let Some(path) = &baseline_file {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return fail(format!("analyze: cannot read baseline '{path}': {e}")),
            };
            let base = match diggerbees::analyze::baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => return fail(format!("analyze: bad baseline '{path}': {e}")),
            };
            let d = diggerbees::analyze::baseline::diff(&run.findings, &base);
            for f in &d.new {
                print!("{}", f.render());
            }
            for fp in &d.stale {
                println!("analyze: stale baseline entry {fp} (no longer produced; remove it)");
            }
            println!(
                "analyze: {} new finding(s), {} baselined, {} stale",
                d.new.len(),
                d.matched,
                d.stale.len()
            );
            findings += d.new.len();
        } else {
            print!("{}", diggerbees::analyze::render_report(&run.findings));
            println!("analyze: {} finding(s)", run.findings.len());
            findings += run.findings.len();
        }
    }

    // 2. Bounded model checking of the protocol transcriptions.
    if !lint_only {
        findings += run_model_config("ring/small", &RingModel::new(RingScenario::small()));
        findings += run_model_config("proto/path4", &ProtoModel::new(ProtoScenario::path4(2)));
        findings += run_model_config("proto/star4", &ProtoModel::new(ProtoScenario::star4(2)));
        findings += run_model_config("proto/star4x3", &ProtoModel::new(ProtoScenario::star4(3)));
        findings += run_model_config(
            "proto/diamond4",
            &ProtoModel::new(ProtoScenario::diamond4(2)),
        );
        findings += run_model_config("epoch/small", &EpochModel::new(EpochScenario::small()));
        findings += run_model_config("wal/small", &WalModel::new(WalScenario::small()));
    }

    // 3. Race detection: a built-in traced sim run (exact DES cycles, so
    //    zero skew), plus any recorded trace the caller hands us.
    if !lint_only && !models_only {
        let mut b = GraphBuilder::undirected(16 * 16);
        for y in 0..16u32 {
            for x in 0..16u32 {
                if x + 1 < 16 {
                    b.edge(y * 16 + x, y * 16 + x + 1);
                }
                if y + 1 < 16 {
                    b.edge(y * 16 + x, (y + 1) * 16 + x);
                }
            }
        }
        let g = b.build();
        let tracer = RingBufferTracer::new(1 << 20);
        let cfg = DiggerBeesConfig {
            blocks: 2,
            warps_per_block: 2,
            hot_size: 16,
            hot_cutoff: 4,
            cold_cutoff: 8,
            flush_batch: 8,
            ..Default::default()
        };
        run_sim_traced(&g, 0, &cfg, &MachineModel::a100(), &tracer);
        let events = tracer.drain();
        match detect(&events, &RaceConfig { skew: 0 }) {
            Ok(report) => {
                for f in &report.findings {
                    println!("race(sim): [{}] vertex {}: {}", f.rule, f.vertex, f.detail);
                }
                println!(
                    "race(sim): {} finding(s) over {} events ({} sync edges, \
                     {} ordered transfers)",
                    report.findings.len(),
                    report.events,
                    report.sync_edges,
                    report.ordered_transfers
                );
                findings += report.findings.len();
            }
            Err(e) => return fail(format!("race(sim): unsound trace stream: {e}")),
        }
    }
    if let Some(path) = &race_file {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return fail(format!("cannot read trace '{path}': {e}")),
        };
        let parsed = match csv::parse_csv(&text) {
            Ok(p) => p,
            Err(e) => return fail(format!("cannot parse trace '{path}': {e}")),
        };
        if parsed.dropped > 0 {
            eprintln!(
                "warning: '{path}' records {} dropped events; the detector \
                 only sees what survived the ring",
                parsed.dropped
            );
        }
        match detect(&parsed.events, &RaceConfig { skew }) {
            Ok(report) => {
                for f in &report.findings {
                    println!(
                        "race({path}): [{}] vertex {}: {}",
                        f.rule, f.vertex, f.detail
                    );
                }
                println!(
                    "race({path}): {} finding(s) over {} events at skew {skew} ns \
                     ({} sync edges)",
                    report.findings.len(),
                    report.events,
                    report.sync_edges
                );
                findings += report.findings.len();
            }
            Err(e) => return fail(format!("race({path}): unsound trace stream: {e}")),
        }
    }

    if findings > 0 {
        println!("check: {findings} finding(s)");
        ExitCode::FAILURE
    } else {
        println!("check: clean");
        ExitCode::SUCCESS
    }
}
