//! # diggerbees — facade crate
//!
//! A pure-Rust reproduction of *"DiggerBees: Depth First Search Leveraging
//! Hierarchical Block-Level Stealing on GPUs"* (PPoPP 2026). This crate
//! re-exports the workspace members under one roof:
//!
//! * [`graph`] — CSR graphs, Matrix Market I/O, reference traversals,
//!   output validation ([`db_graph`]).
//! * [`gen`] — seeded synthetic workload generators mirroring the paper's
//!   DIMACS10/SNAP/LAW graph families ([`db_gen`]).
//! * [`sim`] — the deterministic GPU/CPU execution-model simulator that
//!   substitutes for the A100/H100 hardware ([`db_gpu_sim`]).
//! * [`core`] — the DiggerBees algorithm itself: two-level stack
//!   (HotRing + ColdSeg), warp-level DFS, intra-block and inter-block
//!   work stealing; both a native multithreaded engine and a simulated
//!   GPU engine ([`db_core`]).
//! * [`baselines`] — every comparison point from the paper's evaluation
//!   ([`db_baselines`]).
//! * [`trace`] — typed execution-event tracing: zero-overhead-when-off
//!   tracer backends plus Chrome-trace and CSV exporters ([`db_trace`]).
//! * [`metrics`] — lock-light live metrics registry (counters, gauges,
//!   power-of-two histograms) with Prometheus text exposition and a
//!   validating parser ([`db_metrics`]).
//! * [`fault`] — deterministic fault injection: seeded, parseable fault
//!   plans (kill/stall/slowdown/corrupt/drop-steal) shared by the sim's
//!   chaos hooks and the serve layer's resilience machinery
//!   ([`db_fault`]).
//! * [`store`] — the packed on-disk graph layer: compressed `.dbsg`
//!   packs with zero-copy mmap loading and cross-partition DFS with
//!   shard-level steal-half stealing ([`db_store`]).
//! * [`serve`] — a multi-tenant traversal service: corpus cache
//!   (including `store:`-keyed packs), admission control,
//!   deadline-aware request-stealing worker pool, NDJSON TCP front-end
//!   ([`db_serve`]).
//! * [`check`] — concurrency-correctness subsystem: bounded model
//!   checker for the ring/steal protocols, vector-clock race detector
//!   over trace streams, and the repo lint pass ([`db_check`]).
//! * [`span`] — causal request-scoped spans, the always-on flight
//!   recorder with `.dbfr` dumps, and the span-tree / Chrome-trace
//!   inspectors behind `diggerbees flight` ([`db_span`]).
//! * [`analyze`] — offline static analysis: workspace call graph plus
//!   five interprocedural checks (panic reachability, atomic-ordering
//!   audit, lock-order cycles, blocking-in-hot-path, determinism
//!   taint) with SARIF output and a committed-baseline CI gate behind
//!   `diggerbees check --analyze` ([`db_analyze`]).
//!
//! See `README.md` for a tour and `DESIGN.md` for the reproduction
//! notes. Runnable examples live in `examples/`: `quickstart`,
//! `road_network`, `maze_path`, `gpu_scaling`, and `tuning`.
//!
//! ## Quickstart
//!
//! ```
//! use diggerbees::graph::{GraphBuilder, validate};
//! use diggerbees::core::native::{NativeEngine, NativeConfig};
//!
//! // The example graph from Figure 1 of the paper.
//! let g = GraphBuilder::undirected(6)
//!     .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4), (2, 5)])
//!     .build();
//! let engine = NativeEngine::new(NativeConfig::default());
//! let out = engine.run(&g, 0);
//! validate::check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
//! validate::check_reachability(&g, 0, &out.visited).unwrap();
//! ```

pub use db_analyze as analyze;
pub use db_apps as apps;
pub use db_baselines as baselines;
pub use db_check as check;
pub use db_core as core;
pub use db_fault as fault;
pub use db_gen as gen;
pub use db_gpu_sim as sim;
pub use db_graph as graph;
pub use db_metrics as metrics;
pub use db_serve as serve;
pub use db_span as span;
pub use db_store as store;
pub use db_trace as trace;
pub use db_wal as wal;
