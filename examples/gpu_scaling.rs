//! SM-count scaling study (the §4.4 experiment, generalized).
//!
//! ```text
//! cargo run --release --example gpu_scaling
//! ```
//!
//! Runs DiggerBees on a mesh workload while sweeping the number of
//! thread blocks (one per SM, as in the paper's v4), interpolating from
//! a single block up to beyond the H100's 132 SMs. The machine model
//! stays fixed so the curve isolates *algorithmic* scalability — how far
//! hierarchical stealing can spread a DFS.

use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::gen::mesh::delaunay_mesh;
use diggerbees::sim::MachineModel;

fn main() {
    let g = delaunay_mesh(600, 600, 9);
    let h100 = MachineModel::h100();
    let root = diggerbees::graph::sources::select_sources(&g, 1, 3)[0];
    println!(
        "mesh: {} vertices, {} edges; sweeping block count (8 warps per block)",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "{:>7} {:>7} {:>12} {:>10} {:>8}",
        "blocks", "warps", "cycles", "MTEPS", "speedup"
    );

    let mut base = None;
    for blocks in [1u32, 2, 4, 8, 16, 33, 66, 108, 132, 164] {
        let cfg = DiggerBeesConfig {
            blocks,
            inter_block: blocks > 1,
            ..DiggerBeesConfig::default()
        };
        let r = run_sim(&g, root, &cfg, &h100);
        let base_cycles = *base.get_or_insert(r.stats.cycles);
        println!(
            "{:>7} {:>7} {:>12} {:>10.1} {:>7.2}x",
            blocks,
            cfg.total_warps(),
            r.stats.cycles,
            r.mteps,
            base_cycles as f64 / r.stats.cycles as f64
        );
    }
    println!(
        "\nThe paper's Fig. 8 shows the same sweep at three points (1, 66, 132\n\
         blocks); scaling flattens once block count outruns the graph's\n\
         stealable parallelism."
    );
}
