//! Tuning the stealing cutoffs for a custom workload (§4.7 in miniature).
//!
//! ```text
//! cargo run --release --example tuning
//! ```
//!
//! Shows how a user would pick `hot_cutoff` / `cold_cutoff` for their own
//! graph: sweep the grid the paper sweeps in Fig. 10 and report the
//! best configuration along with steal statistics explaining *why* —
//! small cutoffs steal too eagerly (contention, failed reservations),
//! large ones react too slowly (idle warps).

use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::gen::rmat::{rmat, RmatParams};
use diggerbees::sim::MachineModel;

fn main() {
    let g = rmat(15, 12, RmatParams::default(), 77);
    let h100 = MachineModel::h100();
    let root = diggerbees::graph::sources::select_sources(&g, 1, 5)[0];
    println!("workload: R-MAT scale 15, {} edges", g.num_edges());
    println!(
        "{:>10} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "hot_cutoff", "cold_cutoff", "MTEPS", "steals", "failed", "flushes"
    );

    let mut best: Option<(f64, u32, u32)> = None;
    for hot in [8u32, 16, 32, 64] {
        for cold in [16u32, 32, 64, 128] {
            let cfg = DiggerBeesConfig {
                hot_cutoff: hot,
                cold_cutoff: cold,
                ..DiggerBeesConfig::v4(h100.sm_count)
            };
            let r = run_sim(&g, root, &cfg, &h100);
            println!(
                "{:>10} {:>11} {:>9.1} {:>9} {:>9} {:>9}",
                hot,
                cold,
                r.mteps,
                r.stats.steals_intra + r.stats.steals_inter,
                r.stats.steal_failures,
                r.stats.flushes
            );
            if best.is_none_or(|(m, _, _)| r.mteps > m) {
                best = Some((r.mteps, hot, cold));
            }
        }
    }
    let (mteps, hot, cold) = best.expect("at least one configuration ran");
    println!(
        "\nbest for this workload: hot_cutoff={hot}, cold_cutoff={cold} ({mteps:.1} MTEPS);\n\
         the paper's defaults are (32, 64)."
    );
}
