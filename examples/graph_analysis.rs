//! Structural analysis with the apps layer — the §1 motivation end to
//! end.
//!
//! ```text
//! cargo run --release --example graph_analysis
//! ```
//!
//! Takes a citation-style DAG and a fragmented road network and runs the
//! DFS application stack over them: topological sorting, SCC, spanning
//! forests (via the parallel engines), articulation points, and a
//! reachability oracle.

use diggerbees::apps::articulation::articulation_points;
use diggerbees::apps::forest::{spanning_forest, NativeDfs};
use diggerbees::apps::reach::ReachOracle;
use diggerbees::apps::scc::scc;
use diggerbees::apps::topo::{topo_sort, verify_topo_order, TopoResult};
use diggerbees::core::native::NativeConfig;
use diggerbees::gen::{grid, pref};

fn main() {
    // --- Ordering problems: topological sort of a citation DAG ---
    let dag = pref::citation_dag(5000, 4, 7);
    println!(
        "citation DAG: {} vertices, {} arcs",
        dag.num_vertices(),
        dag.num_arcs()
    );
    match topo_sort(&dag) {
        TopoResult::Order(order) => {
            verify_topo_order(&dag, &order).expect("valid order");
            println!("  topological order verified ({} vertices)", order.len());
        }
        TopoResult::Cycle(v) => println!("  unexpected cycle through {v}"),
    }
    let comps = scc(&dag);
    println!("  SCCs: {} (all singletons in a DAG)", comps.count);

    // --- Structural analysis: a fragmented road network ---
    let road = grid::grid_road(120, 120, 0.55, 0, 9);
    let engine = NativeDfs(NativeConfig::default());
    let forest = spanning_forest(&road, &engine);
    println!(
        "\nroad network: {} vertices, {} edges, {} connected components",
        road.num_vertices(),
        road.num_edges(),
        forest.num_components()
    );
    let cuts = articulation_points(&road);
    let n_cuts = cuts.articulation.iter().filter(|&&b| b).count();
    println!(
        "  {} articulation points, {} bridges — single points of failure",
        n_cuts,
        cuts.bridges.len()
    );

    // --- Reachability oracle over depot hubs ---
    let hubs: Vec<u32> = (0..4)
        .map(|i| i * (road.num_vertices() as u32 / 4) + 7)
        .collect();
    let oracle = ReachOracle::build(&road, &hubs, &engine);
    println!("\ndepot coverage (vertices reachable per hub):");
    for (i, &h) in oracle.hubs().iter().enumerate() {
        println!("  hub {h}: {} vertices", oracle.coverage(i));
    }
    let target = road.num_vertices() as u32 - 1;
    println!(
        "  hubs reaching vertex {target}: {:?}",
        oracle.sources_reaching(target)
    );
}
