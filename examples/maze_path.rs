//! Using the DFS tree: path extraction in a maze.
//!
//! ```text
//! cargo run --release --example maze_path
//! ```
//!
//! The `parent` array DiggerBees produces (Table 2's "DFS Tree" output)
//! is directly useful: after one traversal from the maze entrance, the
//! path to *any* reachable cell falls out by walking parent pointers.
//! This is the kind of downstream use (structural analysis, §1) that
//! reachability-only methods like CKL-/ACR-PDFS cannot serve.

use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::gen::grid::grid_road;
use diggerbees::graph::NO_PARENT;

fn main() {
    // A 60x60 maze: a thinned lattice (dead ends and walls).
    let side = 60u32;
    let g = grid_road(side, side, 0.75, 0, 2026);
    let entrance = 0u32; // top-left
    let exit = side * side - 1; // bottom-right

    let engine = NativeEngine::new(NativeConfig::default());
    let out = engine.run(&g, entrance);

    if !out.visited[exit as usize] {
        println!("exit unreachable from the entrance (walled off) — try another seed");
        return;
    }

    // Walk parent pointers from the exit back to the entrance.
    let mut path = vec![exit];
    let mut v = exit;
    while v != entrance {
        v = out.parent[v as usize];
        assert_ne!(v, NO_PARENT, "visited vertices have parents");
        path.push(v);
    }
    path.reverse();

    println!(
        "maze {}x{}: DFS visited {} of {} cells in {:?}",
        side,
        side,
        out.visited.iter().filter(|&&b| b).count(),
        g.num_vertices(),
        out.wall
    );
    println!("path entrance -> exit: {} steps", path.len() - 1);

    // Render a small corner of the maze with the path marked.
    let window = 30u32;
    let on_path: std::collections::HashSet<u32> = path.iter().copied().collect();
    for y in 0..window {
        let mut row = String::new();
        for x in 0..window {
            let id = y * side + x;
            row.push(if on_path.contains(&id) {
                '*'
            } else if out.visited[id as usize] {
                '.'
            } else {
                '#'
            });
        }
        println!("{row}");
    }
    println!("(top-left {window}x{window} corner: '*' path, '.' visited, '#' unreachable)");
}
