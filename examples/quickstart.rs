//! Quickstart: run DiggerBees on the paper's Figure 1 graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates both engines: the native multithreaded engine (what a
//! library user runs) and the simulated-GPU engine (what the paper's
//! evaluation figures use), and validates the outputs.

use diggerbees::core::native::{NativeConfig, NativeEngine};
use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::graph::validate::{check_reachability, check_spanning_tree};
use diggerbees::graph::{GraphBuilder, NO_PARENT};
use diggerbees::sim::MachineModel;

fn main() {
    // Figure 1(a): vertices a..f = 0..5 with edges
    // a-b, a-c, b-d, c-e, d-e, c-f.
    let g = GraphBuilder::undirected(6)
        .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4), (2, 5)])
        .build();
    let names = ["a", "b", "c", "d", "e", "f"];
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // --- Native engine: real threads, hierarchical stealing ---
    let engine = NativeEngine::new(NativeConfig::default());
    let out = engine.run(&g, 0);
    check_reachability(&g, 0, &out.visited).expect("visited == reachable");
    check_spanning_tree(&g, 0, &out.visited, &out.parent).expect("valid DFS tree");
    println!("\nnative engine DFS tree (root a):");
    for v in 0..6 {
        let p = out.parent[v];
        if p == NO_PARENT {
            println!("  {} <- (root)", names[v]);
        } else {
            println!("  {} <- {}", names[v], names[p as usize]);
        }
    }
    println!(
        "  wall: {:?}, steals: {} intra + {} inter",
        out.wall, out.stats.steals_intra, out.stats.steals_inter
    );

    // --- Simulated H100: the paper's evaluation engine ---
    let h100 = MachineModel::h100();
    let sim = run_sim(&g, 0, &DiggerBeesConfig::v4(h100.sm_count), &h100);
    check_spanning_tree(&g, 0, &sim.visited, &sim.parent).expect("valid DFS tree");
    println!(
        "\nsimulated H100: {} cycles, {:.1} MTEPS, {} vertices visited",
        sim.stats.cycles, sim.mteps, sim.stats.vertices_visited
    );
    println!("(a valid but unordered DFS tree — Figure 1(c) of the paper)");
}
