//! The paper's headline scenario: deep, narrow traversal paths.
//!
//! ```text
//! cargo run --release --example road_network [grid_side]
//! ```
//!
//! Generates a road-network analogue (thinned lattice, huge diameter),
//! then compares DiggerBees against level-synchronous BFS and the serial
//! reference on the simulated H100. Road networks need thousands of BFS
//! levels (the paper's europe_osm needs 17,346), which is exactly where
//! DFS with hierarchical stealing wins (§4.3).

use diggerbees::baselines::bfs::{self, BfsFlavor};
use diggerbees::baselines::serial;
use diggerbees::core::{run_sim, DiggerBeesConfig};
use diggerbees::gen::grid::grid_road;
use diggerbees::graph::traversal::bfs_levels;
use diggerbees::sim::MachineModel;

fn main() {
    let side: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(700);
    let g = grid_road(side, side, 0.88, 0, 42);
    let h100 = MachineModel::h100();
    let root = diggerbees::graph::sources::select_sources(&g, 1, 7)[0];
    let (_, levels) = bfs_levels(&g, root);
    println!(
        "road network: {}x{} lattice, {} vertices, {} edges, {} BFS levels",
        side,
        side,
        g.num_vertices(),
        g.num_edges(),
        levels
    );

    let ser = serial::run(&g, root, &MachineModel::xeon_max());
    println!("serial DFS (1 Xeon core) : {:8.1} MTEPS", ser.mteps);

    let gun = bfs::run(&g, root, BfsFlavor::Gunrock, &h100);
    println!(
        "Gunrock BFS   (H100)     : {:8.1} MTEPS ({} kernel launches)",
        gun.mteps, levels
    );

    let berry = bfs::run(&g, root, BfsFlavor::BerryBees, &h100);
    println!("BerryBees BFS (H100)     : {:8.1} MTEPS", berry.mteps);

    let db = run_sim(&g, root, &DiggerBeesConfig::v4(h100.sm_count), &h100);
    println!(
        "DiggerBees    (H100)     : {:8.1} MTEPS ({} intra + {} inter steals)",
        db.mteps, db.stats.steals_intra, db.stats.steals_inter
    );

    let best_bfs = gun.mteps.max(berry.mteps);
    println!(
        "\nDiggerBees vs best BFS: {:.2}x — deep, narrow paths starve\n\
         level-synchronous BFS while hierarchical stealing keeps warps busy.",
        db.mteps / best_bfs
    );
}
