#!/bin/bash
# Regenerates every table and figure of the DiggerBees evaluation.
# Outputs: results/*.csv plus the printed tables (tee'd to results/*.log).
set -euo pipefail
cd "$(dirname "$0")"
export DB_SOURCES="${DB_SOURCES:-2}"
BIN=./target/release
EXPERIMENTS="tables fig6_representative fig9_balance fig8_breakdown ablation_tma \
             ablation_scheduler fig10_sensitivity fig5_dfs_comparison fig7_scalability"

# Fail fast before any experiment runs if a binary is missing: a partial
# results/ directory from a stale build is worse than no results at all.
for exp in $EXPERIMENTS; do
  if [ ! -x "$BIN/$exp" ]; then
    echo "missing binary: $BIN/$exp (run 'cargo build --release' first)" >&2
    exit 1
  fi
done

mkdir -p results
failed=0
for exp in $EXPERIMENTS; do
  echo "=== $exp (DB_SOURCES=$DB_SOURCES) ==="
  start=$SECONDS
  if "$BIN/$exp" --csv > "results/$exp.log" 2>&1; then
    echo "  ok in $((SECONDS-start))s"
  else
    echo "FAILED: $exp (see results/$exp.log)" >&2
    failed=1
  fi
done
if [ "$failed" -ne 0 ]; then
  echo "some experiments failed" >&2
  exit 1
fi
echo "all experiments complete"
