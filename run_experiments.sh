#!/bin/bash
# Regenerates every table and figure of the DiggerBees evaluation.
# Outputs: results/*.csv plus the printed tables (tee'd to results/*.log).
set -u
cd "$(dirname "$0")"
export DB_SOURCES="${DB_SOURCES:-2}"
BIN=./target/release
mkdir -p results
for exp in tables fig6_representative fig9_balance fig8_breakdown ablation_tma \
           ablation_scheduler fig10_sensitivity fig5_dfs_comparison fig7_scalability; do
  echo "=== $exp (DB_SOURCES=$DB_SOURCES) ==="
  start=$SECONDS
  if $BIN/$exp --csv > results/$exp.log 2>&1; then
    echo "  ok in $((SECONDS-start))s"
  else
    echo "FAILED: $exp (see results/$exp.log)"
  fi
done
echo "all experiments complete"
