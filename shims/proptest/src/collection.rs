//! Collection strategies: `vec(element, size)`.

use crate::{Strategy, TestRng};
use std::ops::{Range, RangeInclusive};

/// Accepted size specifications for `vec` (half-open range, inclusive
/// range, or an exact length).
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_excl: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_excl: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_excl: n + 1,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi_excl - self.size.lo) as u64;
        let n = self.size.lo + (rng.next_u64() % span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{Strategy, TestRng};

    #[test]
    fn vec_respects_size_bounds() {
        let s = super::vec(0u32..5, 2..7);
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
