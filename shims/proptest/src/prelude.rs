//! Glob-import surface mirroring `proptest::prelude::*`.

pub use crate::{
    any, Any, Arbitrary, ProptestConfig, Strategy, TestCaseError, TestRng, TestRunner,
};

pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
