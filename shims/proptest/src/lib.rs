//! Offline shim for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the `proptest!` macro (with an optional
//! `#![proptest_config(..)]` header), `Strategy` with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, `any::<T>()`,
//! `collection::vec`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Semantics differ from real proptest in one deliberate way: there is
//! no shrinking. A failing case panics with the assertion message; the
//! RNG is seeded deterministically from the test name (override with
//! `PROPTEST_SEED`), so failures reproduce exactly on re-run.

pub mod collection;
pub mod prelude;

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic splitmix64 stream used to generate test cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn next_f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strat: self, f }
    }

    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { strat: self, f }
    }
}

pub struct Map<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.strat.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    strat: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.strat.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (*self.start() as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64_unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty range strategy");
        self.start() + rng.next_f64_unit() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types producible by `any::<T>()`.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64_unit()
    }
}

pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Configuration for a `proptest!` block; constructed with functional
/// record update over `default()`, so all fields are public.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Abort if rejects (`prop_assume!` misses) exceed this count.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The generated case did not satisfy a `prop_assume!` precondition.
    Reject,
    /// The property failed with this message.
    Fail(String),
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: counts passes and rejects, panics on failure.
pub struct TestRunner {
    config: ProptestConfig,
    rng: TestRng,
    name: String,
    passed: u32,
    rejected: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x5EED_0000_0000_0000u64)
            ^ fnv1a64(name.as_bytes());
        TestRunner {
            config,
            rng: TestRng::new(seed),
            name: name.to_string(),
            passed: 0,
            rejected: 0,
        }
    }

    pub fn done(&self) -> bool {
        self.passed >= self.config.cases
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    pub fn record(&mut self, result: Result<(), TestCaseError>) {
        match result {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject) => {
                self.rejected += 1;
                if self.rejected > self.config.max_global_rejects {
                    panic!(
                        "[{}] too many rejected cases ({} rejects, {} of {} passed)",
                        self.name, self.rejected, self.passed, self.config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "[{}] property failed at case {}: {}",
                    self.name, self.passed, msg
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            while !runner.done() {
                let result: ::core::result::Result<(), $crate::TestCaseError> = {
                    $(let $pat = $crate::Strategy::generate(&($strat), runner.rng());)*
                    (move || -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::core::result::Result::Ok(())
                    })()
                };
                runner.record(result);
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?} == {:?}` failed",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}: `{:?} != {:?}` failed",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Ranges stay in bounds; assume and multi-arg parsing work.
        fn ranges_and_assume(x in 1u32..10, y in 0u64..100, f in 0.25f64..0.75) {
            prop_assume!(x != 3);
            prop_assert!((1..10).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((0.25..0.75).contains(&f), "f out of range: {f}");
        }

        /// Tuple patterns and flat-mapped strategies.
        fn tuple_pattern((n, v) in (2u32..9).prop_flat_map(|n| {
            crate::collection::vec(0u32..n, 1..20).prop_map(move |v| (n, v))
        })) {
            prop_assert!(!v.is_empty());
            for x in &v {
                prop_assert!(*x < n);
            }
        }

        fn any_values(v in crate::collection::vec(crate::any::<u32>(), 1..8)) {
            prop_assert!((1..8).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
