//! Offline shim for `criterion`.
//!
//! Provides the measurement surface the workspace benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `criterion_group!` / `criterion_main!`) with a simple but
//! honest methodology: a warm-up phase sizes the per-sample iteration count,
//! then `sample_size` timed samples are collected and min / median / max
//! per-iteration times are reported to stdout. No HTML reports, no stats
//! beyond the three-point summary.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs the closure `iters` times per call and records the elapsed time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let (n, meas, warm) = (self.sample_size, self.measurement_time, self.warm_up_time);
        run_bench(&id.to_string(), n, meas, warm, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_bench(
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.measurement_time,
            self.criterion.warm_up_time,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };

    // Warm-up doubles as calibration: grow the iteration count until the
    // warm-up window is consumed, then estimate per-iteration cost.
    let warm_start = Instant::now();
    let mut per_iter_ns;
    loop {
        f(&mut b);
        per_iter_ns = (b.elapsed.as_nanos() as f64 / b.iters as f64).max(0.5);
        if warm_start.elapsed() >= warm_up_time {
            break;
        }
        b.iters = (b.iters * 2).min(1 << 32);
    }

    let per_sample = measurement_time.as_nanos() as f64 / sample_size as f64;
    let iters = ((per_sample / per_iter_ns) as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters;
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let max = samples[samples.len() - 1];

    print!(
        "{name:<48} time: [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max)
    );
    match throughput {
        Some(Throughput::Elements(n)) => {
            let eps = n as f64 / (median / 1e9);
            print!("  thrpt: {:.1} Melem/s", eps / 1e6);
        }
        Some(Throughput::Bytes(n)) => {
            let bps = n as f64 / (median / 1e9);
            print!("  thrpt: {:.1} MiB/s", bps / (1024.0 * 1024.0));
        }
        None => {}
    }
    println!();
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(16));
        group.bench_function("sum", |b| b.iter(|| (0..16u64).map(black_box).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("id", "param"), &4u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
