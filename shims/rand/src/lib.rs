//! Offline shim for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors a minimal, API-compatible subset of `rand` 0.8: the
//! `RngCore` / `Rng` / `SeedableRng` traits, uniform range sampling for the
//! primitive types the engines use, and `rngs::{SmallRng, StdRng}` backed by
//! xoshiro256++ seeded via splitmix64. Determinism matters more here than
//! statistical pedigree: every engine seeds explicitly via `seed_from_u64`.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Core randomness source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform f64 in `[0, 1)` with 53 bits of precision.
    fn next_f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types that `Rng::gen` can produce.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64_unit()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Element types uniform ranges can be sampled over. A single generic
/// `SampleRange` impl per range type routes through this trait, so type
/// inference can flow from the range's element type into the result
/// (matching real rand's `SampleUniform` structure).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + rng.next_f64_unit() * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + rng.next_f64_unit() * (hi - lo)
    }
}

/// Range types accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    fn is_empty_range(&self) -> bool;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
    fn is_empty_range(&self) -> bool {
        self.start >= self.end
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
    fn is_empty_range(&self) -> bool {
        self.start() > self.end()
    }
}

/// Convenience sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, RR: SampleRange<T>>(&mut self, range: RR) -> T
    where
        Self: Sized,
    {
        assert!(!range.is_empty_range(), "cannot sample empty range");
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64_unit() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding; the workspace only uses `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(0usize..=4);
            assert!(y <= 4);
            let f = r.gen_range(0.5f64..1.0);
            assert!((0.5..1.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
