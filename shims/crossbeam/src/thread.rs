//! `crossbeam::scope` compatibility over `std::thread::scope`.
//!
//! Differences from real crossbeam: child panics propagate out of
//! `scope` (std behaviour) instead of being collected into `Err`, so the
//! returned `Result` is always `Ok`. Workspace callers immediately
//! `.expect()` the result, which behaves identically either way.

pub type ScopedJoinHandle<'scope, T> = std::thread::ScopedJoinHandle<'scope, T>;

pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }))
    }
}

pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn spawned_threads_join_before_scope_returns() {
        let n = AtomicU32::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                let n = &n;
                s.spawn(move |_| n.fetch_add(1, Ordering::Relaxed));
            }
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = AtomicU32::new(0);
        super::scope(|s| {
            let n = &n;
            s.spawn(move |s2| {
                s2.spawn(move |_| n.fetch_add(1, Ordering::Relaxed));
            });
        })
        .unwrap();
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }
}
