//! Work-stealing deque with the `crossbeam-deque` API shape: LIFO owner
//! end, FIFO steals (Chase-Lev split), backed by a mutexed `VecDeque`.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex, PoisonError};

pub struct Worker<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

pub struct Stealer<T> {
    q: Arc<Mutex<VecDeque<T>>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    Empty,
    Success(T),
    Retry,
}

impl<T> Worker<T> {
    pub fn new_lifo() -> Self {
        Worker {
            q: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Owner pushes and pops at the back (LIFO, depth-first order).
    pub fn push(&self, task: T) {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(task);
    }

    pub fn pop(&self) -> Option<T> {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop_back()
    }

    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }

    pub fn len(&self) -> usize {
        self.q.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

impl<T> Stealer<T> {
    /// Thieves take from the front (the oldest, shallowest task).
    pub fn steal(&self) -> Steal<T> {
        match self.q.lock() {
            Ok(mut g) => match g.pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
            Err(p) => match p.into_inner().pop_front() {
                Some(t) => Steal::Success(t),
                None => Steal::Empty,
            },
        }
    }

    pub fn is_empty(&self) -> bool {
        self.q
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            q: Arc::clone(&self.q),
        }
    }
}

impl<T> Steal<T> {
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Steal, Worker};

    #[test]
    fn owner_lifo_thief_fifo() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(s.steal(), Steal::Success(1)); // oldest first
        assert_eq!(w.pop(), Some(3)); // newest first
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }
}
