//! Offline shim for `crossbeam`: scoped threads layered over
//! `std::thread::scope` plus a mutex-based work-stealing deque with the
//! `crossbeam-deque` owner/stealer API. Correctness-equivalent, not
//! performance-equivalent: the deque serializes owner and thieves on one
//! lock, which is acceptable for the baseline ablation it backs.

pub mod deque;
pub mod thread;

pub use thread::scope;
