//! Offline shim for `parking_lot`: a `Mutex` with the parking_lot calling
//! convention (no `Result`, poison-transparent) layered over `std::sync`.

use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
