//! Property tests for the graph substrate: CSR construction invariants,
//! Matrix Market round-trips, and the DFS-tree validator's soundness on
//! arbitrary graphs.

use db_graph::builder::from_edge_list;
use db_graph::mm::{read_matrix_market, write_matrix_market};
use db_graph::traversal::{bfs_levels, connected_components, serial_dfs};
use db_graph::validate::{check_dfs_tree_property, check_reachability, check_spanning_tree};
use db_graph::{CsrGraph, NO_PARENT};
use proptest::prelude::*;

fn arb_edges(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |e| (n, e))
    })
}

fn arb_graph(max_n: u32, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    arb_edges(max_n, max_m).prop_map(|(n, e)| from_edge_list(n, &e, false))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn csr_invariants((n, edges) in arb_edges(80, 200)) {
        let g = from_edge_list(n, &edges, false);
        // Row pointers partition col_idx.
        prop_assert_eq!(g.row_ptr().len(), g.num_vertices() + 1);
        prop_assert_eq!(*g.row_ptr().last().unwrap() as usize, g.num_arcs());
        // Undirected symmetry: u in N(v) iff v in N(u).
        for (u, v) in g.arcs() {
            prop_assert!(g.has_arc(v, u), "missing reverse arc {v}->{u}");
        }
        // Neighbors sorted and deduplicated.
        for u in 0..n {
            let nb = g.neighbors(u);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "row {u} not strictly sorted");
        }
    }

    #[test]
    fn directed_csr_preserves_all_arcs((n, edges) in arb_edges(60, 150)) {
        let g = from_edge_list(n, &edges, true);
        let mut want: Vec<(u32, u32)> = edges.clone();
        want.sort_unstable();
        want.dedup();
        let got: Vec<(u32, u32)> = g.arcs().collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn matrix_market_round_trip(g in arb_graph(50, 120)) {
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn matrix_market_round_trip_directed((n, edges) in arb_edges(40, 100)) {
        let g = from_edge_list(n, &edges, true);
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let back = read_matrix_market(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn serial_dfs_always_valid(g in arb_graph(60, 150), root in 0u32..60) {
        prop_assume!((root as usize) < g.num_vertices());
        let out = serial_dfs(&g, root);
        check_reachability(&g, root, &out.visited).unwrap();
        check_spanning_tree(&g, root, &out.visited, &out.parent).unwrap();
        check_dfs_tree_property(&g, root, &out.visited, &out.parent).unwrap();
        // Discovery order is consistent with the tree: parents precede
        // children.
        let mut pos = vec![usize::MAX; g.num_vertices()];
        for (i, &v) in out.order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..g.num_vertices() {
            let p = out.parent[v];
            if p != NO_PARENT {
                prop_assert!(pos[p as usize] < pos[v], "parent after child in order");
            }
        }
    }

    #[test]
    fn validator_rejects_mutated_trees(g in arb_graph(40, 100)) {
        let out = serial_dfs(&g, 0);
        let visited_count = out.visited.iter().filter(|&&b| b).count();
        prop_assume!(visited_count >= 3);
        // Point some visited non-root vertex at itself: cycle.
        let victim = (1..g.num_vertices())
            .find(|&v| out.visited[v] && out.parent[v] != NO_PARENT)
            .unwrap();
        let mut bad = out.parent.clone();
        bad[victim] = victim as u32;
        prop_assert!(check_spanning_tree(&g, 0, &out.visited, &bad).is_err());
    }

    #[test]
    fn bfs_levels_are_tight(g in arb_graph(60, 150)) {
        let (levels, depth) = bfs_levels(&g, 0);
        // Level d vertices have a level d-1 neighbor; no edge skips a level.
        for u in 0..g.num_vertices() as u32 {
            if levels[u as usize] == u32::MAX {
                continue;
            }
            for &v in g.neighbors(u) {
                if levels[v as usize] != u32::MAX {
                    let lu = levels[u as usize] as i64;
                    let lv = levels[v as usize] as i64;
                    prop_assert!((lu - lv).abs() <= 1, "edge {u}-{v} skips a level");
                }
            }
        }
        let max_level = levels.iter().filter(|&&l| l != u32::MAX).max().copied().unwrap_or(0);
        prop_assert_eq!(depth as u64, max_level as u64 + 1);
    }

    #[test]
    fn components_partition_the_graph(g in arb_graph(60, 150)) {
        let (comp, count) = connected_components(&g);
        prop_assert!(comp.iter().all(|&c| c < count));
        // Edges never cross components.
        for (u, v) in g.arcs() {
            prop_assert_eq!(comp[u as usize], comp[v as usize]);
        }
        // DFS from any vertex visits exactly its component.
        if g.num_vertices() > 0 {
            let out = serial_dfs(&g, 0);
            for v in 0..g.num_vertices() {
                prop_assert_eq!(out.visited[v], comp[v] == comp[0]);
            }
        }
    }
}
