//! Property tests feeding *malformed* CSR inputs through the builder
//! and validation layers: every structural defect must be rejected with
//! a typed error at the boundary (`try_from_sorted_parts`) or a clean
//! `ValidationError`, never a panic or an out-of-bounds access in a
//! downstream traversal.

use db_graph::builder::from_edge_list;
use db_graph::csr::CsrError;
use db_graph::validate::{check_reachability, check_spanning_tree};
use db_graph::{CsrGraph, NO_PARENT};
use proptest::prelude::*;

/// A well-formed random CSR: `n` vertices, sorted rows.
fn arb_parts(max_n: u32, max_m: usize) -> impl Strategy<Value = (u32, Vec<u64>, Vec<u32>)> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n, 0..n), 0..max_m).prop_map(move |mut arcs| {
            arcs.sort_unstable();
            arcs.dedup();
            let mut row_ptr = vec![0u64; n as usize + 1];
            for &(u, _) in &arcs {
                row_ptr[u as usize + 1] += 1;
            }
            for i in 0..n as usize {
                row_ptr[i + 1] += row_ptr[i];
            }
            let col_idx = arcs.iter().map(|&(_, v)| v).collect();
            (n, row_ptr, col_idx)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn well_formed_parts_accepted((n, row_ptr, col_idx) in arb_parts(40, 120)) {
        let g = CsrGraph::try_from_sorted_parts(n, row_ptr, col_idx, true).unwrap();
        prop_assert_eq!(g.num_vertices(), n as usize);
    }

    /// Out-of-range neighbor: bumping any column index to >= n must be
    /// rejected, with the defect located.
    #[test]
    fn out_of_range_neighbor_rejected(
        (n, row_ptr, col_idx) in arb_parts(40, 120),
        pick in any::<u16>(),
        bump in 0u32..5,
    ) {
        prop_assume!(!col_idx.is_empty());
        let at = pick as usize % col_idx.len();
        let mut bad = col_idx.clone();
        bad[at] = n + bump;
        let err = CsrGraph::try_from_sorted_parts(n, row_ptr, bad, true).unwrap_err();
        prop_assert_eq!(err, CsrError::ColumnOutOfRange { at, value: n + bump, n });
    }

    /// Non-monotone offsets: swapping two distinct row_ptr values (or
    /// inflating an interior one) must be caught before any traversal
    /// can index col_idx with them.
    #[test]
    fn non_monotone_row_ptr_rejected(
        (n, row_ptr, col_idx) in arb_parts(40, 120),
        pick in any::<u16>(),
    ) {
        prop_assume!(row_ptr.len() >= 3);
        // Corrupt an interior offset upward past its successor.
        let at = 1 + pick as usize % (row_ptr.len() - 2);
        let mut bad = row_ptr.clone();
        bad[at] = bad[at + 1] + 1 + col_idx.len() as u64;
        let err = CsrGraph::try_from_sorted_parts(n, bad, col_idx, true).unwrap_err();
        prop_assert!(matches!(
            err,
            CsrError::RowPtrDecreasing { .. } | CsrError::RowPtrEnd { .. }
        ));
    }

    /// Truncated or oversized row_ptr arrays are length errors, not
    /// index panics.
    #[test]
    fn wrong_row_ptr_length_rejected(
        (n, row_ptr, col_idx) in arb_parts(40, 120),
        grow in any::<bool>(),
    ) {
        let mut bad = row_ptr;
        if grow {
            bad.push(col_idx.len() as u64);
        } else {
            bad.pop();
        }
        let err = CsrGraph::try_from_sorted_parts(n, bad, col_idx, true).unwrap_err();
        prop_assert!(matches!(err, CsrError::RowPtrLength { .. } | CsrError::RowPtrEnd { .. }));
    }

    /// The builder normalizes duplicate edges and self-loops rather
    /// than producing a malformed CSR: rows stay strictly sorted, and
    /// downstream validation accepts a traversal of the result.
    #[test]
    fn builder_normalizes_duplicates_and_self_loops(
        n in 2u32..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 1..120),
    ) {
        let edges: Vec<(u32, u32)> = edges
            .into_iter()
            .map(|(u, v)| (u % n, v % n))
            // Duplicate every edge and add a self-loop per endpoint.
            .flat_map(|(u, v)| [(u, v), (u, v), (u, u)])
            .collect();
        let g = from_edge_list(n, &edges, false);
        for u in 0..n {
            let nb = g.neighbors(u);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]), "row {u} has duplicates");
        }
        // A traversal over the normalized graph passes validation.
        let out = db_graph::serial_dfs(&g, edges[0].0);
        check_reachability(&g, edges[0].0, &out.visited).unwrap();
        check_spanning_tree(&g, edges[0].0, &out.visited, &out.parent).unwrap();
    }

    /// Corrupted traversal outputs (wrong-length arrays, out-of-range
    /// parents, parents pointing at unvisited vertices) are rejected by
    /// the validator with an error, never a panic.
    #[test]
    fn validator_rejects_corrupt_outputs_without_panicking(
        (n, row_ptr, col_idx) in arb_parts(30, 80),
        corrupt in 0u8..4,
        pick in any::<u16>(),
    ) {
        let g = CsrGraph::try_from_sorted_parts(n, row_ptr, col_idx, false).unwrap();
        let out = db_graph::serial_dfs(&g, 0);
        let mut visited = out.visited.clone();
        let mut parent = out.parent.clone();
        let at = pick as usize % n as usize;
        match corrupt {
            0 => { visited.pop(); }                    // wrong length
            1 => { parent[at] = n + 7; }               // out-of-range parent
            2 => { visited[at] = false; }              // hole in the tree
            _ => { parent.push(NO_PARENT); }           // wrong length
        }
        let tree = check_spanning_tree(&g, 0, &visited, &parent);
        let reach = check_reachability(&g, 0, &visited);
        // At least one level of checking must flag the corruption
        // (flipping visited[at] may be a no-op if 'at' was unreachable
        // and already false — then both checks legitimately pass).
        let unchanged = visited == out.visited && parent == out.parent;
        prop_assert!(unchanged || tree.is_err() || reach.is_err());
    }
}
