//! Vertex reordering (relabeling) transforms.
//!
//! Traversal locality depends heavily on vertex order — SuiteSparse
//! road networks come roughly geographically ordered, social graphs
//! roughly by crawl order. These transforms let experiments control for
//! that: relabel a graph by BFS/DFS discovery order (locality-friendly)
//! or by a seeded random permutation (locality-adversarial), and the
//! harness can measure the difference.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Applies a permutation: vertex `v` becomes `perm[v]`.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..n`.
pub fn apply_permutation(g: &CsrGraph, perm: &[u32]) -> CsrGraph {
    let n = g.num_vertices();
    assert_eq!(perm.len(), n, "permutation length mismatch");
    let mut seen = vec![false; n];
    for &p in perm {
        assert!((p as usize) < n && !seen[p as usize], "not a permutation");
        seen[p as usize] = true;
    }
    let mut b = if g.is_directed() {
        GraphBuilder::directed(n as u32)
    } else {
        GraphBuilder::undirected(n as u32)
    };
    b.reserve(g.num_arcs());
    for (u, v) in g.arcs() {
        if g.is_directed() || u <= v {
            b.edge(perm[u as usize], perm[v as usize]);
        }
    }
    b.build()
}

/// Permutation placing vertices in BFS discovery order from `root`
/// (unreached vertices keep their relative order at the end).
pub fn bfs_order(g: &CsrGraph, root: VertexId) -> Vec<u32> {
    let (levels, _) = crate::traversal::bfs_levels(g, root);
    order_from_discovery(g, |next| {
        // Re-run a BFS recording discovery sequence.
        let mut q = std::collections::VecDeque::new();
        let mut seen = vec![false; g.num_vertices()];
        seen[root as usize] = true;
        q.push_back(root);
        while let Some(u) = q.pop_front() {
            next(u);
            for &v in g.neighbors(u) {
                if !seen[v as usize] {
                    seen[v as usize] = true;
                    q.push_back(v);
                }
            }
        }
        let _ = &levels;
    })
}

/// Permutation placing vertices in serial-DFS discovery order from
/// `root` (unreached vertices keep their relative order at the end).
pub fn dfs_order(g: &CsrGraph, root: VertexId) -> Vec<u32> {
    let out = crate::traversal::serial_dfs(g, root);
    order_from_discovery(g, |next| {
        for &v in &out.order {
            next(v);
        }
    })
}

/// Seeded uniformly random permutation.
pub fn random_order(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

fn order_from_discovery<F: FnOnce(&mut dyn FnMut(u32))>(g: &CsrGraph, visit: F) -> Vec<u32> {
    let n = g.num_vertices();
    let mut perm = vec![u32::MAX; n];
    let mut next_id = 0u32;
    {
        let mut assign = |v: u32| {
            if perm[v as usize] == u32::MAX {
                perm[v as usize] = next_id;
                next_id += 1;
            }
        };
        visit(&mut assign);
    }
    for p in perm.iter_mut() {
        if *p == u32::MAX {
            *p = next_id;
            next_id += 1;
        }
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{bfs_levels, reachable_set};

    fn sample() -> CsrGraph {
        GraphBuilder::undirected(6)
            .edges([(0, 2), (2, 4), (4, 1), (1, 3), (0, 5)])
            .build()
    }

    #[test]
    fn permutation_preserves_structure() {
        let g = sample();
        let perm = random_order(6, 7);
        let h = apply_permutation(&g, &perm);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        // Edge (u,v) in g iff (perm[u], perm[v]) in h.
        for (u, v) in g.arcs() {
            assert!(h.has_arc(perm[u as usize], perm[v as usize]));
        }
        // Degrees are permuted.
        for v in 0..6u32 {
            assert_eq!(g.degree(v), h.degree(perm[v as usize]));
        }
    }

    #[test]
    fn bfs_order_starts_at_root() {
        let g = sample();
        let perm = bfs_order(&g, 2);
        assert_eq!(perm[2], 0, "root gets id 0");
        // Reachability is preserved under relabeling.
        let h = apply_permutation(&g, &perm);
        let want: usize = reachable_set(&g, 2).iter().filter(|&&b| b).count();
        let got: usize = reachable_set(&h, 0).iter().filter(|&&b| b).count();
        assert_eq!(want, got);
    }

    #[test]
    fn dfs_order_matches_serial_discovery() {
        let g = sample();
        let perm = dfs_order(&g, 0);
        let out = crate::traversal::serial_dfs(&g, 0);
        for (i, &v) in out.order.iter().enumerate() {
            assert_eq!(perm[v as usize], i as u32);
        }
    }

    #[test]
    fn unreachable_vertices_go_last() {
        let g = GraphBuilder::undirected(4).edges([(0, 1)]).build();
        let perm = dfs_order(&g, 0);
        assert!(perm[2] >= 2 && perm[3] >= 2);
        assert_eq!(perm[0], 0);
    }

    #[test]
    fn random_order_is_a_permutation_and_seeded() {
        let a = random_order(100, 5);
        let b = random_order(100, 5);
        let c = random_order(100, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn relabeling_preserves_bfs_depth() {
        let g = sample();
        let (_, d1) = bfs_levels(&g, 0);
        let perm = random_order(6, 3);
        let h = apply_permutation(&g, &perm);
        let (_, d2) = bfs_levels(&h, perm[0]);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn rejects_bad_permutation() {
        apply_permutation(&sample(), &[0, 0, 1, 2, 3, 4]);
    }
}
