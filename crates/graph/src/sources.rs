//! Source-vertex selection, GAP-benchmark style.
//!
//! §4.1: "For fair comparison across all methods, we use 64 input
//! vertices from the GAP benchmark suite and report average performance."
//! The GAP methodology samples random sources that belong to a non-trivial
//! connected component (degree > 0), with a fixed seed so every method
//! sees the same sources. We reproduce that: seeded sampling of sources
//! with non-zero degree, preferring the largest component for undirected
//! graphs so traversals are non-degenerate.

use crate::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Picks `count` source vertices with non-zero degree using a seeded RNG.
///
/// For undirected graphs, sources are drawn from the largest connected
/// component (GAP draws from the whole graph but rejects trivial
/// traversals; restricting to the giant component is the standard
/// equivalent). For directed graphs, any vertex with out-degree > 0
/// qualifies.
///
/// Returns fewer than `count` sources only if the graph has fewer
/// qualifying vertices than `count` (sources are sampled without
/// replacement in that case; otherwise duplicates are avoided
/// best-effort).
pub fn select_sources(g: &CsrGraph, count: usize, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let eligible: Vec<u32> = if g.is_directed() {
        (0..n as u32).filter(|&v| g.degree(v) > 0).collect()
    } else {
        let (comp, _) = crate::traversal::connected_components(g);
        let (giant, _) = crate::traversal::largest_component(g);
        (0..n as u32)
            .filter(|&v| comp[v as usize] == giant && g.degree(v) > 0)
            .collect()
    };
    if eligible.is_empty() {
        // Degenerate graph (no edges): fall back to vertex 0.
        return vec![0];
    }
    let mut rng = StdRng::seed_from_u64(seed);
    if eligible.len() <= count {
        return eligible;
    }
    // Sample without replacement via partial Fisher-Yates.
    let mut pool = eligible;
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        let j = rng.gen_range(i..pool.len());
        pool.swap(i, j);
        out.push(pool[i]);
    }
    out
}

/// The default source count used throughout the evaluation (§4.1 uses 64;
/// the scaled-down harness defaults to fewer, see `db-bench`).
pub const GAP_SOURCE_COUNT: usize = 64;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn sources_are_deterministic() {
        let g = GraphBuilder::undirected(100)
            .edges((0..99).map(|i| (i, i + 1)))
            .build();
        let a = select_sources(&g, 8, 42);
        let b = select_sources(&g, 8, 42);
        assert_eq!(a, b);
        let c = select_sources(&g, 8, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn sources_have_degree() {
        let mut b = GraphBuilder::undirected(50);
        for i in 0..20 {
            b.edge(i, i + 1);
        }
        let g = b.build();
        for s in select_sources(&g, 8, 1) {
            assert!(g.degree(s) > 0, "source {s} has zero degree");
        }
    }

    #[test]
    fn sources_come_from_giant_component() {
        // Components: {0..=10} (11 vertices) and {20, 21}.
        let mut b = GraphBuilder::undirected(30);
        for i in 0..10 {
            b.edge(i, i + 1);
        }
        b.edge(20, 21);
        let g = b.build();
        for s in select_sources(&g, 5, 7) {
            assert!(s <= 10, "source {s} outside the giant component");
        }
    }

    #[test]
    fn no_duplicate_sources_when_enough_candidates() {
        let g = GraphBuilder::undirected(200)
            .edges((0..199).map(|i| (i, i + 1)))
            .build();
        let s = select_sources(&g, 64, 9);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }

    #[test]
    fn small_graph_returns_all_eligible() {
        let g = GraphBuilder::undirected(3).edges([(0, 1), (1, 2)]).build();
        let s = select_sources(&g, 64, 1);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn edgeless_graph_falls_back() {
        let g = GraphBuilder::undirected(5).build();
        assert_eq!(select_sources(&g, 4, 0), vec![0]);
    }

    #[test]
    fn directed_sources_need_out_degree() {
        let g = GraphBuilder::directed(4).edges([(0, 1), (2, 3)]).build();
        for s in select_sources(&g, 4, 3) {
            assert!(g.degree(s) > 0);
        }
    }
}
