//! # db-graph — graph substrate for the DiggerBees reproduction
//!
//! This crate provides everything the traversal engines need from a graph:
//!
//! * [`CsrGraph`] — a compact compressed-sparse-row graph over `u32`
//!   vertices with `u64` edge offsets (graphs larger than 4 B edges are
//!   representable; vertex count is capped at `u32::MAX`, matching the
//!   paper's CSR layout in §2.1).
//! * [`builder`] — edge-list ingestion (sorting, deduplication,
//!   symmetrization for undirected graphs).
//! * [`mm`] — a Matrix Market (`.mtx`) reader/writer, the input format of
//!   the paper's artifact (§A.5), so real SuiteSparse graphs can be used
//!   when present.
//! * [`traversal`] — reference serial algorithms: the stack-based DFS of
//!   Algorithm 1 (verbatim), BFS levels, reachability, and connected
//!   components. These are the ground truth every parallel engine is
//!   validated against.
//! * [`validate`] — checkers for traversal outputs: the strict DFS-tree
//!   ancestor property (every non-tree edge joins an ancestor/descendant
//!   pair), spanning-structure validity, and visited-set equivalence.
//! * [`sources`] — GAP-benchmark-style source-vertex selection (§4.1 uses
//!   64 sources drawn from the GAP suite; we draw seeded random sources
//!   from non-trivial components).
//! * [`permute`] — vertex relabeling (BFS/DFS/random orders) for
//!   locality-sensitivity experiments.
//! * [`stats`] — structural characterization: degree shape, BFS level
//!   count, and serial-DFS stack depth (the quantities that position a
//!   graph in the paper's evaluation).
//!
//! The crate is dependency-light and deterministic; all randomness is
//! seeded and owned by the caller.

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod encode;
pub mod mm;
pub mod permute;
pub mod sources;
pub mod stats;
pub mod store;
pub mod traversal;
pub mod validate;

pub use builder::GraphBuilder;
pub use csr::{CsrError, CsrGraph};
pub use store::{GraphStore, HeapRegion, Region, SectionSlice};
pub use traversal::{serial_dfs, DfsOutput};

/// Vertex identifier. The paper's CSR uses 32-bit vertex ids; so do we.
pub type VertexId = u32;

/// Sentinel parent value for roots and unvisited vertices, mirroring the
/// paper's `parent[root] = -1` convention from Algorithm 1.
pub const NO_PARENT: u32 = u32::MAX;
