//! Backing storage abstraction: heap-owned or zero-copy mapped slices.
//!
//! [`CsrGraph`]'s two big arrays (`row_ptr: [u64]`, `col_idx: [u32]`)
//! historically lived in `Vec`s. To serve packed on-disk graphs without
//! copying the offsets array, each array is now a [`SectionSlice`]: either
//! an owned `Vec<T>` (exactly the old representation) or a typed window
//! into an immutable byte [`Region`] — typically an mmap'd pack file owned
//! by the `db-store` crate. Engines are oblivious: they see `&[T]` either
//! way, with zero per-access overhead beyond the enum discriminant at
//! slice-borrow time.
//!
//! Soundness of the mapped path rests on three invariants, all enforced
//! at construction by [`SectionSlice::mapped`]:
//!
//! 1. the byte window lies inside the region,
//! 2. the window is aligned for `T` (sections in the pack format are
//!    8-byte aligned, covering both `u32` and `u64`),
//! 3. the region is immutable for its lifetime ([`Region`] only exposes
//!    shared access) and outlives the slice (held via `Arc`).
//!
//! The format stores little-endian values, so the zero-copy cast is only
//! offered on little-endian hosts; big-endian hosts get a decode-copy
//! fallback at load time (in `db-store`), never a misinterpreted slice.

use crate::csr::CsrGraph;
use std::fmt;
use std::sync::Arc;

/// An immutable block of bytes backing zero-copy sections — an mmap'd
/// file, or a heap buffer standing in for one on platforms without mmap.
///
/// Implementations guarantee the bytes never change and stay valid for
/// the lifetime of the value (mmap'd files must be opened from
/// already-sealed, temp+rename-published packs).
pub trait Region: Send + Sync + fmt::Debug {
    /// The full backing byte block.
    fn bytes(&self) -> &[u8];
}

/// A heap [`Region`] with 8-byte alignment (a `Vec<u8>` is only 1-aligned,
/// so the buffer is stored as `Vec<u64>` words internally).
pub struct HeapRegion {
    words: Vec<u64>,
    len: usize,
}

impl HeapRegion {
    /// Copies `bytes` into a fresh 8-aligned heap buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let words = vec![0u64; bytes.len().div_ceil(8)];
        let mut r = Self {
            words,
            len: bytes.len(),
        };
        // Safe byte-level copy into the word buffer's storage.
        let dst = r.words.as_mut_ptr().cast::<u8>();
        // SAFETY: `words` owns `words.len() * 8 >= bytes.len()` writable
        // bytes and the ranges cannot overlap (fresh allocation).
        unsafe { std::ptr::copy_nonoverlapping(bytes.as_ptr(), dst, bytes.len()) };
        r
    }
}

impl fmt::Debug for HeapRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HeapRegion")
            .field("len", &self.len)
            .finish()
    }
}

impl Region for HeapRegion {
    fn bytes(&self) -> &[u8] {
        // SAFETY: the first `len` bytes of the word buffer were
        // initialized by `from_bytes` (zero-fill + copy).
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Plain little-endian scalars a section may be viewed as. Sealed:
/// only `u32` and `u64` (the two CSR element types) implement it.
///
/// # Safety
///
/// Implementors must be plain-old-data: any bit pattern is a valid
/// value and the type has no padding or pointers.
pub unsafe trait Scalar: sealed::Sealed + Copy + Send + Sync + 'static {}
// SAFETY: u32/u64 are POD — every bit pattern is valid, no padding.
unsafe impl Scalar for u32 {}
// SAFETY: as above.
unsafe impl Scalar for u64 {}

/// A typed slice backed either by an owned `Vec` or by a window into a
/// shared immutable [`Region`] (zero-copy).
pub enum SectionSlice<T: Scalar> {
    /// Heap-owned storage — the classic `Vec` representation.
    Owned(Vec<T>),
    /// A typed window into `owner`'s bytes at `byte_off`, `len` elements
    /// long. Alignment and bounds were checked at construction.
    Mapped {
        /// The region keeping the bytes alive (e.g. an mmap).
        owner: Arc<dyn Region>,
        /// Byte offset of the window within the region.
        byte_off: usize,
        /// Number of `T` elements in the window.
        len: usize,
    },
}

/// A defect constructing a mapped section view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionError {
    /// The requested byte window falls outside the region.
    OutOfBounds {
        /// Requested window start.
        byte_off: usize,
        /// Requested window length in bytes.
        byte_len: usize,
        /// Region size in bytes.
        region_len: usize,
    },
    /// The window start is not aligned for the element type.
    Misaligned {
        /// Requested window start (absolute address modulo considered).
        byte_off: usize,
        /// Required alignment.
        align: usize,
    },
    /// Zero-copy mapping requires a little-endian host; the caller must
    /// fall back to a decode-copy load.
    BigEndianHost,
}

impl fmt::Display for SectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionError::OutOfBounds {
                byte_off,
                byte_len,
                region_len,
            } => write!(
                f,
                "section window [{byte_off}, +{byte_len}) exceeds region of {region_len} bytes"
            ),
            SectionError::Misaligned { byte_off, align } => {
                write!(f, "section offset {byte_off} not {align}-byte aligned")
            }
            SectionError::BigEndianHost => {
                write!(f, "zero-copy mapping requires a little-endian host")
            }
        }
    }
}

impl std::error::Error for SectionError {}

impl<T: Scalar> SectionSlice<T> {
    /// Wraps an owned vector (no copy).
    #[inline]
    pub fn owned(v: Vec<T>) -> Self {
        SectionSlice::Owned(v)
    }

    /// Creates a zero-copy view of `len` elements at `byte_off` within
    /// `owner`, validating bounds, alignment, and host endianness.
    pub fn mapped(
        owner: Arc<dyn Region>,
        byte_off: usize,
        len: usize,
    ) -> Result<Self, SectionError> {
        if cfg!(target_endian = "big") {
            return Err(SectionError::BigEndianHost);
        }
        let elem = std::mem::size_of::<T>();
        let byte_len = len.checked_mul(elem).ok_or(SectionError::OutOfBounds {
            byte_off,
            byte_len: usize::MAX,
            region_len: owner.bytes().len(),
        })?;
        let region = owner.bytes();
        let end = byte_off.checked_add(byte_len);
        if end.is_none() || end.unwrap() > region.len() {
            return Err(SectionError::OutOfBounds {
                byte_off,
                byte_len,
                region_len: region.len(),
            });
        }
        let addr = region.as_ptr() as usize + byte_off;
        let align = std::mem::align_of::<T>();
        if !addr.is_multiple_of(align) {
            return Err(SectionError::Misaligned { byte_off, align });
        }
        Ok(SectionSlice::Mapped {
            owner,
            byte_off,
            len,
        })
    }

    /// Borrows the elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            SectionSlice::Owned(v) => v.as_slice(),
            SectionSlice::Mapped {
                owner,
                byte_off,
                len,
            } => {
                let base = owner.bytes().as_ptr();
                // SAFETY: construction checked that [byte_off,
                // byte_off + len * size_of::<T>()) lies inside the region
                // and is aligned for T; T is POD (`Scalar`), the region is
                // immutable, and the borrow of `self` keeps `owner` (and
                // thus the bytes) alive.
                unsafe { std::slice::from_raw_parts(base.add(*byte_off).cast::<T>(), *len) }
            }
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SectionSlice::Owned(v) => v.len(),
            SectionSlice::Mapped { len, .. } => *len,
        }
    }

    /// Whether the slice is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of private heap this slice owns (0 when mapped — the region
    /// is shared and accounted by whoever owns it).
    pub fn heap_bytes(&self) -> usize {
        match self {
            SectionSlice::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            SectionSlice::Mapped { .. } => 0,
        }
    }

    /// Bytes of shared mapped region this slice references (0 when
    /// owned).
    pub fn mapped_bytes(&self) -> usize {
        match self {
            SectionSlice::Owned(_) => 0,
            SectionSlice::Mapped { len, .. } => *len * std::mem::size_of::<T>(),
        }
    }
}

impl<T: Scalar> Clone for SectionSlice<T> {
    fn clone(&self) -> Self {
        match self {
            SectionSlice::Owned(v) => SectionSlice::Owned(v.clone()),
            SectionSlice::Mapped {
                owner,
                byte_off,
                len,
            } => SectionSlice::Mapped {
                owner: Arc::clone(owner),
                byte_off: *byte_off,
                len: *len,
            },
        }
    }
}

impl<T: Scalar> fmt::Debug for SectionSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SectionSlice::Owned(v) => write!(f, "SectionSlice::Owned(len={})", v.len()),
            SectionSlice::Mapped { byte_off, len, .. } => {
                write!(f, "SectionSlice::Mapped(off={byte_off}, len={len})")
            }
        }
    }
}

impl<T: Scalar + PartialEq> PartialEq for SectionSlice<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Scalar + Eq> Eq for SectionSlice<T> {}

/// A graph plus knowledge of where its bytes live — the interface the
/// serve layer caches and the engines traverse.
///
/// `CsrGraph` itself implements this (a fully in-RAM store); `db-store`
/// adds mmap-backed and partitioned implementations.
pub trait GraphStore: Send + Sync + fmt::Debug {
    /// The traversable graph view. For partitioned stores this is the
    /// assembled global graph.
    fn graph(&self) -> &CsrGraph;

    /// Private heap bytes this store owns.
    fn heap_bytes(&self) -> usize {
        self.graph().heap_bytes()
    }

    /// Shared mapped (mmap) bytes this store references.
    fn mapped_bytes(&self) -> usize {
        self.graph().mapped_bytes()
    }

    /// Bytes to charge against a residency budget. Mapped bytes are
    /// page-cache resident only where touched, so they charge at the
    /// hot-section estimate used by [`CsrGraph::charged_bytes`].
    fn charged_bytes(&self) -> usize {
        self.graph().charged_bytes()
    }

    /// One-line human description (for `store inspect` and logs).
    fn describe(&self) -> String;
}

impl GraphStore for CsrGraph {
    fn graph(&self) -> &CsrGraph {
        self
    }

    fn describe(&self) -> String {
        format!(
            "in-ram csr: n={} arcs={} directed={}",
            self.num_vertices(),
            self.num_arcs(),
            self.is_directed()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_region_round_trips_bytes() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let bytes: Vec<u8> = (0..len as u32).map(|i| (i * 37 + 11) as u8).collect();
            let r = HeapRegion::from_bytes(&bytes);
            assert_eq!(r.bytes(), &bytes[..]);
            assert_eq!(r.bytes().as_ptr() as usize % 8, 0, "8-aligned");
        }
    }

    #[test]
    fn mapped_slice_reads_little_endian_values() {
        let vals: Vec<u64> = vec![3, 1_000_000_007, u64::MAX];
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let region: Arc<dyn Region> = Arc::new(HeapRegion::from_bytes(&bytes));
        let s = SectionSlice::<u64>::mapped(region, 0, 3).unwrap();
        assert_eq!(s.as_slice(), &vals[..]);
        assert_eq!(s.heap_bytes(), 0);
        assert_eq!(s.mapped_bytes(), 24);
    }

    #[test]
    fn mapped_slice_rejects_out_of_bounds_and_misaligned() {
        let region: Arc<dyn Region> = Arc::new(HeapRegion::from_bytes(&[0u8; 16]));
        assert!(matches!(
            SectionSlice::<u64>::mapped(Arc::clone(&region), 8, 2),
            Err(SectionError::OutOfBounds { .. })
        ));
        assert!(matches!(
            SectionSlice::<u64>::mapped(Arc::clone(&region), 4, 1),
            Err(SectionError::Misaligned { .. })
        ));
        // u32 at offset 4 is fine.
        assert!(SectionSlice::<u32>::mapped(region, 4, 3).is_ok());
    }

    #[test]
    fn owned_and_mapped_compare_equal_by_contents() {
        let vals: Vec<u32> = vec![5, 6, 7];
        let mut bytes = Vec::new();
        for v in &vals {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let region: Arc<dyn Region> = Arc::new(HeapRegion::from_bytes(&bytes));
        let mapped = SectionSlice::<u32>::mapped(region, 0, 3).unwrap();
        let owned = SectionSlice::owned(vals);
        assert_eq!(mapped, owned);
    }

    #[test]
    fn graph_store_blanket_on_csr() {
        let g = crate::GraphBuilder::undirected(3)
            .edges([(0, 1), (1, 2)])
            .build();
        let s: &dyn GraphStore = &g;
        assert_eq!(s.graph().num_vertices(), 3);
        assert!(s.heap_bytes() > 0);
        assert_eq!(s.mapped_bytes(), 0);
        assert!(s.describe().contains("n=3"));
    }
}
