//! Varint + delta codec for compressed adjacency rows.
//!
//! A CSR neighbor row is sorted ascending (the [`crate::GraphBuilder`]
//! invariant), so consecutive ids are close and the gaps compress well:
//! the first neighbor is stored as a plain LEB128 varint and every
//! subsequent neighbor as the varint of its gap to the predecessor.
//! Duplicate neighbors (legal in raw CSR) encode as zero gaps.
//!
//! This module is the pure in-memory codec; the on-disk framing
//! (sections, checksums, hub segregation) lives in the `db-store`
//! crate. Both directions are total: `decode_row` never panics on
//! attacker-controlled bytes — truncation, overlong varints, and
//! 32-bit overflow all come back as a typed [`DecodeError`].

/// Maximum encoded length of one `u32` varint (5 × 7 bits ≥ 32 bits).
pub const MAX_VARINT_LEN: usize = 5;

/// A defect in a varint/delta byte stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended mid-varint or before the expected value count.
    Truncated {
        /// Byte offset at which more input was required.
        at: usize,
    },
    /// A varint ran past [`MAX_VARINT_LEN`] bytes or exceeded `u32`.
    Overflow {
        /// Byte offset of the offending varint's first byte.
        at: usize,
    },
    /// A delta pushed the running neighbor id past `u32::MAX`.
    DeltaOverflow {
        /// Byte offset of the offending gap varint.
        at: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { at } => write!(f, "varint stream truncated at byte {at}"),
            DecodeError::Overflow { at } => write!(f, "varint at byte {at} overflows u32"),
            DecodeError::DeltaOverflow { at } => {
                write!(f, "delta at byte {at} overflows the u32 vertex space")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// Appends the LEB128 encoding of `v` to `out`.
#[inline]
pub fn write_varint(v: u32, out: &mut Vec<u8>) {
    let mut v = v;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 `u32` from `bytes` starting at `*pos`, advancing
/// `*pos` past it.
#[inline]
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    let start = *pos;
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(DecodeError::Truncated { at: *pos });
        };
        *pos += 1;
        let payload = (b & 0x7f) as u32;
        // The fifth byte may only contribute 4 bits (32 = 4*7 + 4).
        if shift == 28 && payload > 0x0f {
            return Err(DecodeError::Overflow { at: start });
        }
        value |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 28 {
            return Err(DecodeError::Overflow { at: start });
        }
    }
}

/// Delta+varint encodes one sorted neighbor row into `out`.
///
/// The caller guarantees `row` is sorted ascending (duplicates fine);
/// an unsorted row would produce an underflowing gap, so this panics in
/// debug builds and must be pre-sorted by callers handling raw input.
pub fn encode_row(row: &[u32], out: &mut Vec<u8>) {
    debug_assert!(
        row.windows(2).all(|w| w[0] <= w[1]),
        "encode_row requires a sorted row"
    );
    let mut prev = 0u32;
    for (i, &v) in row.iter().enumerate() {
        if i == 0 {
            write_varint(v, out);
        } else {
            write_varint(v.wrapping_sub(prev), out);
        }
        prev = v;
    }
}

/// Decodes `degree` delta+varint neighbors from `bytes` at `*pos`,
/// appending them to `out` and advancing `*pos`.
pub fn decode_row(
    bytes: &[u8],
    pos: &mut usize,
    degree: usize,
    out: &mut Vec<u32>,
) -> Result<(), DecodeError> {
    let mut prev = 0u32;
    for i in 0..degree {
        let at = *pos;
        let raw = read_varint(bytes, pos)?;
        let v = if i == 0 {
            raw
        } else {
            prev.checked_add(raw)
                .ok_or(DecodeError::DeltaOverflow { at })?
        };
        out.push(v);
        prev = v;
    }
    Ok(())
}

/// Exact encoded byte length of one sorted row (what [`encode_row`]
/// would append), for size accounting without materializing bytes.
pub fn encoded_row_len(row: &[u32]) -> usize {
    let mut prev = 0u32;
    let mut total = 0usize;
    for (i, &v) in row.iter().enumerate() {
        let gap = if i == 0 { v } else { v.wrapping_sub(prev) };
        total += varint_len(gap);
        prev = v;
    }
    total
}

/// Encoded length of one varint.
#[inline]
pub fn varint_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [
            0u32,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            0xfff_ffff,
            0x1000_0000,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(v, &mut buf);
            assert_eq!(buf.len(), varint_len(v), "len for {v:#x}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn row_round_trips_with_duplicates_and_empties() {
        for row in [
            vec![],
            vec![0],
            vec![u32::MAX],
            vec![0, 0, 0],
            vec![1, 5, 5, 9, 1_000_000, u32::MAX],
        ] {
            let mut buf = Vec::new();
            encode_row(&row, &mut buf);
            assert_eq!(buf.len(), encoded_row_len(&row));
            let mut pos = 0;
            let mut back = Vec::new();
            decode_row(&buf, &mut pos, row.len(), &mut back).unwrap();
            assert_eq!(back, row);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut buf = Vec::new();
        encode_row(&[3, 700, 800_000], &mut buf);
        for cut in 0..buf.len() {
            let mut pos = 0;
            let mut out = Vec::new();
            let r = decode_row(&buf[..cut], &mut pos, 3, &mut out);
            assert!(
                matches!(r, Err(DecodeError::Truncated { .. })),
                "cut {cut}: {r:?}"
            );
        }
    }

    #[test]
    fn overlong_varints_are_rejected() {
        // Six continuation bytes: past the 5-byte cap.
        let bytes = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&bytes, &mut pos),
            Err(DecodeError::Overflow { at: 0 })
        ));
        // Five bytes but the top byte carries bits beyond u32.
        let bytes = [0xffu8, 0xff, 0xff, 0xff, 0x1f];
        let mut pos = 0;
        assert!(matches!(
            read_varint(&bytes, &mut pos),
            Err(DecodeError::Overflow { at: 0 })
        ));
    }

    #[test]
    fn delta_overflow_is_a_typed_error() {
        // First value u32::MAX, then a gap of 1.
        let mut buf = Vec::new();
        write_varint(u32::MAX, &mut buf);
        write_varint(1, &mut buf);
        let mut pos = 0;
        let mut out = Vec::new();
        assert!(matches!(
            decode_row(&buf, &mut pos, 2, &mut out),
            Err(DecodeError::DeltaOverflow { .. })
        ));
    }
}
