//! Matrix Market (`.mtx`) I/O.
//!
//! The paper's artifact consumes SuiteSparse graphs in Matrix Market
//! coordinate format (§A.5: "Our matrix parser supports input files in
//! the Matrix Market format"). This module implements the subset needed
//! for graph inputs: `matrix coordinate <field> <symmetry>` headers,
//! 1-based indices, optional values (ignored — we only need structure),
//! and `general`/`symmetric` symmetry (symmetric inputs are expanded to
//! both arc directions).

use crate::{CsrGraph, GraphBuilder};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid file, with a human-readable reason.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a Matrix Market coordinate file into a graph.
///
/// * `symmetric` headers produce an undirected graph;
/// * `general` headers produce a directed graph;
/// * rectangular matrices are rejected (graphs must be square);
/// * values (`real`/`integer` fields) are parsed and discarded —
///   only the sparsity pattern matters for traversal.
pub fn read_matrix_market<R: Read>(reader: R) -> Result<CsrGraph, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines.next().ok_or_else(|| parse_err("empty file"))??;
    let header_lc = header.to_ascii_lowercase();
    let fields: Vec<&str> = header_lc.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header line: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err("only coordinate format is supported"));
    }
    let has_values = match fields[3] {
        "pattern" => false,
        "real" | "integer" | "complex" => true,
        other => return Err(parse_err(format!("unsupported field type: {other}"))),
    };
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" | "skew-symmetric" | "hermitian" => true,
        other => return Err(parse_err(format!("unsupported symmetry: {other}"))),
    };

    // Skip comments, find the size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        break line;
    };
    let mut it = size_line.split_whitespace();
    let rows: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad size line"))?;
    let cols: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad size line"))?;
    let nnz: u64 = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad size line"))?;
    if rows != cols {
        return Err(parse_err(format!(
            "matrix must be square, got {rows}x{cols}"
        )));
    }
    if rows > u32::MAX as u64 {
        return Err(parse_err("vertex count exceeds u32"));
    }
    let n = rows as u32;

    let mut builder = if symmetric {
        GraphBuilder::undirected(n)
    } else {
        GraphBuilder::directed(n)
    };
    builder.reserve(nnz as usize);
    let mut seen = 0u64;
    for line in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut parts = t.split_whitespace();
        let r: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {t}")))?;
        let c: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad entry line: {t}")))?;
        if has_values && parts.next().is_none() {
            return Err(parse_err(format!("missing value on line: {t}")));
        }
        if r == 0 || c == 0 || r > rows || c > cols {
            return Err(parse_err(format!("index out of range on line: {t}")));
        }
        builder.edge((r - 1) as u32, (c - 1) as u32);
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(builder.build())
}

/// Reads a `.mtx` file from disk.
pub fn read_matrix_market_file(path: impl AsRef<Path>) -> Result<CsrGraph, MmError> {
    read_matrix_market(std::fs::File::open(path)?)
}

/// Writes a graph as a Matrix Market pattern file.
///
/// Undirected graphs are written with `symmetric` symmetry (lower
/// triangle only); directed graphs with `general`.
pub fn write_matrix_market<W: Write>(g: &CsrGraph, mut w: W) -> std::io::Result<()> {
    let symmetry = if g.is_directed() {
        "general"
    } else {
        "symmetric"
    };
    writeln!(w, "%%MatrixMarket matrix coordinate pattern {symmetry}")?;
    writeln!(w, "% generated by db-graph")?;
    let entries: Vec<(u32, u32)> = if g.is_directed() {
        g.arcs().collect()
    } else {
        g.arcs().filter(|&(u, v)| v <= u).collect()
    };
    writeln!(
        w,
        "{} {} {}",
        g.num_vertices(),
        g.num_vertices(),
        entries.len()
    )?;
    for (u, v) in entries {
        writeln!(w, "{} {}", u as u64 + 1, v as u64 + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_symmetric_pattern() {
        let src =
            "%%MatrixMarket matrix coordinate pattern symmetric\n% comment\n3 3 2\n2 1\n3 2\n";
        let g = read_matrix_market(src.as_bytes()).unwrap();
        assert!(!g.is_directed());
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn reads_general_with_values() {
        let src = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 2 3.5\n2 1 -1.0\n";
        let g = read_matrix_market(src.as_bytes()).unwrap();
        assert!(g.is_directed());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn rejects_rectangular() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n";
        assert!(matches!(
            read_matrix_market(src.as_bytes()),
            Err(MmError::Parse(_))
        ));
    }

    #[test]
    fn rejects_entry_count_mismatch() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n";
        let err = read_matrix_market(src.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 2 entries"));
    }

    #[test]
    fn rejects_out_of_range_index() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 5\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_array_format() {
        let src = "%%MatrixMarket matrix array real general\n2 2\n1.0\n2.0\n3.0\n4.0\n";
        assert!(read_matrix_market(src.as_bytes()).is_err());
    }

    #[test]
    fn round_trip_undirected() {
        let g = crate::GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 1)])
            .build();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn round_trip_directed() {
        let g = crate::GraphBuilder::directed(3)
            .edges([(0, 1), (1, 2), (2, 0)])
            .build();
        let mut buf = Vec::new();
        write_matrix_market(&g, &mut buf).unwrap();
        let g2 = read_matrix_market(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn skew_symmetric_treated_as_undirected() {
        let src = "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1.0\n";
        let g = read_matrix_market(src.as_bytes()).unwrap();
        assert!(!g.is_directed());
        assert_eq!(g.neighbors(0), &[1]);
    }
}
