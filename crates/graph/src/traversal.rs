//! Reference serial traversals.
//!
//! [`serial_dfs`] is a verbatim transcription of the paper's Algorithm 1
//! (serial stack-based DFS over CSR). Its outputs — the `visited` set,
//! the `parent` array, and the lexicographic discovery order — are the
//! ground truth that every parallel engine in this workspace is checked
//! against. BFS levels and connected components support the BFS baselines
//! and the workload characterization in the benchmark harness.

use crate::{CsrGraph, VertexId, NO_PARENT};

/// Output of a DFS traversal: the paper's Table 2 semantics for
/// DiggerBees (`visited` + `parent`, i.e. a DFS tree), plus the discovery
/// order which serial DFS additionally defines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsOutput {
    /// `visited[v]` — whether `v` is reachable from the root.
    pub visited: Vec<bool>,
    /// `parent[v]` — DFS-tree parent, [`NO_PARENT`] for the root and for
    /// unvisited vertices.
    pub parent: Vec<u32>,
    /// Vertices in discovery order (root first). Defined for serial DFS;
    /// parallel engines leave ordering unspecified (Table 2: "Unordered").
    pub order: Vec<VertexId>,
}

impl DfsOutput {
    /// Number of visited vertices.
    pub fn num_visited(&self) -> usize {
        self.visited.iter().filter(|&&b| b).count()
    }

    /// Sum of degrees over visited vertices — the "traversed edges" count
    /// used for MTEPS in §4.1 (every adjacency entry of a visited vertex
    /// is examined exactly once by stack-based DFS).
    pub fn traversed_edges(&self, g: &CsrGraph) -> u64 {
        self.visited
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(v, _)| g.degree(v as u32) as u64)
            .sum()
    }
}

/// Serial stack-based DFS — Algorithm 1 of the paper.
///
/// Produces the unique lexicographically ordered DFS tree (Figure 1(b)):
/// neighbors are tried in ascending id order because CSR rows are sorted.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn serial_dfs(g: &CsrGraph, root: VertexId) -> DfsOutput {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range");
    let mut visited = vec![false; n];
    let mut parent = vec![NO_PARENT; n];
    let mut order = Vec::new();

    // S: stack of (node, next_idx) exactly as in Algorithm 1.
    let mut stack: Vec<(u32, u64)> = Vec::new();
    visited[root as usize] = true;
    order.push(root);
    stack.push((root, g.row_ptr()[root as usize]));

    while let Some(&(u, i)) = stack.last() {
        if i < g.row_ptr()[u as usize + 1] {
            let v = g.col_idx()[i as usize];
            stack.last_mut().expect("nonempty").1 = i + 1;
            if !visited[v as usize] {
                visited[v as usize] = true;
                parent[v as usize] = u;
                order.push(v);
                stack.push((v, g.row_ptr()[v as usize]));
            }
        } else {
            stack.pop();
        }
    }

    DfsOutput {
        visited,
        parent,
        order,
    }
}

/// Serial BFS from `root`. Returns `level[v]` (`u32::MAX` if unreachable)
/// and the number of non-empty levels — the quantity driving the paper's
/// Fig. 6 discussion ("euro_osm requires 17,346 levels", "ljournal
/// completes in only 10 levels").
pub fn bfs_levels(g: &CsrGraph, root: VertexId) -> (Vec<u32>, u32) {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root {root} out of range");
    let mut level = vec![u32::MAX; n];
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut next = Vec::new();
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        for &u in &frontier {
            for &v in g.neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = depth;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    (level, depth)
}

/// Set of vertices reachable from `root` (directed reachability).
pub fn reachable_set(g: &CsrGraph, root: VertexId) -> Vec<bool> {
    bfs_levels(g, root)
        .0
        .into_iter()
        .map(|l| l != u32::MAX)
        .collect()
}

/// Connected components of an undirected graph. Returns `(comp_id, count)`.
///
/// # Panics
///
/// Panics if the graph is directed (component semantics differ).
pub fn connected_components(g: &CsrGraph) -> (Vec<u32>, u32) {
    assert!(
        !g.is_directed(),
        "connected_components requires an undirected graph"
    );
    let n = g.num_vertices();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = Vec::new();
    for s in 0..n as u32 {
        if comp[s as usize] != u32::MAX {
            continue;
        }
        comp[s as usize] = count;
        queue.push(s);
        while let Some(u) = queue.pop() {
            for &v in g.neighbors(u) {
                if comp[v as usize] == u32::MAX {
                    comp[v as usize] = count;
                    queue.push(v);
                }
            }
        }
        count += 1;
    }
    (comp, count)
}

/// Largest connected component: `(component id, size)`.
pub fn largest_component(g: &CsrGraph) -> (u32, usize) {
    let (comp, count) = connected_components(g);
    let mut sizes = vec![0usize; count as usize];
    for &c in &comp {
        sizes[c as usize] += 1;
    }
    let (best, &size) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .expect("at least one component");
    (best as u32, size)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// The paper's Figure 1 example graph: a-b, a-c, b-d, c-e, d-e, c-f
    /// with ids a=0, b=1, c=2, d=3, e=4, f=5.
    fn figure1() -> CsrGraph {
        GraphBuilder::undirected(6)
            .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4), (2, 5)])
            .build()
    }

    #[test]
    fn figure1_lexicographic_order() {
        // Serial DFS produces a -> b -> d -> e -> c -> f (Figure 1(b)).
        let out = serial_dfs(&figure1(), 0);
        assert_eq!(out.order, vec![0, 1, 3, 4, 2, 5]);
        assert_eq!(out.parent[1], 0);
        assert_eq!(out.parent[3], 1);
        assert_eq!(out.parent[4], 3);
        assert_eq!(out.parent[2], 4);
        assert_eq!(out.parent[5], 2);
        assert_eq!(out.parent[0], NO_PARENT);
    }

    #[test]
    fn dfs_visits_only_reachable() {
        let g = GraphBuilder::undirected(4).edges([(0, 1)]).build();
        let out = serial_dfs(&g, 0);
        assert_eq!(out.visited, vec![true, true, false, false]);
        assert_eq!(out.num_visited(), 2);
        assert_eq!(out.parent[2], NO_PARENT);
    }

    #[test]
    fn dfs_on_directed_graph() {
        let g = GraphBuilder::directed(3).edges([(0, 1), (2, 0)]).build();
        let out = serial_dfs(&g, 0);
        assert_eq!(out.visited, vec![true, true, false]);
    }

    #[test]
    fn traversed_edges_counts_visited_degrees() {
        let g = figure1();
        let out = serial_dfs(&g, 0);
        assert_eq!(out.traversed_edges(&g), g.num_arcs() as u64);
    }

    #[test]
    fn bfs_levels_on_path() {
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let (levels, depth) = bfs_levels(&g, 0);
        assert_eq!(levels, vec![0, 1, 2, 3]);
        assert_eq!(depth, 4);
    }

    #[test]
    fn bfs_unreachable_is_max() {
        let g = GraphBuilder::undirected(3).edges([(0, 1)]).build();
        let (levels, _) = bfs_levels(&g, 0);
        assert_eq!(levels[2], u32::MAX);
    }

    #[test]
    fn components_counts() {
        let g = GraphBuilder::undirected(5).edges([(0, 1), (2, 3)]).build();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[2], comp[3]);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[4], comp[0]);
    }

    #[test]
    fn largest_component_size() {
        let g = GraphBuilder::undirected(6)
            .edges([(0, 1), (1, 2), (3, 4)])
            .build();
        let (_, size) = largest_component(&g);
        assert_eq!(size, 3);
    }

    #[test]
    fn dfs_and_bfs_agree_on_reachability() {
        let g = figure1();
        let dfs = serial_dfs(&g, 0);
        let reach = reachable_set(&g, 0);
        assert_eq!(dfs.visited, reach);
    }

    #[test]
    fn single_vertex_graph() {
        let g = GraphBuilder::undirected(1).build();
        let out = serial_dfs(&g, 0);
        assert_eq!(out.order, vec![0]);
        assert_eq!(out.num_visited(), 1);
    }
}
