//! Edge-list ingestion into CSR form.
//!
//! The builder sorts, deduplicates, and (for undirected graphs)
//! symmetrizes arcs — the same normalization the paper's artifact applies
//! to SuiteSparse `.mtx` inputs before handing them to the kernels.

use crate::{CsrGraph, VertexId};

/// Incremental builder for [`CsrGraph`].
///
/// ```
/// use db_graph::GraphBuilder;
/// let g = GraphBuilder::undirected(3).edges([(0, 1), (1, 2)]).build();
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: u32,
    directed: bool,
    arcs: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Starts an undirected graph over `n` vertices. Every added edge is
    /// stored in both directions.
    pub fn undirected(n: u32) -> Self {
        Self {
            n,
            directed: false,
            arcs: Vec::new(),
        }
    }

    /// Starts a directed graph over `n` vertices.
    pub fn directed(n: u32) -> Self {
        Self {
            n,
            directed: true,
            arcs: Vec::new(),
        }
    }

    /// Adds one edge (arc for directed graphs).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        assert!(
            u < self.n && v < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.arcs.push((u, v));
        if !self.directed && u != v {
            self.arcs.push((v, u));
        }
        self
    }

    /// Adds many edges (builder-by-value convenience).
    pub fn edges<I: IntoIterator<Item = (VertexId, VertexId)>>(mut self, it: I) -> Self {
        for (u, v) in it {
            self.edge(u, v);
        }
        self
    }

    /// Reserves capacity for `additional` more arcs (twice that for
    /// undirected graphs).
    pub fn reserve(&mut self, additional: usize) {
        let factor = if self.directed { 1 } else { 2 };
        self.arcs.reserve(additional * factor);
    }

    /// Number of arcs currently staged.
    pub fn staged_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// Finalizes into CSR: sorts arcs, removes duplicates, builds
    /// `row_ptr`/`col_idx`.
    pub fn build(mut self) -> CsrGraph {
        self.arcs.sort_unstable();
        self.arcs.dedup();
        let n = self.n as usize;
        let mut row_ptr = vec![0u64; n + 1];
        for &(u, _) in &self.arcs {
            row_ptr[u as usize + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx: Vec<u32> = self.arcs.iter().map(|&(_, v)| v).collect();
        CsrGraph::from_sorted_parts(self.n, row_ptr, col_idx, self.directed)
    }
}

/// Builds an undirected graph from an edge list in one call.
pub fn from_edge_list(n: u32, edges: &[(VertexId, VertexId)], directed: bool) -> CsrGraph {
    let mut b = if directed {
        GraphBuilder::directed(n)
    } else {
        GraphBuilder::undirected(n)
    };
    b.reserve(edges.len());
    for &(u, v) in edges {
        b.edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_edges() {
        let g = GraphBuilder::undirected(2)
            .edges([(0, 1), (0, 1), (1, 0)])
            .build();
        assert_eq!(g.num_arcs(), 2);
        assert_eq!(g.neighbors(0), &[1]);
    }

    #[test]
    fn directed_is_asymmetric() {
        let g = GraphBuilder::directed(3).edges([(0, 1), (1, 2)]).build();
        assert_eq!(g.neighbors(0), &[1]);
        assert!(g.neighbors(1) == [2]);
        assert!(g.neighbors(2).is_empty());
    }

    #[test]
    fn neighbors_are_sorted() {
        let g = GraphBuilder::undirected(5)
            .edges([(0, 4), (0, 2), (0, 3), (0, 1)])
            .build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn self_loop_stored_once_undirected() {
        let g = GraphBuilder::undirected(1).edges([(0, 0)]).build();
        assert_eq!(g.num_arcs(), 1);
        assert_eq!(g.neighbors(0), &[0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        GraphBuilder::undirected(2).edges([(0, 2)]);
    }

    #[test]
    fn from_edge_list_matches_builder() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        let a = from_edge_list(3, &edges, false);
        let b = GraphBuilder::undirected(3).edges(edges).build();
        assert_eq!(a, b);
    }
}
