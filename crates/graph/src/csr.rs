//! Compressed-sparse-row graph representation.
//!
//! The layout mirrors the paper's Algorithm 1: `row_ptr` (length `n + 1`,
//! 64-bit to support multi-billion-edge graphs) and `column_idx` (one
//! 32-bit vertex id per stored arc). Undirected graphs store each edge in
//! both directions, which is what DFS/BFS engines traverse.

use crate::store::SectionSlice;
use crate::VertexId;

/// A structural defect in raw CSR arrays, reported by
/// [`CsrGraph::try_from_sorted_parts`] instead of panicking — the entry
/// point for untrusted inputs (network services, file loaders).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `row_ptr.len() != n + 1`.
    RowPtrLength {
        /// Required length (`n + 1`).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// `row_ptr[0] != 0`; carries the offending first offset.
    RowPtrStart(u64),
    /// `row_ptr` does not end at `col_idx.len()`.
    RowPtrEnd {
        /// Required final offset (`col_idx.len()`).
        expected: usize,
        /// Actual final offset.
        got: u64,
    },
    /// `row_ptr[at] > row_ptr[at + 1]`.
    RowPtrDecreasing {
        /// First index where the offsets decrease.
        at: usize,
    },
    /// `col_idx[at] >= n`.
    ColumnOutOfRange {
        /// Index of the offending column entry.
        at: usize,
        /// The out-of-range vertex id.
        value: u32,
        /// The vertex count it must stay below.
        n: u32,
    },
}

impl std::fmt::Display for CsrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsrError::RowPtrLength { expected, got } => {
                write!(
                    f,
                    "row_ptr must have n+1 entries (expected {expected}, got {got})"
                )
            }
            CsrError::RowPtrStart(v) => write!(f, "row_ptr must start at 0 (got {v})"),
            CsrError::RowPtrEnd { expected, got } => write!(
                f,
                "row_ptr must end at the arc count (expected {expected}, got {got})"
            ),
            CsrError::RowPtrDecreasing { at } => {
                write!(f, "row_ptr must be non-decreasing (violated at index {at})")
            }
            CsrError::ColumnOutOfRange { at, value, n } => {
                write!(
                    f,
                    "column indices must be < n (col_idx[{at}] = {value}, n = {n})"
                )
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// An immutable CSR graph.
///
/// Construct via [`crate::GraphBuilder`] or [`CsrGraph::from_sorted_parts`].
///
/// The two arrays live in [`SectionSlice`]s: heap `Vec`s for built
/// graphs, or zero-copy windows into an mmap'd pack file for graphs
/// loaded through `db-store`. Accessors return plain slices either way.
#[derive(Clone, PartialEq, Eq)]
pub struct CsrGraph {
    n: u32,
    row_ptr: SectionSlice<u64>,
    col_idx: SectionSlice<u32>,
    directed: bool,
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrGraph")
            .field("n", &self.n)
            .field("arcs", &self.col_idx.len())
            .field("directed", &self.directed)
            .field("mapped_bytes", &self.mapped_bytes())
            .finish()
    }
}

impl CsrGraph {
    /// Builds a graph directly from pre-validated CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays are inconsistent: `row_ptr` must have length
    /// `n + 1`, start at 0, be non-decreasing, end at `col_idx.len()`,
    /// and every column index must be `< n`.
    pub fn from_sorted_parts(n: u32, row_ptr: Vec<u64>, col_idx: Vec<u32>, directed: bool) -> Self {
        match Self::try_from_sorted_parts(n, row_ptr, col_idx, directed) {
            Ok(g) => g,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a graph from raw CSR arrays **without any validation**.
    ///
    /// The caller asserts the [`CsrGraph::try_from_sorted_parts`]
    /// invariants hold; a graph that violates them makes the accessors
    /// panic or return garbage. Intended for loaders that validated the
    /// arrays out-of-band, and for fault-injection tests that need to
    /// construct deliberately malformed graphs to exercise the engines'
    /// input validation (`db-core`'s `GraphError`).
    pub fn from_parts_unchecked(
        n: u32,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        directed: bool,
    ) -> Self {
        Self {
            n,
            row_ptr: SectionSlice::owned(row_ptr),
            col_idx: SectionSlice::owned(col_idx),
            directed,
        }
    }

    /// Non-panicking form of [`CsrGraph::from_sorted_parts`]: validates
    /// the arrays and reports the first structural defect as a
    /// [`CsrError`]. Use this for untrusted inputs so a malformed graph
    /// is rejected at the boundary rather than corrupting a traversal.
    pub fn try_from_sorted_parts(
        n: u32,
        row_ptr: Vec<u64>,
        col_idx: Vec<u32>,
        directed: bool,
    ) -> Result<Self, CsrError> {
        Self::try_from_backed(
            n,
            SectionSlice::owned(row_ptr),
            SectionSlice::owned(col_idx),
            directed,
        )
    }

    /// Validating constructor over already-backed sections — the entry
    /// point `db-store` uses so mmap-backed arrays are checked without
    /// ever being copied. Runs exactly the
    /// [`CsrGraph::try_from_sorted_parts`] invariants.
    pub fn try_from_backed(
        n: u32,
        row_ptr: SectionSlice<u64>,
        col_idx: SectionSlice<u32>,
        directed: bool,
    ) -> Result<Self, CsrError> {
        {
            let rp = row_ptr.as_slice();
            let ci = col_idx.as_slice();
            if rp.len() != n as usize + 1 {
                return Err(CsrError::RowPtrLength {
                    expected: n as usize + 1,
                    got: rp.len(),
                });
            }
            if rp[0] != 0 {
                return Err(CsrError::RowPtrStart(rp[0]));
            }
            let last = *rp.last().expect("row_ptr nonempty");
            if last as usize != ci.len() {
                return Err(CsrError::RowPtrEnd {
                    expected: ci.len(),
                    got: last,
                });
            }
            if let Some(at) = rp.windows(2).position(|w| w[0] > w[1]) {
                return Err(CsrError::RowPtrDecreasing { at });
            }
            if let Some(at) = ci.iter().position(|&v| v >= n) {
                return Err(CsrError::ColumnOutOfRange {
                    at,
                    value: ci[at],
                    n,
                });
            }
        }
        Ok(Self {
            n,
            row_ptr,
            col_idx,
            directed,
        })
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of stored arcs (an undirected edge counts twice).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.col_idx.len()
    }

    /// Number of logical edges: arcs for directed graphs, arcs/2 rounded
    /// up for undirected graphs (self-loops are stored once).
    pub fn num_edges(&self) -> usize {
        if self.directed {
            self.num_arcs()
        } else {
            let loops = (0..self.n)
                .map(|u| self.neighbors(u).iter().filter(|&&v| v == u).count())
                .sum::<usize>();
            (self.num_arcs() - loops) / 2 + loops
        }
    }

    /// Whether the graph is directed.
    #[inline]
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        let rp = self.row_ptr.as_slice();
        (rp[u as usize + 1] - rp[u as usize]) as usize
    }

    /// Slice of `u`'s neighbors (sorted ascending by construction).
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[u32] {
        let rp = self.row_ptr.as_slice();
        let lo = rp[u as usize] as usize;
        let hi = rp[u as usize + 1] as usize;
        &self.col_idx.as_slice()[lo..hi]
    }

    /// The raw row-pointer array (length `n + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[u64] {
        self.row_ptr.as_slice()
    }

    /// The raw column-index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        self.col_idx.as_slice()
    }

    /// Whether the arc `u -> v` exists (binary search over `u`'s row).
    pub fn has_arc(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all arcs `(u, v)`.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.n).flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Maximum out-degree.
    pub fn max_degree(&self) -> usize {
        (0..self.n).map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Approximate CSR memory footprint in bytes, as reported in §4.1
    /// ("graphs require between 0.08 MB and 43.61 GB of GPU memory in CSR
    /// format").
    pub fn memory_bytes(&self) -> usize {
        self.row_ptr.len() * 8 + self.col_idx.len() * 4
    }

    /// Private heap bytes this graph owns (0 for fully mmap-backed
    /// graphs — the mapping is shared, not private, memory).
    pub fn heap_bytes(&self) -> usize {
        self.row_ptr.heap_bytes() + self.col_idx.heap_bytes()
    }

    /// Shared mapped (mmap'd pack section) bytes this graph references.
    pub fn mapped_bytes(&self) -> usize {
        self.row_ptr.mapped_bytes() + self.col_idx.mapped_bytes()
    }

    /// Bytes to charge against a residency budget (what `CorpusCache`
    /// accounts): full price for private heap, a quarter for mapped
    /// sections — mmap'd pages are backed by the shared page cache and
    /// only resident where a traversal actually touched them, and DFS
    /// frontiers touch a skewed subset of rows. A fixed 1/4 hot-section
    /// estimate keeps accounting deterministic (no OS residency probes).
    pub fn charged_bytes(&self) -> usize {
        self.heap_bytes() + self.mapped_bytes() / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0-1, 0-2, 1-3, 2-3 undirected
        GraphBuilder::undirected(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build()
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_arcs(), 8);
        assert_eq!(g.num_edges(), 4);
        assert!(!g.is_directed());
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[1, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn has_arc_lookup() {
        let g = diamond();
        assert!(g.has_arc(0, 1));
        assert!(g.has_arc(1, 0));
        assert!(!g.has_arc(0, 3));
    }

    #[test]
    fn arcs_iterator_covers_both_directions() {
        let g = diamond();
        let arcs: Vec<_> = g.arcs().collect();
        assert_eq!(arcs.len(), 8);
        assert!(arcs.contains(&(0, 1)));
        assert!(arcs.contains(&(1, 0)));
    }

    #[test]
    fn self_loop_edge_count() {
        let g = GraphBuilder::undirected(2).edges([(0, 0), (0, 1)]).build();
        // loop stored once, edge stored twice
        assert_eq!(g.num_arcs(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn memory_bytes_matches_layout() {
        let g = diamond();
        assert_eq!(g.memory_bytes(), 5 * 8 + 8 * 4);
    }

    #[test]
    #[should_panic(expected = "row_ptr must start at 0")]
    fn rejects_bad_row_ptr_start() {
        CsrGraph::from_sorted_parts(1, vec![1, 1], vec![], false);
    }

    #[test]
    #[should_panic(expected = "column indices must be < n")]
    fn rejects_out_of_range_column() {
        CsrGraph::from_sorted_parts(2, vec![0, 1, 1], vec![5], false);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn rejects_decreasing_row_ptr() {
        CsrGraph::from_sorted_parts(2, vec![0, 2, 1], vec![0], false);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::undirected(0).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_arcs(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices_have_empty_rows() {
        let g = GraphBuilder::undirected(3).edges([(0, 1)]).build();
        assert_eq!(g.degree(2), 0);
        assert!(g.neighbors(2).is_empty());
    }
}
