//! Validation of traversal outputs.
//!
//! Three levels of checking, from weakest to strongest:
//!
//! 1. [`check_spanning_tree`] — the `parent` array forms a forest with a
//!    single tree rooted at `root`, every tree edge exists in the graph,
//!    and `visited` equals exactly the tree's vertex set. This is the
//!    contract of the paper's Table 2 output semantics (`visited` +
//!    `parent` = "DFS Tree") that *every* engine must satisfy.
//! 2. [`check_reachability`] — `visited` equals the true reachable set.
//! 3. [`check_dfs_tree_property`] — the strict (unordered) DFS-tree
//!    property for undirected graphs: every non-tree edge connects an
//!    ancestor/descendant pair (no cross edges). Serial DFS always
//!    satisfies it; concurrent work-stealing traversals satisfy it per
//!    stolen subtree but may introduce cross edges between subtrees
//!    explored concurrently (see DESIGN.md §1), so engines are validated
//!    at level 1+2 and the strict check is used for the serial reference
//!    and for the lexicographic NVG-DFS baseline.

use crate::{CsrGraph, VertexId, NO_PARENT};

/// A failed validation, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError(pub String);

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "validation failed: {}", self.0)
    }
}

impl std::error::Error for ValidationError {}

fn fail(msg: impl Into<String>) -> Result<(), ValidationError> {
    Err(ValidationError(msg.into()))
}

/// Checks that `(visited, parent)` encodes a valid spanning tree of the
/// visited set, rooted at `root`, whose edges all exist in `g`.
pub fn check_spanning_tree(
    g: &CsrGraph,
    root: VertexId,
    visited: &[bool],
    parent: &[u32],
) -> Result<(), ValidationError> {
    let n = g.num_vertices();
    if visited.len() != n || parent.len() != n {
        return fail(format!(
            "output arrays have wrong length: visited={}, parent={}, n={n}",
            visited.len(),
            parent.len()
        ));
    }
    if !visited[root as usize] {
        return fail("root is not marked visited");
    }
    if parent[root as usize] != NO_PARENT {
        return fail("root must have no parent");
    }
    for v in 0..n as u32 {
        let p = parent[v as usize];
        if !visited[v as usize] {
            if p != NO_PARENT {
                return fail(format!("unvisited vertex {v} has parent {p}"));
            }
            continue;
        }
        if v == root {
            continue;
        }
        if p == NO_PARENT {
            return fail(format!("visited vertex {v} has no parent"));
        }
        if p as usize >= n {
            return fail(format!("vertex {v} has out-of-range parent {p}"));
        }
        if !visited[p as usize] {
            return fail(format!("vertex {v} has unvisited parent {p}"));
        }
        // Tree edges must be graph arcs parent -> child.
        if !g.has_arc(p, v) {
            return fail(format!("tree edge {p} -> {v} is not a graph arc"));
        }
    }
    // Acyclicity + connectivity to root: walk up with path tracking.
    // `state[v]`: 0 unknown, 1 confirmed reaches root, 2 on current path.
    let mut state = vec![0u8; n];
    state[root as usize] = 1;
    let mut path = Vec::new();
    for v0 in 0..n as u32 {
        if !visited[v0 as usize] || state[v0 as usize] == 1 {
            continue;
        }
        let mut v = v0;
        path.clear();
        loop {
            match state[v as usize] {
                1 => break,
                2 => return fail(format!("parent pointers contain a cycle through {v}")),
                _ => {
                    state[v as usize] = 2;
                    path.push(v);
                    v = parent[v as usize];
                }
            }
        }
        for &u in &path {
            state[u as usize] = 1;
        }
    }
    Ok(())
}

/// Checks that `visited` equals the true set of vertices reachable from
/// `root` (the output semantics shared by *all* methods in Table 2).
pub fn check_reachability(
    g: &CsrGraph,
    root: VertexId,
    visited: &[bool],
) -> Result<(), ValidationError> {
    let truth = crate::traversal::reachable_set(g, root);
    if visited.len() != truth.len() {
        return fail("visited array has wrong length");
    }
    for (v, (&got, &want)) in visited.iter().zip(&truth).enumerate() {
        if got != want {
            return fail(format!("vertex {v}: visited={got}, reachable={want}"));
        }
    }
    Ok(())
}

/// Euler-tour intervals: `in_time[v]`/`out_time[v]` such that `u` is an
/// ancestor of `v` iff `in[u] <= in[v] && out[v] <= out[u]`.
fn euler_intervals(
    n: usize,
    root: VertexId,
    visited: &[bool],
    parent: &[u32],
) -> (Vec<u32>, Vec<u32>) {
    // Build children lists.
    let mut child_cnt = vec![0u32; n];
    for v in 0..n {
        if visited[v] && v as u32 != root {
            child_cnt[parent[v] as usize] += 1;
        }
    }
    let mut child_ptr = vec![0u32; n + 1];
    for v in 0..n {
        child_ptr[v + 1] = child_ptr[v] + child_cnt[v];
    }
    let mut children = vec![0u32; child_ptr[n] as usize];
    let mut cursor = child_ptr.clone();
    for v in 0..n {
        if visited[v] && v as u32 != root {
            let p = parent[v] as usize;
            children[cursor[p] as usize] = v as u32;
            cursor[p] += 1;
        }
    }
    // Iterative Euler tour.
    let mut tin = vec![0u32; n];
    let mut tout = vec![0u32; n];
    let mut clock = 0u32;
    // Stack of (vertex, next child slot).
    let mut stack: Vec<(u32, u32)> = vec![(root, child_ptr[root as usize])];
    tin[root as usize] = clock;
    clock += 1;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        if *next < child_ptr[u as usize + 1] {
            let c = children[*next as usize];
            *next += 1;
            tin[c as usize] = clock;
            clock += 1;
            stack.push((c, child_ptr[c as usize]));
        } else {
            tout[u as usize] = clock;
            clock += 1;
            stack.pop();
        }
    }
    (tin, tout)
}

/// Checks the strict DFS-tree property for **undirected** graphs: for
/// every graph edge `{u, v}` with both endpoints visited, `u` and `v`
/// must be in an ancestor/descendant relationship in the tree.
///
/// Requires `(visited, parent)` to already pass [`check_spanning_tree`].
///
/// # Panics
///
/// Panics if `g` is directed (the directed DFS-forest condition is
/// different; see module docs).
pub fn check_dfs_tree_property(
    g: &CsrGraph,
    root: VertexId,
    visited: &[bool],
    parent: &[u32],
) -> Result<(), ValidationError> {
    assert!(
        !g.is_directed(),
        "strict DFS-tree check is defined for undirected graphs"
    );
    check_spanning_tree(g, root, visited, parent)?;
    let n = g.num_vertices();
    let (tin, tout) = euler_intervals(n, root, visited, parent);
    let is_ancestor = |a: u32, b: u32| -> bool {
        tin[a as usize] <= tin[b as usize] && tout[b as usize] <= tout[a as usize]
    };
    for u in 0..n as u32 {
        if !visited[u as usize] {
            continue;
        }
        for &v in g.neighbors(u) {
            if v < u {
                continue; // each undirected edge once
            }
            if !visited[v as usize] {
                return fail(format!("edge {{{u},{v}}} leaves the visited set"));
            }
            if !(is_ancestor(u, v) || is_ancestor(v, u)) {
                return fail(format!(
                    "cross edge {{{u},{v}}}: endpoints are not ancestor/descendant"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::serial_dfs;
    use crate::GraphBuilder;

    fn figure1() -> CsrGraph {
        GraphBuilder::undirected(6)
            .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4), (2, 5)])
            .build()
    }

    #[test]
    fn serial_dfs_passes_all_checks() {
        let g = figure1();
        let out = serial_dfs(&g, 0);
        check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
        check_reachability(&g, 0, &out.visited).unwrap();
        check_dfs_tree_property(&g, 0, &out.visited, &out.parent).unwrap();
    }

    #[test]
    fn figure1c_parallel_tree_is_valid() {
        // Figure 1(c): the non-lexicographic tree a->{b,c}, b->d, c->{e},
        // e via c... In the paper's example one processor walks a->b->d and
        // the other c->e->f. Tree edges: a-b, b-d, a-c, c-e, c-f.
        let g = figure1();
        let visited = vec![true; 6];
        let mut parent = vec![NO_PARENT; 6];
        parent[1] = 0; // b <- a
        parent[3] = 1; // d <- b
        parent[2] = 0; // c <- a
        parent[4] = 2; // e <- c
        parent[5] = 2; // f <- c
        check_spanning_tree(&g, 0, &visited, &parent).unwrap();
        // Edge d-e (3-4) joins the two concurrently explored subtrees and
        // is a cross edge, so the strict property fails — exactly the
        // cross-edge caveat documented in DESIGN.md.
        assert!(check_dfs_tree_property(&g, 0, &visited, &parent).is_err());
    }

    #[test]
    fn detects_missing_graph_edge() {
        let g = figure1();
        let visited = vec![true, true, false, false, false, false];
        let mut parent = vec![NO_PARENT; 6];
        parent[1] = 0;
        check_spanning_tree(&g, 0, &visited, &parent).unwrap();
        // claim 1's parent is 4 (no edge 4-1)
        let mut bad = parent.clone();
        bad[1] = 4;
        let visited2 = vec![true, true, false, false, true, false];
        assert!(check_spanning_tree(&g, 0, &visited2, &bad).is_err());
    }

    #[test]
    fn detects_parent_cycle() {
        let g = GraphBuilder::undirected(3)
            .edges([(0, 1), (1, 2), (2, 0)])
            .build();
        let visited = vec![true; 3];
        // 1 -> 2 -> 1 cycle, root 0 ok.
        let parent = vec![NO_PARENT, 2, 1];
        let err = check_spanning_tree(&g, 0, &visited, &parent).unwrap_err();
        assert!(err.0.contains("cycle"));
    }

    #[test]
    fn detects_root_with_parent() {
        let g = GraphBuilder::undirected(2).edges([(0, 1)]).build();
        let visited = vec![true, true];
        let parent = vec![1, 0];
        assert!(check_spanning_tree(&g, 0, &visited, &parent).is_err());
    }

    #[test]
    fn detects_unvisited_with_parent() {
        let g = GraphBuilder::undirected(2).edges([(0, 1)]).build();
        let visited = vec![true, false];
        let parent = vec![NO_PARENT, 0];
        assert!(check_spanning_tree(&g, 0, &visited, &parent).is_err());
    }

    #[test]
    fn detects_wrong_reachability() {
        let g = GraphBuilder::undirected(3).edges([(0, 1)]).build();
        assert!(check_reachability(&g, 0, &[true, true, true]).is_err());
        assert!(check_reachability(&g, 0, &[true, false, false]).is_err());
        check_reachability(&g, 0, &[true, true, false]).unwrap();
    }

    #[test]
    fn strict_check_accepts_path_tree() {
        // Cycle graph: serial DFS gives a path; the closing edge is a
        // back edge to the root — ancestor/descendant, so valid.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0)])
            .build();
        let out = serial_dfs(&g, 0);
        check_dfs_tree_property(&g, 0, &out.visited, &out.parent).unwrap();
    }

    #[test]
    fn strict_check_rejects_bfs_tree_on_triangle_plus() {
        // Diamond 0-1, 0-2, 1-3, 2-3: BFS tree from 0 has 1 and 2 as
        // siblings, and 3 child of 1; edge 2-3 becomes a cross edge.
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build();
        let visited = vec![true; 4];
        let parent = vec![NO_PARENT, 0, 0, 1];
        let err = check_dfs_tree_property(&g, 0, &visited, &parent).unwrap_err();
        assert!(err.0.contains("cross edge"));
    }
}
