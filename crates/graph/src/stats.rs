//! Graph characterization: the structural quantities that predict where
//! a graph lands in the paper's evaluation (degree shape drives the
//! bandwidth story; traversal depth drives the BFS-vs-DFS crossover).

use crate::{CsrGraph, VertexId};

/// Summary statistics of a graph (plus one traversal's depth numbers).
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Logical edge count.
    pub edges: usize,
    /// Mean degree (arcs per vertex).
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Degree skew: max / mean (≫1 for social graphs, ~1 for meshes).
    pub degree_skew: f64,
    /// Share of isolated vertices.
    pub isolated_fraction: f64,
    /// BFS levels from the probe root (the Fig. 6 depth signal).
    pub bfs_levels: u32,
    /// Serial-DFS maximum stack depth from the probe root — the quantity
    /// that motivates the two-level stack (§2.3 issue #1).
    pub dfs_max_stack: usize,
    /// Vertices reachable from the probe root.
    pub reachable: usize,
}

/// Computes [`GraphStats`] probing traversals from `root`.
pub fn graph_stats(g: &CsrGraph, root: VertexId) -> GraphStats {
    let n = g.num_vertices();
    let arcs = g.num_arcs();
    let max_degree = g.max_degree();
    let avg = if n > 0 { arcs as f64 / n as f64 } else { 0.0 };
    let isolated = (0..n as u32).filter(|&v| g.degree(v) == 0).count();
    let (_, bfs_levels) = crate::traversal::bfs_levels(g, root);

    // DFS max stack depth (Algorithm 1's stack).
    let mut visited = vec![false; n];
    let mut stack: Vec<(u32, u64)> = Vec::new();
    visited[root as usize] = true;
    stack.push((root, g.row_ptr()[root as usize]));
    let mut max_stack = 1usize;
    let mut reachable = 1usize;
    while let Some(&(u, i)) = stack.last() {
        if i < g.row_ptr()[u as usize + 1] {
            let v = g.col_idx()[i as usize];
            stack.last_mut().expect("nonempty").1 = i + 1;
            if !visited[v as usize] {
                visited[v as usize] = true;
                reachable += 1;
                stack.push((v, g.row_ptr()[v as usize]));
                max_stack = max_stack.max(stack.len());
            }
        } else {
            stack.pop();
        }
    }

    GraphStats {
        vertices: n,
        edges: g.num_edges(),
        avg_degree: avg,
        max_degree,
        degree_skew: if avg > 0.0 {
            max_degree as f64 / avg
        } else {
            0.0
        },
        isolated_fraction: if n > 0 {
            isolated as f64 / n as f64
        } else {
            0.0
        },
        bfs_levels,
        dfs_max_stack: max_stack,
        reachable,
    }
}

/// Degree histogram in powers of two: bucket `i` counts vertices with
/// degree in `[2^i, 2^(i+1))` (bucket 0 additionally holds degree 0–1).
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = Vec::new();
    for v in 0..g.num_vertices() as u32 {
        let d = g.degree(v);
        let bucket = if d <= 1 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize - 1
        };
        if hist.len() <= bucket {
            hist.resize(bucket + 1, 0);
        }
        hist[bucket] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn path_stats() {
        let g = GraphBuilder::undirected(100)
            .edges((0..99).map(|i| (i, i + 1)))
            .build();
        let s = graph_stats(&g, 0);
        assert_eq!(s.vertices, 100);
        assert_eq!(s.edges, 99);
        assert_eq!(s.bfs_levels, 100);
        assert_eq!(s.dfs_max_stack, 100, "path DFS stack is the whole path");
        assert_eq!(s.reachable, 100);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.isolated_fraction, 0.0);
    }

    #[test]
    fn star_stats() {
        let g = GraphBuilder::undirected(101)
            .edges((1..101).map(|i| (0, i)))
            .build();
        let s = graph_stats(&g, 0);
        assert_eq!(s.bfs_levels, 2);
        assert_eq!(s.dfs_max_stack, 2, "star DFS never stacks deep");
        assert!(s.degree_skew > 40.0);
    }

    #[test]
    fn isolated_fraction() {
        let g = GraphBuilder::undirected(10).edges([(0, 1)]).build();
        let s = graph_stats(&g, 0);
        assert!((s.isolated_fraction - 0.8).abs() < 1e-12);
        assert_eq!(s.reachable, 2);
    }

    #[test]
    fn histogram_buckets() {
        // degrees: one 0, one 1... build: 0-1 edge, 2 isolated, 3 with 4 nbrs
        let g = GraphBuilder::undirected(8)
            .edges([(0, 1), (3, 4), (3, 5), (3, 6), (3, 7)])
            .build();
        let h = degree_histogram(&g);
        // deg(0)=1,deg(1)=1 -> bucket0 x2; deg(2)=0 -> bucket0; deg(3)=4 -> bucket2;
        // deg(4..8)=1 each -> bucket0 x4 (wait deg(4)=1 etc.)
        assert_eq!(h[0], 7); // all the degree <=1 vertices
        assert_eq!(h[2], 1); // the hub with degree 4
        assert_eq!(h.iter().sum::<usize>(), 8);
    }

    #[test]
    fn deep_stack_vs_shallow_levels_diverge() {
        // A cycle: BFS depth ~ n/2 but DFS stack ~ n.
        let n = 1000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n).map(|i| (i, (i + 1) % n)))
            .build();
        let s = graph_stats(&g, 0);
        assert_eq!(s.dfs_max_stack, n as usize);
        assert_eq!(s.bfs_levels as usize, n as usize / 2 + 1);
    }
}
