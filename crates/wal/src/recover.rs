//! Opening a WAL after a crash: sequential scan, torn-tail detection, and
//! physical truncation.
//!
//! The tail rule distinguishes "power died mid-append" from "the file is
//! corrupt":
//!
//! - a frame that decodes cleanly but whose LSN does not strictly
//!   increase → **corrupt** (the log was tampered with or double-opened);
//! - a frame cut off by end-of-file → **torn tail**, truncate and go on;
//! - a frame whose bytes are all present but fail CRC/structure checks:
//!   if its claimed extent reaches end-of-file it is still a tail (a
//!   partially-flushed page can scribble anywhere in the final frame) →
//!   truncate; if valid data *follows* it, truncating would silently drop
//!   acknowledged records → **corrupt**, refuse to open.
//!
//! This is exactly the property the proptests assert: any truncation or
//! single-bit flip yields a strict prefix of the acknowledged records or
//! a typed error — never a panic, never garbage replayed.

use std::fs::{self, OpenOptions};
use std::path::Path;

use crate::error::{io_err, WalError};
use crate::metrics::WalMetrics;
use crate::record::{decode_frame, FrameError, WalRecord};

/// What the scan found at the end of the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TailStatus {
    /// A torn tail was detected.
    pub torn: bool,
    /// Bytes past the last valid frame (0 when the tail is clean).
    pub truncated_bytes: u64,
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every intact record, in log order.
    pub records: Vec<WalRecord>,
    /// Tail disposition.
    pub tail: TailStatus,
    /// The next LSN a writer should use (`max(lsn) + 1`, or 0 if empty).
    pub next_lsn: u64,
}

fn scan_bytes(path: &Path, data: &[u8]) -> Result<(Vec<WalRecord>, u64), WalError> {
    let mut records: Vec<WalRecord> = Vec::new();
    let mut offset = 0usize;
    let valid_end = loop {
        if offset >= data.len() {
            break offset;
        }
        match decode_frame(&data[offset..]) {
            Ok((rec, used)) => {
                if let Some(last) = records.last() {
                    if rec.lsn <= last.lsn {
                        return Err(WalError::Corrupt {
                            path: path.to_path_buf(),
                            offset: offset as u64,
                            detail: format!("LSN regression: {} follows {}", rec.lsn, last.lsn),
                        });
                    }
                }
                records.push(rec);
                offset += used;
            }
            Err(FrameError::Truncated { .. }) => break offset,
            Err(FrameError::BadCrc { frame_len })
            | Err(FrameError::Malformed { frame_len, .. }) => {
                if offset + frame_len >= data.len() {
                    // The bad frame's claimed extent reaches EOF: torn tail.
                    break offset;
                }
                return Err(WalError::Corrupt {
                    path: path.to_path_buf(),
                    offset: offset as u64,
                    detail: "bad frame with valid data following it".to_string(),
                });
            }
        }
    };
    Ok((records, valid_end as u64))
}

/// Scans the log at `path` without modifying it. A missing file scans as
/// empty — a fresh WAL directory is not an error.
pub fn scan_file(path: &Path) -> Result<WalScan, WalError> {
    let data = match fs::read(path) {
        Ok(d) => d,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(io_err("read", path, e)),
    };
    let (records, valid_end) = scan_bytes(path, &data)?;
    let truncated_bytes = data.len() as u64 - valid_end;
    let next_lsn = records.last().map_or(0, |r| r.lsn + 1);
    Ok(WalScan {
        records,
        tail: TailStatus {
            torn: truncated_bytes > 0,
            truncated_bytes,
        },
        next_lsn,
    })
}

/// Scans the log and, if a torn tail is found, physically truncates it
/// (set_len + fsync) so a subsequent writer appends after the last intact
/// frame. Bumps `db_wal_torn_truncated_total` when a tail is cut.
pub fn recover_file(path: &Path, metrics: &WalMetrics) -> Result<WalScan, WalError> {
    let scan = scan_file(path)?;
    if scan.tail.torn {
        let file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        let keep = file
            .metadata()
            .map_err(|e| io_err("stat", path, e))?
            .len()
            .saturating_sub(scan.tail.truncated_bytes);
        file.set_len(keep)
            .map_err(|e| io_err("truncate", path, e))?;
        file.sync_all().map_err(|e| io_err("sync", path, e))?;
        metrics.torn_truncated.inc();
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_metrics::Registry;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dbwal-rec-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn rec(lsn: u64) -> WalRecord {
        WalRecord {
            lsn,
            epoch: lsn + 1,
            tenant: "t".to_string(),
            corpus: "delta:g:8".to_string(),
            adds: vec![(lsn as u32, lsn as u32 + 1), (2, 3)],
            dels: vec![(4, 5)],
            tombs: vec![],
        }
    }

    fn log_bytes(n: u64) -> Vec<u8> {
        let mut out = Vec::new();
        for i in 0..n {
            out.extend_from_slice(&rec(i).encode_frame());
        }
        out
    }

    #[test]
    fn missing_file_scans_empty() {
        let dir = tmpdir("missing");
        let scan = scan_file(&dir.join("nope.log")).expect("scan");
        assert!(scan.records.is_empty());
        assert!(!scan.tail.torn);
        assert_eq!(scan.next_lsn, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn clean_log_scans_fully() {
        let dir = tmpdir("clean");
        let path = dir.join("wal.log");
        fs::write(&path, log_bytes(4)).expect("write");
        let scan = scan_file(&path).expect("scan");
        assert_eq!(scan.records.len(), 4);
        assert!(!scan.tail.torn);
        assert_eq!(scan.next_lsn, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncated_and_counted() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let full = log_bytes(3);
        let frame_len = rec(0).encode_frame().len();
        // Cut the last frame in half: records 0 and 1 survive.
        let cut = full.len() - frame_len / 2;
        fs::write(&path, &full[..cut]).expect("write");
        let m = WalMetrics::register(&Registry::new());
        let scan = recover_file(&path, &m).expect("recover");
        assert_eq!(scan.records.len(), 2);
        assert!(scan.tail.torn);
        assert_eq!(scan.next_lsn, 2);
        assert_eq!(m.torn_truncated.get(), 1);
        // File is now physically clean: a re-scan sees no tail.
        let rescan = scan_file(&path).expect("rescan");
        assert_eq!(rescan.records.len(), 2);
        assert!(!rescan.tail.torn);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_file_corruption_is_typed_error() {
        let dir = tmpdir("corrupt");
        let path = dir.join("wal.log");
        let mut data = log_bytes(3);
        // Flip a payload byte inside the FIRST frame — valid frames follow,
        // so truncation would drop acknowledged records 1 and 2.
        data[10] ^= 0x01;
        fs::write(&path, &data).expect("write");
        let err = scan_file(&path).expect_err("must be corrupt");
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lsn_regression_is_corrupt() {
        let dir = tmpdir("lsn");
        let path = dir.join("wal.log");
        let mut data = rec(5).encode_frame();
        data.extend_from_slice(&rec(5).encode_frame());
        fs::write(&path, &data).expect("write");
        let err = scan_file(&path).expect_err("must be corrupt");
        assert!(matches!(err, WalError::Corrupt { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_in_final_frame_is_torn_tail() {
        let dir = tmpdir("flip-tail");
        let path = dir.join("wal.log");
        let mut data = log_bytes(3);
        // Corrupt the final frame's payload: its extent reaches EOF, so the
        // scan treats it as torn, keeping the intact prefix.
        let last = data.len() - 3;
        data[last] ^= 0x80;
        fs::write(&path, &data).expect("write");
        let m = WalMetrics::register(&Registry::new());
        let scan = recover_file(&path, &m).expect("recover");
        assert_eq!(scan.records.len(), 2);
        assert!(scan.tail.torn);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[cfg(test)]
mod proptests {
    //! Satellite 3: arbitrary byte-level truncation or a single-bit flip
    //! of a WAL file either recovers a strict prefix of the acknowledged
    //! records or fails with a typed `WalError` — never panics, never
    //! replays garbage.

    use super::*;
    use proptest::prelude::*;

    fn arb_log() -> impl Strategy<Value = Vec<WalRecord>> {
        proptest::collection::vec(
            (
                0u64..1000,
                proptest::collection::vec((0u32..64, 0u32..64), 0..5),
                proptest::collection::vec((0u32..64, 0u32..64), 0..3),
                proptest::collection::vec(0u32..64, 0..3),
            ),
            1..6,
        )
        .prop_map(|parts| {
            parts
                .into_iter()
                .enumerate()
                .map(|(i, (epoch, adds, dels, tombs))| WalRecord {
                    lsn: i as u64,
                    epoch,
                    tenant: "t".to_string(),
                    corpus: "delta:g:64".to_string(),
                    adds,
                    dels,
                    tombs,
                })
                .collect()
        })
    }

    fn encode_all(recs: &[WalRecord]) -> Vec<u8> {
        let mut out = Vec::new();
        for r in recs {
            out.extend_from_slice(&r.encode_frame());
        }
        out
    }

    /// The recovered records must be exactly `recs[..k]` for some `k`.
    fn assert_strict_prefix(recovered: &[WalRecord], recs: &[WalRecord]) {
        assert!(recovered.len() <= recs.len(), "recovered more than written");
        for (got, want) in recovered.iter().zip(recs.iter()) {
            assert_eq!(got, want, "recovered record diverges from written one");
        }
    }

    proptest! {
        #[test]
        fn truncation_recovers_strict_prefix(
            recs in arb_log(),
            cut_frac in 0.0f64..1.0,
        ) {
            let data = encode_all(&recs);
            let cut = ((data.len() as f64) * cut_frac) as usize;
            let dir = std::env::temp_dir()
                .join(format!("dbwal-prop-trunc-{}", std::process::id()));
            fs::create_dir_all(&dir).expect("mkdir");
            let path = dir.join(format!("w{cut}.log"));
            fs::write(&path, &data[..cut.min(data.len())]).expect("write");
            let m = WalMetrics::register(&db_metrics::Registry::new());
            // Truncation alone can never make the file corrupt: it must
            // recover, and recover a strict prefix.
            let scan = recover_file(&path, &m).expect("truncated log must recover");
            assert_strict_prefix(&scan.records, &recs);
            let _ = fs::remove_file(&path);
        }

        #[test]
        fn single_bit_flip_prefix_or_typed_error(
            recs in arb_log(),
            pos_frac in 0.0f64..1.0,
            bit in 0u32..8,
        ) {
            let mut data = encode_all(&recs);
            let pos = (((data.len() - 1) as f64) * pos_frac) as usize;
            data[pos] ^= 1u8 << bit;
            let dir = std::env::temp_dir()
                .join(format!("dbwal-prop-flip-{}", std::process::id()));
            fs::create_dir_all(&dir).expect("mkdir");
            let path = dir.join(format!("w{pos}-{bit}.log"));
            fs::write(&path, &data).expect("write");
            let m = WalMetrics::register(&db_metrics::Registry::new());
            match recover_file(&path, &m) {
                Ok(scan) => assert_strict_prefix(&scan.records, &recs),
                Err(WalError::Corrupt { .. }) => {}
                Err(e) => panic!("unexpected error class: {e}"),
            }
            let _ = fs::remove_file(&path);
        }
    }
}
