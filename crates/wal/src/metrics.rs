//! `db_wal_*` metric handles, registered against a shared
//! [`db_metrics::Registry`] so they render in the same exposition scrape
//! as the serve metrics.

use db_metrics::{Counter, Histogram, Registry};

/// Handle bundle for every `db_wal_*` series.
#[derive(Debug, Clone)]
pub struct WalMetrics {
    /// Records appended (staged) to the log, acknowledged or not.
    pub appended_records: Counter,
    /// Frame bytes appended to the log.
    pub appended_bytes: Counter,
    /// Real fsyncs issued against the log file.
    pub fsyncs: Counter,
    /// Fsyncs swallowed by an injected `fsynclie` fault.
    pub fsync_lies: Counter,
    /// Torn tails truncated during open/recovery.
    pub torn_truncated: Counter,
    /// Records replayed into graphs during recovery.
    pub recovery_replayed: Counter,
    /// Records skipped during recovery because a checkpoint already
    /// covered them.
    pub recovery_skipped: Counter,
    /// Checkpoints (pack + manifest + WAL truncation) completed.
    pub checkpoints: Counter,
    /// Records per group commit, observed at each real fsync.
    pub group_size: Histogram,
}

impl WalMetrics {
    /// Registers (or looks up) every `db_wal_*` series on `reg`.
    pub fn register(reg: &Registry) -> Self {
        let c = |name: &str, help: &str| reg.counter(name, help, &[]);
        WalMetrics {
            appended_records: c(
                "db_wal_appended_records_total",
                "WAL records appended to the log",
            ),
            appended_bytes: c("db_wal_appended_bytes_total", "WAL frame bytes appended"),
            fsyncs: c("db_wal_fsyncs_total", "Real fsyncs issued on the WAL file"),
            fsync_lies: c(
                "db_wal_fsync_lies_total",
                "Fsyncs swallowed by an injected fsynclie fault",
            ),
            torn_truncated: c(
                "db_wal_torn_truncated_total",
                "Torn WAL tails truncated on open",
            ),
            recovery_replayed: c(
                "db_wal_recovery_replayed_total",
                "WAL records replayed into graphs during recovery",
            ),
            recovery_skipped: c(
                "db_wal_recovery_skipped_total",
                "WAL records skipped during recovery (covered by a checkpoint)",
            ),
            checkpoints: c(
                "db_wal_checkpoints_total",
                "Checkpoints completed (pack + manifest + WAL truncation)",
            ),
            group_size: reg.histogram(
                "db_wal_group_size",
                "Records committed per group fsync",
                &[],
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent_and_renders() {
        let reg = Registry::new();
        let m1 = WalMetrics::register(&reg);
        let m2 = WalMetrics::register(&reg);
        m1.appended_records.inc();
        m2.appended_records.inc();
        assert_eq!(m1.appended_records.get(), 2, "same underlying series");
        let text = reg.render_prometheus();
        assert!(text.contains("db_wal_appended_records_total 2"));
        assert!(text.contains("db_wal_group_size"));
    }
}
