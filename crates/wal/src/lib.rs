//! # db-wal — crash-consistent durability for delta graphs
//!
//! A checksummed, length-prefixed, group-commit write-ahead log for the
//! `db-delta` mutation stream, plus the checkpoint manifest and recovery
//! scan that together make an acknowledged write survive `kill -9`.
//!
//! The commit protocol, enforced by `db-serve`'s write path:
//!
//! 1. **Log** the batch ([`WalRecord`] with the epoch it *will* publish)
//!    and commit it per the [`FsyncPolicy`].
//! 2. **Apply** the batch to the in-memory `db-delta` graph.
//! 3. **Ack** the client.
//!
//! Checkpoints fold the durable prefix into a `db-store` pack and swap
//! the [`Manifest`] (temp + fsync + rename + dir-fsync), then truncate
//! the WAL. Recovery loads the manifest's packs and replays every WAL
//! record past each corpus's checkpoint LSN; the rebuilt epoch state is
//! bit-identical to the pre-crash graph or recovery refuses to start
//! ([`WalError::Replay`]).
//!
//! Every fault the `db-fault` storage domain can inject — torn appends,
//! short writes, lying fsyncs, seeded crashes — enters through the
//! [`WalFaultHook`] trait, so the crate has no dependency on the fault
//! plan grammar.

#![warn(missing_docs)]

mod error;
pub mod log;
pub mod manifest;
pub mod metrics;
pub mod record;
pub mod recover;

pub use error::WalError;
pub use log::{AppendFault, CkptPhase, FsyncPolicy, Wal, WalFaultHook, CRASH_EXIT_CODE};
pub use manifest::{Manifest, ManifestEntry};
pub use metrics::WalMetrics;
pub use record::{decode_frame, FrameError, WalRecord, MAX_FRAME_LEN};
pub use recover::{recover_file, scan_file, TailStatus, WalScan};

use std::io;
use std::path::Path;

/// Default WAL file name inside a `--wal-dir`.
pub const WAL_FILE: &str = "wal.log";

/// Default manifest file name inside a `--wal-dir`.
pub const MANIFEST_FILE: &str = "manifest";

/// Fsyncs a directory so a rename inside it survives power loss. On
/// non-Unix platforms this is a no-op (directory handles cannot be
/// fsynced portably).
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        std::fs::File::open(dir)?.sync_all()?;
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsync_dir_on_real_directory() {
        let dir = std::env::temp_dir();
        fsync_dir(&dir).expect("fsync_dir");
    }

    #[test]
    fn error_display_names_op_and_path() {
        let e = WalError::Io {
            op: "append",
            path: std::path::PathBuf::from("/x/wal.log"),
            source: io::Error::other("disk on fire"),
        };
        let s = e.to_string();
        assert!(s.contains("append"), "{s}");
        assert!(s.contains("wal.log"), "{s}");
    }
}
