//! Frame codec for WAL records.
//!
//! A frame on disk is `len:u32 LE | crc:u32 LE | payload[len]`, where the
//! CRC-32 (IEEE) covers only the payload bytes. The payload encodes one
//! acknowledged mutation batch:
//!
//! ```text
//! lsn:u64 epoch:u64
//! tenant_len:u16 tenant[..] corpus_len:u16 corpus[..]
//! n_adds:u32 n_dels:u32 n_tombs:u32
//! adds[(u32,u32)..] dels[(u32,u32)..] tombs[u32..]
//! ```
//!
//! All integers are little-endian. Decoding is total: every byte sequence
//! maps to either a record or a typed [`FrameError`] — decode never panics,
//! which the proptest suite in `recover.rs` exercises against truncation
//! and bit flips.

/// Hard ceiling on a frame's payload length (64 MiB). A length field above
/// this is treated as malformed rather than attempting a huge allocation —
/// a single bit flip in `len` must not OOM the recovery path.
pub const MAX_FRAME_LEN: usize = 1 << 26;

/// Bytes of framing overhead before the payload (`len` + `crc`).
pub const FRAME_HEADER: usize = 8;

/// One acknowledged mutation batch, as logged before the in-memory apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number; strictly increasing within a WAL file.
    pub lsn: u64,
    /// Epoch the batch published when first applied. Recovery must
    /// reproduce exactly this epoch or refuse to start.
    pub epoch: u64,
    /// Tenant that issued the write.
    pub tenant: String,
    /// Corpus key the batch applies to.
    pub corpus: String,
    /// Edges added, as `(src, dst)` pairs.
    pub adds: Vec<(u32, u32)>,
    /// Edges deleted, as `(src, dst)` pairs.
    pub dels: Vec<(u32, u32)>,
    /// Vertices tombstoned.
    pub tombs: Vec<u32>,
}

/// Why a single frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the frame does — the classic torn tail.
    Truncated {
        /// Bytes the frame claims to need from its start.
        need: usize,
        /// Bytes actually available from its start.
        have: usize,
    },
    /// Payload bytes are all present but the CRC does not match.
    BadCrc {
        /// Full frame length (header + payload) as claimed on disk.
        frame_len: usize,
    },
    /// The frame is structurally invalid: oversized length field, inner
    /// lengths overrunning the payload, or trailing payload bytes.
    Malformed {
        /// Bytes this frame claims to cover (used by the tail rule to
        /// decide torn-vs-corrupt).
        frame_len: usize,
        /// What was wrong.
        detail: String,
    },
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc_table();

/// CRC-32 (IEEE 802.3) of `data`. Shared with the manifest checksum.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.data.len() - self.pos < n {
            return Err(format!(
                "payload overrun: need {n} bytes at offset {}, have {}",
                self.pos,
                self.data.len() - self.pos
            ));
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, String> {
        // io-ok: take(2) guarantees exactly 2 bytes, try_into cannot fail.
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, String> {
        // io-ok: take(4) guarantees exactly 4 bytes, try_into cannot fail.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        // io-ok: take(8) guarantees exactly 8 bytes, try_into cannot fail.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| "non-utf8 string field".to_string())
    }
}

impl WalRecord {
    /// Encode this record as a complete on-disk frame (header + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(
            64 + self.tenant.len()
                + self.corpus.len()
                + self.adds.len() * 8
                + self.dels.len() * 8
                + self.tombs.len() * 4,
        );
        put_u64(&mut payload, self.lsn);
        put_u64(&mut payload, self.epoch);
        put_u16(&mut payload, self.tenant.len() as u16);
        payload.extend_from_slice(self.tenant.as_bytes());
        put_u16(&mut payload, self.corpus.len() as u16);
        payload.extend_from_slice(self.corpus.as_bytes());
        put_u32(&mut payload, self.adds.len() as u32);
        put_u32(&mut payload, self.dels.len() as u32);
        put_u32(&mut payload, self.tombs.len() as u32);
        for &(s, d) in &self.adds {
            put_u32(&mut payload, s);
            put_u32(&mut payload, d);
        }
        for &(s, d) in &self.dels {
            put_u32(&mut payload, s);
            put_u32(&mut payload, d);
        }
        for &v in &self.tombs {
            put_u32(&mut payload, v);
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Decode the frame starting at `bytes[0]`. On success returns the record
/// and the total frame length consumed. Never panics.
pub fn decode_frame(bytes: &[u8]) -> Result<(WalRecord, usize), FrameError> {
    if bytes.len() < FRAME_HEADER {
        return Err(FrameError::Truncated {
            need: FRAME_HEADER,
            have: bytes.len(),
        });
    }
    // io-ok: slice indices are bounds-checked above, try_into cannot fail.
    let len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
    // io-ok: slice indices are bounds-checked above, try_into cannot fail.
    let crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if len > MAX_FRAME_LEN {
        // An absurd length field cannot be distinguished from garbage; the
        // claimed extent is "everything that remains" so a tail hit by a
        // bit flip in `len` is still truncatable by the scan rule.
        return Err(FrameError::Malformed {
            frame_len: bytes.len(),
            detail: format!("frame length {len} exceeds max {MAX_FRAME_LEN}"),
        });
    }
    let total = FRAME_HEADER + len;
    if bytes.len() < total {
        return Err(FrameError::Truncated {
            need: total,
            have: bytes.len(),
        });
    }
    let payload = &bytes[FRAME_HEADER..total];
    if crc32(payload) != crc {
        return Err(FrameError::BadCrc { frame_len: total });
    }
    let mut cur = Cursor {
        data: payload,
        pos: 0,
    };
    let inner = (|| -> Result<WalRecord, String> {
        let lsn = cur.u64()?;
        let epoch = cur.u64()?;
        let tenant = cur.string()?;
        let corpus = cur.string()?;
        let n_adds = cur.u32()? as usize;
        let n_dels = cur.u32()? as usize;
        let n_tombs = cur.u32()? as usize;
        let mut adds = Vec::with_capacity(n_adds.min(1 << 20));
        for _ in 0..n_adds {
            adds.push((cur.u32()?, cur.u32()?));
        }
        let mut dels = Vec::with_capacity(n_dels.min(1 << 20));
        for _ in 0..n_dels {
            dels.push((cur.u32()?, cur.u32()?));
        }
        let mut tombs = Vec::with_capacity(n_tombs.min(1 << 20));
        for _ in 0..n_tombs {
            tombs.push(cur.u32()?);
        }
        Ok(WalRecord {
            lsn,
            epoch,
            tenant,
            corpus,
            adds,
            dels,
            tombs,
        })
    })();
    match inner {
        Ok(rec) => {
            if cur.pos != payload.len() {
                return Err(FrameError::Malformed {
                    frame_len: total,
                    detail: format!(
                        "trailing payload bytes: consumed {} of {}",
                        cur.pos,
                        payload.len()
                    ),
                });
            }
            Ok((rec, total))
        }
        Err(detail) => Err(FrameError::Malformed {
            frame_len: total,
            detail,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(lsn: u64) -> WalRecord {
        WalRecord {
            lsn,
            epoch: lsn + 1,
            tenant: "acme".to_string(),
            corpus: "delta:g:64".to_string(),
            adds: vec![(0, 1), (1, 2)],
            dels: vec![(3, 4)],
            tombs: vec![9],
        }
    }

    #[test]
    fn frame_round_trips() {
        let rec = sample(7);
        let frame = rec.encode_frame();
        let (back, used) = decode_frame(&frame).expect("decode");
        assert_eq!(back, rec);
        assert_eq!(used, frame.len());
    }

    #[test]
    fn empty_batches_round_trip() {
        let rec = WalRecord {
            lsn: 0,
            epoch: 1,
            tenant: String::new(),
            corpus: "c".to_string(),
            adds: vec![],
            dels: vec![],
            tombs: vec![],
        };
        let frame = rec.encode_frame();
        let (back, _) = decode_frame(&frame).expect("decode");
        assert_eq!(back, rec);
    }

    #[test]
    fn truncation_reports_need_and_have() {
        let frame = sample(1).encode_frame();
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Err(FrameError::Truncated { need, have }) => {
                    assert_eq!(have, cut);
                    assert!(need > cut);
                }
                other => panic!("cut {cut}: expected Truncated, got {other:?}"),
            }
        }
    }

    #[test]
    fn crc_flip_detected() {
        let mut frame = sample(2).encode_frame();
        let last = frame.len() - 1;
        frame[last] ^= 0x40;
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::BadCrc { .. })
        ));
    }

    #[test]
    fn oversized_len_is_malformed_spanning_rest() {
        let mut frame = sample(3).encode_frame();
        frame[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        match decode_frame(&frame) {
            Err(FrameError::Malformed { frame_len, .. }) => assert_eq!(frame_len, frame.len()),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        // Hand-build a payload with extra bytes after the tombs array but a
        // valid CRC: structurally invalid even though the checksum passes.
        let rec = sample(4);
        let good = rec.encode_frame();
        let mut payload = good[FRAME_HEADER..].to_vec();
        payload.push(0xAB);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        assert!(matches!(
            decode_frame(&frame),
            Err(FrameError::Malformed { .. })
        ));
    }

    #[test]
    fn crc_known_vector() {
        // "123456789" is the canonical CRC-32 check input.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
