//! Checkpoint manifest: a checksummed text file recording, per corpus,
//! the pack snapshot and the last WAL LSN it covers.
//!
//! Format (`\t`-separated fields, one corpus per line, trailing CRC line
//! over everything before it):
//!
//! ```text
//! dbwal-manifest v1
//! corpus=<key>\tepoch=<e>\tlsn=<l>\tapplied=<n>\tpack=<path or ->
//! crc=<8 hex digits>
//! ```
//!
//! The manifest is swapped atomically: write temp, fsync temp, rename
//! over the live file, fsync the parent directory. An injected
//! `crash:wal@ckpt=manifest` fault kills the process between the temp
//! fsync and the rename — the window a real power cut would hit.

use std::collections::BTreeMap;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{io_err, WalError};
use crate::fsync_dir;
use crate::log::{CkptPhase, WalFaultHook};
use crate::record::crc32;

/// Header line identifying the format version.
pub const MANIFEST_HEADER: &str = "dbwal-manifest v1";

/// Checkpoint state for one corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Corpus key (must not contain tab or newline).
    pub corpus: String,
    /// Epoch the pack snapshot represents.
    pub epoch: u64,
    /// Last WAL LSN folded into the pack; recovery replays strictly
    /// greater LSNs only.
    pub lsn: u64,
    /// Acknowledged writes applied up to and including `lsn`.
    pub applied: u64,
    /// Pack snapshot path, or `None` for an empty-base corpus.
    pub pack: Option<PathBuf>,
}

/// The full manifest: one entry per checkpointed corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Entries keyed by corpus, in stable (sorted) order.
    pub entries: BTreeMap<String, ManifestEntry>,
}

impl Manifest {
    /// Serializes to the on-disk text format, CRC line included.
    fn render(&self) -> String {
        let mut body = String::new();
        body.push_str(MANIFEST_HEADER);
        body.push('\n');
        for e in self.entries.values() {
            let pack = e
                .pack
                .as_ref()
                .map_or_else(|| "-".to_string(), |p| p.display().to_string());
            body.push_str(&format!(
                "corpus={}\tepoch={}\tlsn={}\tapplied={}\tpack={}\n",
                e.corpus, e.epoch, e.lsn, e.applied, pack
            ));
        }
        let crc = crc32(body.as_bytes());
        body.push_str(&format!("crc={crc:08x}\n"));
        body
    }

    /// Loads the manifest at `path`. A missing file is `Ok(None)` — the
    /// first checkpoint has not happened yet. A present-but-invalid file
    /// is a typed error: recovery must not guess.
    pub fn load(path: &Path) -> Result<Option<Manifest>, WalError> {
        let text = match fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read", path, e)),
        };
        let malformed = |detail: String| WalError::Malformed {
            path: path.to_path_buf(),
            detail,
        };
        let crc_pos = text
            .rfind("crc=")
            .ok_or_else(|| malformed("missing crc line".to_string()))?;
        let (body, crc_line) = text.split_at(crc_pos);
        let claimed = crc_line
            .trim_end()
            .strip_prefix("crc=")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| malformed("unparseable crc line".to_string()))?;
        let actual = crc32(body.as_bytes());
        if claimed != actual {
            return Err(malformed(format!(
                "checksum mismatch: file says {claimed:08x}, computed {actual:08x}"
            )));
        }
        let mut lines = body.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(malformed(format!(
                "bad header (expected '{MANIFEST_HEADER}')"
            )));
        }
        let mut entries = BTreeMap::new();
        for (i, line) in lines.enumerate() {
            let mut corpus = None;
            let mut epoch = None;
            let mut lsn = None;
            let mut applied = None;
            let mut pack = None;
            for field in line.split('\t') {
                let (k, v) = field
                    .split_once('=')
                    .ok_or_else(|| malformed(format!("line {}: bad field '{field}'", i + 2)))?;
                match k {
                    "corpus" => corpus = Some(v.to_string()),
                    "epoch" => epoch = v.parse::<u64>().ok(),
                    "lsn" => lsn = v.parse::<u64>().ok(),
                    "applied" => applied = v.parse::<u64>().ok(),
                    "pack" => {
                        pack = Some(if v == "-" {
                            None
                        } else {
                            Some(PathBuf::from(v))
                        })
                    }
                    _ => return Err(malformed(format!("line {}: unknown field '{k}'", i + 2))),
                }
            }
            let entry = ManifestEntry {
                corpus: corpus
                    .ok_or_else(|| malformed(format!("line {}: missing corpus", i + 2)))?,
                epoch: epoch
                    .ok_or_else(|| malformed(format!("line {}: missing/bad epoch", i + 2)))?,
                lsn: lsn.ok_or_else(|| malformed(format!("line {}: missing/bad lsn", i + 2)))?,
                applied: applied
                    .ok_or_else(|| malformed(format!("line {}: missing/bad applied", i + 2)))?,
                pack: pack.ok_or_else(|| malformed(format!("line {}: missing pack", i + 2)))?,
            };
            entries.insert(entry.corpus.clone(), entry);
        }
        Ok(Some(Manifest { entries }))
    }

    /// Atomically replaces the manifest at `path`: temp + fsync + rename +
    /// dir-fsync. The fault hook's `ckpt=manifest` crash point fires after
    /// the temp file is durable but before the rename.
    pub fn store(&self, path: &Path, hook: Option<&Arc<dyn WalFaultHook>>) -> Result<(), WalError> {
        for key in self.entries.keys() {
            if key.contains('\t') || key.contains('\n') {
                return Err(WalError::Malformed {
                    path: path.to_path_buf(),
                    detail: format!("corpus key '{}' contains tab/newline", key.escape_debug()),
                });
            }
        }
        let tmp = path.with_extension("tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(self.render().as_bytes())
                .map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        if let Some(hook) = hook {
            if hook.on_checkpoint(CkptPhase::Manifest) {
                // Temp durable, rename pending: the live manifest still
                // points at the previous checkpoint.
                std::process::exit(crate::log::CRASH_EXIT_CODE);
            }
        }
        fs::rename(&tmp, path).map_err(|e| io_err("rename", path, e))?;
        if let Some(dir) = path.parent() {
            fsync_dir(dir).map_err(|e| io_err("sync dir", dir, e))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dbwal-man-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn sample() -> Manifest {
        let mut m = Manifest::default();
        m.entries.insert(
            "delta:g:64".to_string(),
            ManifestEntry {
                corpus: "delta:g:64".to_string(),
                epoch: 9,
                lsn: 8,
                applied: 9,
                pack: Some(PathBuf::from("/tmp/ckpt-9.dbsg")),
            },
        );
        m.entries.insert(
            "delta:h:8".to_string(),
            ManifestEntry {
                corpus: "delta:h:8".to_string(),
                epoch: 0,
                lsn: 0,
                applied: 0,
                pack: None,
            },
        );
        m
    }

    #[test]
    fn store_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("manifest");
        let m = sample();
        m.store(&path, None).expect("store");
        let back = Manifest::load(&path).expect("load").expect("present");
        assert_eq!(back, m);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_none() {
        let dir = tmpdir("missing");
        assert!(Manifest::load(&dir.join("manifest"))
            .expect("load")
            .is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_manifest_is_typed_error() {
        let dir = tmpdir("corrupt");
        let path = dir.join("manifest");
        sample().store(&path, None).expect("store");
        let mut text = fs::read_to_string(&path).expect("read");
        text = text.replace("epoch=9", "epoch=7");
        fs::write(&path, text).expect("write");
        let err = Manifest::load(&path).expect_err("must fail");
        assert!(matches!(err, WalError::Malformed { .. }), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_manifest_is_typed_error() {
        let dir = tmpdir("trunc");
        let path = dir.join("manifest");
        sample().store(&path, None).expect("store");
        let text = fs::read_to_string(&path).expect("read");
        fs::write(&path, &text[..text.len() / 2]).expect("write");
        assert!(Manifest::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tab_in_corpus_key_rejected() {
        let dir = tmpdir("tab");
        let mut m = Manifest::default();
        m.entries.insert(
            "a\tb".to_string(),
            ManifestEntry {
                corpus: "a\tb".to_string(),
                epoch: 0,
                lsn: 0,
                applied: 0,
                pack: None,
            },
        );
        assert!(m.store(&dir.join("manifest"), None).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_replaces_atomically() {
        let dir = tmpdir("swap");
        let path = dir.join("manifest");
        let mut m = sample();
        m.store(&path, None).expect("store v1");
        m.entries.get_mut("delta:g:64").expect("entry").epoch = 12;
        m.store(&path, None).expect("store v2");
        let back = Manifest::load(&path).expect("load").expect("present");
        assert_eq!(back.entries["delta:g:64"].epoch, 12);
        assert!(!dir.join("manifest.tmp").exists(), "temp cleaned up");
        let _ = fs::remove_dir_all(&dir);
    }
}
