//! The typed error surface of the WAL: every I/O failure names its
//! operation and path, and every corruption names its byte offset.
//! Nothing in this crate panics on a bad file — the proptest suite
//! holds that line against arbitrary truncation and bit flips.

use std::fmt;
use std::io;
use std::path::PathBuf;

/// Why a WAL, manifest, or checkpoint operation failed.
#[derive(Debug)]
pub enum WalError {
    /// An I/O operation failed (including injected short writes, which
    /// model `ENOSPC`). `op` is the operation name, `path` the file it
    /// was aimed at.
    Io {
        /// Operation name (`append`, `sync`, `rename`, …).
        op: &'static str,
        /// File or directory the operation targeted.
        path: PathBuf,
        /// Underlying OS error.
        source: io::Error,
    },
    /// The file is corrupt *before* its tail: a frame with full bytes
    /// present fails its CRC or structure check while valid data
    /// follows it. A torn tail is NOT this error — tails are truncated
    /// and reported, never rejected.
    Corrupt {
        /// The corrupt file.
        path: PathBuf,
        /// Byte offset of the bad frame.
        offset: u64,
        /// What failed (CRC mismatch, bad structure, LSN regression).
        detail: String,
    },
    /// A manifest or record is structurally invalid (bad header line,
    /// missing field, checksum mismatch on the manifest).
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// Recovery replay produced an epoch that disagrees with the one
    /// logged at commit time — the rebuilt graph would not be
    /// bit-identical to the pre-crash one.
    Replay {
        /// Corpus whose replay diverged.
        corpus: String,
        /// What diverged.
        detail: String,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { op, path, source } => {
                write!(f, "wal {op} '{}': {source}", path.display())
            }
            WalError::Corrupt {
                path,
                offset,
                detail,
            } => write!(
                f,
                "wal corrupt '{}' at byte {offset}: {detail}",
                path.display()
            ),
            WalError::Malformed { path, detail } => {
                write!(f, "wal malformed '{}': {detail}", path.display())
            }
            WalError::Replay { corpus, detail } => {
                write!(f, "wal replay diverged for '{corpus}': {detail}")
            }
        }
    }
}

impl std::error::Error for WalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Shorthand constructor for [`WalError::Io`].
pub(crate) fn io_err(op: &'static str, path: &std::path::Path, source: io::Error) -> WalError {
    WalError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}
