//! Append path of the WAL: group commit, fsync policy, compaction, and
//! the fault hook that lets `db-fault` tear writes, lie about fsyncs, and
//! crash the process at seeded points.
//!
//! Durability is modelled in user space: staged frames sit in a `Vec<u8>`
//! buffer (standing in for the OS page cache) and only reach the file on
//! [`Wal::flush_to_disk`]. An injected crash exits the process via
//! [`std::process::exit`] with code [`CRASH_EXIT_CODE`] *without* flushing
//! the buffer — exactly what power loss does to un-fsynced pages.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{io_err, WalError};
use crate::fsync_dir;
use crate::metrics::WalMetrics;
use crate::record::{decode_frame, FrameError, WalRecord};

/// Process exit code used by injected crash faults; the crash harness
/// asserts on it to distinguish a seeded kill from an organic failure.
pub const CRASH_EXIT_CODE: i32 = 86;

/// When acknowledged bytes are forced to the platter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Every append is flushed and fsynced before it is acknowledged.
    #[default]
    Always,
    /// Appends are staged and fsynced once `n` records accumulate; an ack
    /// is durable only after its group commits.
    Group(u32),
    /// Nothing is fsynced until checkpoint or clean shutdown; an ack
    /// promises only apply-order, not durability.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `group`, `group=N`, or `never`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            "group" => Ok(FsyncPolicy::Group(8)),
            _ => match s.strip_prefix("group=") {
                Some(n) => {
                    let n: u32 = n
                        .parse()
                        .map_err(|_| format!("bad group size in fsync policy '{s}'"))?;
                    if n == 0 {
                        return Err("fsync group size must be >= 1".to_string());
                    }
                    Ok(FsyncPolicy::Group(n))
                }
                None => Err(format!(
                    "unknown fsync policy '{s}' (expected always|group[=N]|never)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Group(n) => write!(f, "group={n}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

/// What an injected fault does to one append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendFault {
    /// No fault: append proceeds normally.
    None,
    /// Flush everything staged so far, write *half* of this frame, sync,
    /// and crash — leaves a torn tail on disk.
    Torn,
    /// Fail the append with an I/O error before touching the file,
    /// modelling `ENOSPC`/short-write at the syscall boundary.
    ShortWrite,
    /// Flush everything including this frame, sync, and crash — a clean
    /// kill right after a durable append.
    Crash,
}

/// Phase of a checkpoint, used to place crash points inside the
/// pack → manifest → truncate protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptPhase {
    /// After the pack snapshot is written, before the manifest swap.
    Pack,
    /// Mid manifest swap: temp file written and synced, rename pending.
    Manifest,
    /// After the manifest swap, before the WAL is truncated.
    Truncate,
}

impl CkptPhase {
    /// Stable lowercase name, matching the fault-plan grammar.
    pub fn name(self) -> &'static str {
        match self {
            CkptPhase::Pack => "pack",
            CkptPhase::Manifest => "manifest",
            CkptPhase::Truncate => "truncate",
        }
    }
}

/// Storage fault hook, implemented by the serve layer over `db-fault`'s
/// injector. Every durability decision point consults it.
pub trait WalFaultHook: Send + Sync {
    /// Consulted before appending the record at `lsn`.
    fn on_append(&self, lsn: u64) -> AppendFault;
    /// Returns `true` if this fsync should *lie* — report success while
    /// leaving the bytes buffered.
    fn on_fsync(&self) -> bool;
    /// Returns `true` if the process should crash at this checkpoint
    /// phase.
    fn on_checkpoint(&self, phase: CkptPhase) -> bool;
}

/// Crash the process with the seeded-kill exit code, flushing nothing.
fn injected_crash() -> ! {
    std::process::exit(CRASH_EXIT_CODE)
}

/// An open write-ahead log file.
pub struct Wal {
    path: PathBuf,
    file: File,
    /// Staged frames not yet written+fsynced — the modelled page cache.
    buffered: Vec<u8>,
    buffered_records: u32,
    policy: FsyncPolicy,
    next_lsn: u64,
    metrics: WalMetrics,
    hook: Option<Arc<dyn WalFaultHook>>,
}

impl fmt::Debug for Wal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("policy", &self.policy)
            .field("next_lsn", &self.next_lsn)
            .field("buffered_records", &self.buffered_records)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens (creating if absent) the log at `path` for appending, with
    /// `next_lsn` as the first LSN to hand out. Callers should have run
    /// [`crate::recover::recover_file`] first so the tail is clean.
    pub fn open_at(
        path: &Path,
        policy: FsyncPolicy,
        next_lsn: u64,
        metrics: WalMetrics,
        hook: Option<Arc<dyn WalFaultHook>>,
    ) -> Result<Wal, WalError> {
        let file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err("open", path, e))?;
        Ok(Wal {
            path: path.to_path_buf(),
            file,
            buffered: Vec::new(),
            buffered_records: 0,
            policy,
            next_lsn,
            metrics,
            hook,
        })
    }

    /// The LSN the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends `rec` and commits it according to the fsync policy.
    /// `rec.lsn` must equal [`Wal::next_lsn`]. Returns the frame size in
    /// bytes on success. On error the file and LSN counter are untouched,
    /// so the write can be rejected without poisoning the log.
    pub fn append(&mut self, rec: &WalRecord) -> Result<u32, WalError> {
        debug_assert_eq!(rec.lsn, self.next_lsn, "caller must use next_lsn()");
        let frame = rec.encode_frame();
        if let Some(hook) = self.hook.clone() {
            match hook.on_append(rec.lsn) {
                AppendFault::None => {}
                AppendFault::ShortWrite => {
                    return Err(io_err(
                        "append",
                        &self.path,
                        std::io::Error::other("injected short write (ENOSPC)"),
                    ));
                }
                AppendFault::Torn => {
                    // Everything staged before this record really commits,
                    // then power dies halfway through this frame.
                    let _ = self.force_flush();
                    let half = &frame[..frame.len() / 2];
                    let _ = self.file.write_all(half);
                    let _ = self.file.sync_all();
                    injected_crash();
                }
                AppendFault::Crash => {
                    // This record commits durably, then the process dies
                    // before the ack can be returned.
                    self.buffered.extend_from_slice(&frame);
                    self.buffered_records += 1;
                    let _ = self.force_flush();
                    injected_crash();
                }
            }
        }
        self.buffered.extend_from_slice(&frame);
        self.buffered_records += 1;
        self.metrics.appended_records.inc();
        self.metrics.appended_bytes.add(frame.len() as u64);
        self.next_lsn = rec.lsn + 1;
        match self.policy {
            FsyncPolicy::Always => self.flush_to_disk()?,
            FsyncPolicy::Group(n) => {
                if self.buffered_records >= n {
                    self.flush_to_disk()?;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(frame.len() as u32)
    }

    /// Writes and fsyncs every staged frame, honouring an injected
    /// `fsynclie` (which leaves the buffer staged and reports success).
    pub fn flush_to_disk(&mut self) -> Result<(), WalError> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        if let Some(hook) = &self.hook {
            if hook.on_fsync() {
                self.metrics.fsync_lies.inc();
                return Ok(());
            }
        }
        self.force_flush()
    }

    /// Writes and fsyncs every staged frame, ignoring fsync-lie faults.
    /// Used on the crash paths where the fault itself decides durability.
    fn force_flush(&mut self) -> Result<(), WalError> {
        if self.buffered.is_empty() {
            return Ok(());
        }
        self.file
            .write_all(&self.buffered)
            .map_err(|e| io_err("append", &self.path, e))?;
        self.file
            .sync_all()
            .map_err(|e| io_err("sync", &self.path, e))?;
        self.metrics.fsyncs.inc();
        self.metrics
            .group_size
            .observe(u64::from(self.buffered_records));
        self.buffered.clear();
        self.buffered_records = 0;
        Ok(())
    }

    /// Rewrites the log keeping only records for which `keep` returns
    /// true, via temp + fsync + rename + dir-fsync. Used after a
    /// checkpoint to drop records the manifest already covers. Returns
    /// the number of records retained. `next_lsn` is unchanged.
    pub fn compact(&mut self, keep: impl Fn(&WalRecord) -> bool) -> Result<u64, WalError> {
        self.force_flush()?;
        let data = fs::read(&self.path).map_err(|e| io_err("read", &self.path, e))?;
        let mut out = Vec::new();
        let mut kept = 0u64;
        let mut offset = 0usize;
        while offset < data.len() {
            match decode_frame(&data[offset..]) {
                Ok((rec, used)) => {
                    if keep(&rec) {
                        out.extend_from_slice(&data[offset..offset + used]);
                        kept += 1;
                    }
                    offset += used;
                }
                Err(FrameError::Truncated { .. }) => break,
                Err(e) => {
                    return Err(WalError::Corrupt {
                        path: self.path.clone(),
                        offset: offset as u64,
                        detail: format!("during compaction: {e:?}"),
                    });
                }
            }
        }
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp).map_err(|e| io_err("create", &tmp, e))?;
            f.write_all(&out).map_err(|e| io_err("write", &tmp, e))?;
            f.sync_all().map_err(|e| io_err("sync", &tmp, e))?;
        }
        fs::rename(&tmp, &self.path).map_err(|e| io_err("rename", &self.path, e))?;
        if let Some(dir) = self.path.parent() {
            fsync_dir(dir).map_err(|e| io_err("sync dir", dir, e))?;
        }
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| io_err("reopen", &self.path, e))?;
        Ok(kept)
    }

    /// Flushes any staged frames and fsyncs. Call before dropping when a
    /// clean shutdown must be durable under `group`/`never` policies.
    pub fn close(&mut self) -> Result<(), WalError> {
        self.force_flush()
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        // Best effort: a clean process exit should not lose staged frames,
        // but errors here have nowhere to go.
        let _ = self.force_flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recover::scan_file;
    use db_metrics::Registry;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dbwal-log-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("mkdir");
        d
    }

    fn rec(lsn: u64) -> WalRecord {
        WalRecord {
            lsn,
            epoch: lsn + 1,
            tenant: "t".to_string(),
            corpus: "delta:g:8".to_string(),
            adds: vec![(lsn as u32, lsn as u32 + 1)],
            dels: vec![],
            tombs: vec![],
        }
    }

    #[test]
    fn fsync_policy_parse_round_trips() {
        for s in ["always", "never", "group=4"] {
            let p = FsyncPolicy::parse(s).expect("parse");
            assert_eq!(p.to_string(), s);
        }
        assert_eq!(
            FsyncPolicy::parse("group").expect("parse"),
            FsyncPolicy::Group(8)
        );
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert!(FsyncPolicy::parse("group=0").is_err());
    }

    #[test]
    fn append_always_is_immediately_durable() {
        let dir = tmpdir("always");
        let path = dir.join("wal.log");
        let m = WalMetrics::register(&Registry::new());
        let mut wal = Wal::open_at(&path, FsyncPolicy::Always, 0, m.clone(), None).expect("open");
        for i in 0..3 {
            wal.append(&rec(i)).expect("append");
        }
        // Durable without close(): scan the file while the Wal is open.
        let scan = scan_file(&path).expect("scan");
        assert_eq!(scan.records.len(), 3);
        assert_eq!(wal.next_lsn(), 3);
        assert_eq!(m.fsyncs.get(), 3);
        assert_eq!(m.appended_records.get(), 3);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_policy_commits_in_batches() {
        let dir = tmpdir("group");
        let path = dir.join("wal.log");
        let m = WalMetrics::register(&Registry::new());
        let mut wal = Wal::open_at(&path, FsyncPolicy::Group(3), 0, m.clone(), None).expect("open");
        wal.append(&rec(0)).expect("append");
        wal.append(&rec(1)).expect("append");
        assert_eq!(scan_file(&path).expect("scan").records.len(), 0);
        wal.append(&rec(2)).expect("append");
        assert_eq!(scan_file(&path).expect("scan").records.len(), 3);
        assert_eq!(m.fsyncs.get(), 1);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn never_policy_flushes_on_close() {
        let dir = tmpdir("never");
        let path = dir.join("wal.log");
        let m = WalMetrics::register(&Registry::new());
        let mut wal = Wal::open_at(&path, FsyncPolicy::Never, 0, m, None).expect("open");
        wal.append(&rec(0)).expect("append");
        assert_eq!(scan_file(&path).expect("scan").records.len(), 0);
        wal.close().expect("close");
        assert_eq!(scan_file(&path).expect("scan").records.len(), 1);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    struct ShortWriteOnce(AtomicU32);
    impl WalFaultHook for ShortWriteOnce {
        fn on_append(&self, lsn: u64) -> AppendFault {
            if lsn == 1 && self.0.fetch_add(1, Ordering::Relaxed) == 0 {
                AppendFault::ShortWrite
            } else {
                AppendFault::None
            }
        }
        fn on_fsync(&self) -> bool {
            false
        }
        fn on_checkpoint(&self, _phase: CkptPhase) -> bool {
            false
        }
    }

    #[test]
    fn short_write_fault_rejects_without_poisoning_log() {
        let dir = tmpdir("shortwrite");
        let path = dir.join("wal.log");
        let m = WalMetrics::register(&Registry::new());
        let hook = Arc::new(ShortWriteOnce(AtomicU32::new(0)));
        let mut wal = Wal::open_at(&path, FsyncPolicy::Always, 0, m, Some(hook)).expect("open");
        wal.append(&rec(0)).expect("append");
        let err = wal.append(&rec(1)).expect_err("short write must fail");
        assert!(matches!(err, WalError::Io { op: "append", .. }), "{err}");
        assert_eq!(wal.next_lsn(), 1, "failed append must not consume the LSN");
        // Retry succeeds and the log stays contiguous.
        wal.append(&rec(1)).expect("retry");
        let scan = scan_file(&path).expect("scan");
        assert_eq!(
            scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![0, 1]
        );
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    struct LyingFsync;
    impl WalFaultHook for LyingFsync {
        fn on_append(&self, _lsn: u64) -> AppendFault {
            AppendFault::None
        }
        fn on_fsync(&self) -> bool {
            true
        }
        fn on_checkpoint(&self, _phase: CkptPhase) -> bool {
            false
        }
    }

    #[test]
    fn fsync_lie_keeps_bytes_buffered() {
        let dir = tmpdir("fsynclie");
        let path = dir.join("wal.log");
        let m = WalMetrics::register(&Registry::new());
        let mut wal = Wal::open_at(
            &path,
            FsyncPolicy::Always,
            0,
            m.clone(),
            Some(Arc::new(LyingFsync)),
        )
        .expect("open");
        wal.append(&rec(0)).expect("append");
        assert_eq!(m.fsync_lies.get(), 1);
        assert_eq!(m.fsyncs.get(), 0);
        // Nothing reached the file: this is what power loss would expose.
        assert_eq!(scan_file(&path).expect("scan").records.len(), 0);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_keeps_matching_suffix() {
        let dir = tmpdir("compact");
        let path = dir.join("wal.log");
        let m = WalMetrics::register(&Registry::new());
        let mut wal = Wal::open_at(&path, FsyncPolicy::Always, 0, m, None).expect("open");
        for i in 0..5 {
            wal.append(&rec(i)).expect("append");
        }
        let kept = wal.compact(|r| r.lsn >= 3).expect("compact");
        assert_eq!(kept, 2);
        let scan = scan_file(&path).expect("scan");
        assert_eq!(
            scan.records.iter().map(|r| r.lsn).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(wal.next_lsn(), 5, "compaction must not rewind the LSN");
        // Appending after compaction still works on the reopened handle.
        wal.append(&rec(5)).expect("append after compact");
        assert_eq!(scan_file(&path).expect("scan").records.len(), 3);
        drop(wal);
        let _ = fs::remove_dir_all(&dir);
    }
}
