//! Multi-source reachability oracle built from parallel DFS runs.
//!
//! Many query workloads (distributed querying à la aDFS, pattern
//! prefiltering) reduce to "is `t` reachable from hub `s`?". One
//! parallel DFS per hub yields a bitset row; queries are O(1). This is
//! the reachability face of Table 2's `visited` output — the one output
//! *every* method in the paper produces.

use crate::forest::DfsEngine;
use db_graph::{CsrGraph, GraphStore, VertexId};

/// Reachability oracle over a fixed set of source hubs.
#[derive(Debug)]
pub struct ReachOracle {
    hubs: Vec<VertexId>,
    /// Row per hub: packed visited bits.
    rows: Vec<Vec<u64>>,
    n: usize,
}

impl ReachOracle {
    /// Builds the oracle by running one parallel DFS per hub.
    pub fn build<E: DfsEngine>(g: &CsrGraph, hubs: &[VertexId], engine: &E) -> Self {
        let n = g.num_vertices();
        let words = n.div_ceil(64);
        let mut rows = Vec::with_capacity(hubs.len());
        for &h in hubs {
            assert!((h as usize) < n, "hub {h} out of range");
            let (visited, _) = engine.traverse(g, h);
            let mut row = vec![0u64; words];
            for (v, &b) in visited.iter().enumerate() {
                if b {
                    row[v / 64] |= 1 << (v % 64);
                }
            }
            rows.push(row);
        }
        Self {
            hubs: hubs.to_vec(),
            rows,
            n,
        }
    }

    /// [`ReachOracle::build`] over any [`GraphStore`]-backed graph — a
    /// packed, mmap-loaded store serves oracle builds without copying
    /// its CSR into RAM first.
    pub fn build_store<E: DfsEngine>(
        store: &dyn GraphStore,
        hubs: &[VertexId],
        engine: &E,
    ) -> Self {
        Self::build(store.graph(), hubs, engine)
    }

    /// [`ReachOracle::build`] on a pinned epoch of a dynamic
    /// ([`db_delta::DeltaGraph`]) graph. The pin's snapshot isolation
    /// is what makes a *multi-traversal* build sound: all hub rows see
    /// the same epoch even if writers publish mid-build, and the
    /// oracle's answers stay valid for `pin.epoch()` forever after.
    pub fn build_pinned<E: DfsEngine>(
        pin: &db_delta::EpochPin,
        hubs: &[VertexId],
        engine: &E,
    ) -> Self {
        Self::build(pin.graph(), hubs, engine)
    }

    /// The hubs this oracle covers.
    pub fn hubs(&self) -> &[VertexId] {
        &self.hubs
    }

    /// Whether `target` is reachable from `hubs()[hub_idx]`.
    pub fn reachable(&self, hub_idx: usize, target: VertexId) -> bool {
        assert!((target as usize) < self.n, "target out of range");
        let t = target as usize;
        (self.rows[hub_idx][t / 64] >> (t % 64)) & 1 == 1
    }

    /// Number of vertices reachable from `hubs()[hub_idx]`.
    pub fn coverage(&self, hub_idx: usize) -> usize {
        self.rows[hub_idx]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Hubs that can reach `target`.
    pub fn sources_reaching(&self, target: VertexId) -> Vec<VertexId> {
        (0..self.hubs.len())
            .filter(|&i| self.reachable(i, target))
            .map(|i| self.hubs[i])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::NativeDfs;
    use db_core::native::NativeConfig;
    use db_graph::{traversal::reachable_set, GraphBuilder};

    fn engine() -> NativeDfs {
        NativeDfs(NativeConfig::default())
    }

    #[test]
    fn oracle_matches_reference_reachability() {
        let g = GraphBuilder::directed(8)
            .edges([(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (1, 4)])
            .build();
        let hubs = [0u32, 4, 7];
        let oracle = ReachOracle::build(&g, &hubs, &engine());
        for (i, &h) in hubs.iter().enumerate() {
            let truth = reachable_set(&g, h);
            for v in 0..8u32 {
                assert_eq!(
                    oracle.reachable(i, v),
                    truth[v as usize],
                    "hub {h} target {v}"
                );
            }
            assert_eq!(oracle.coverage(i), truth.iter().filter(|&&b| b).count());
        }
    }

    #[test]
    fn build_store_matches_build() {
        let g = GraphBuilder::directed(8)
            .edges([(0, 1), (1, 2), (2, 3), (4, 5), (5, 6), (1, 4)])
            .build();
        let hubs = [0u32, 4];
        let direct = ReachOracle::build(&g, &hubs, &engine());
        let stored = ReachOracle::build_store(&g as &dyn GraphStore, &hubs, &engine());
        for i in 0..hubs.len() {
            for v in 0..8u32 {
                assert_eq!(direct.reachable(i, v), stored.reachable(i, v));
            }
        }
    }

    #[test]
    fn build_pinned_freezes_the_oracle_at_its_epoch() {
        let g = GraphBuilder::directed(8)
            .edges([(0, 1), (1, 2), (4, 5)])
            .build();
        let dg = std::sync::Arc::new(db_delta::DeltaGraph::from_csr(g));
        let pin = dg.pin();
        let oracle = ReachOracle::build_pinned(&pin, &[0], &engine());
        assert!(oracle.reachable(0, 2));
        assert!(!oracle.reachable(0, 5));

        // Publishing a bridge after the pin changes nothing for the
        // pinned oracle; a fresh pin sees the new epoch.
        dg.add_edges(&[(2, 4)]).unwrap();
        let again = ReachOracle::build_pinned(&pin, &[0], &engine());
        assert!(!again.reachable(0, 5), "pinned epoch must not move");
        let fresh = ReachOracle::build_pinned(&dg.pin(), &[0], &engine());
        assert!(fresh.reachable(0, 5));
    }

    #[test]
    fn sources_reaching_target() {
        let g = GraphBuilder::directed(5)
            .edges([(0, 2), (1, 2), (3, 4)])
            .build();
        let oracle = ReachOracle::build(&g, &[0, 1, 3], &engine());
        assert_eq!(oracle.sources_reaching(2), vec![0, 1]);
        assert_eq!(oracle.sources_reaching(4), vec![3]);
        assert!(oracle.sources_reaching(0).contains(&0)); // self
    }

    #[test]
    fn bitset_boundary_at_word_edges() {
        // 130 vertices: exercise bits 63/64/127/128.
        let n = 130u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let oracle = ReachOracle::build(&g, &[0], &engine());
        for v in [63u32, 64, 127, 128, 129] {
            assert!(oracle.reachable(0, v));
        }
        assert_eq!(oracle.coverage(0), n as usize);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_hub() {
        let g = GraphBuilder::undirected(2).edges([(0, 1)]).build();
        ReachOracle::build(&g, &[9], &engine());
    }
}
