//! Articulation points and bridges (Hopcroft–Tarjan low-links) — the
//! structural-analysis application family of §1 (biconnectivity is the
//! example the paper's "DFS-avoidance" citation \[27\] reformulates;
//! this is the DFS-based original).

use db_graph::CsrGraph;

/// Cut structure of an undirected graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutResult {
    /// `true` for vertices whose removal disconnects their component.
    pub articulation: Vec<bool>,
    /// Bridge edges `(u, v)` with `u < v`, sorted.
    pub bridges: Vec<(u32, u32)>,
}

/// Computes articulation points and bridges via iterative DFS low-links.
///
/// # Panics
///
/// Panics if `g` is directed.
pub fn articulation_points(g: &CsrGraph) -> CutResult {
    assert!(
        !g.is_directed(),
        "articulation points are defined on undirected graphs"
    );
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut disc = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut parent = vec![UNSET; n];
    let mut articulation = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0u32;
    // (vertex, next offset, tree children count)
    let mut stack: Vec<(u32, u32, u32)> = Vec::new();

    for root in 0..n as u32 {
        if disc[root as usize] != UNSET {
            continue;
        }
        disc[root as usize] = timer;
        low[root as usize] = timer;
        timer += 1;
        stack.push((root, 0, 0));

        while let Some(&(u, off, _)) = stack.last() {
            let row = g.neighbors(u);
            if (off as usize) < row.len() {
                stack.last_mut().expect("nonempty").1 = off + 1;
                let v = row[off as usize];
                if v == u {
                    continue; // self loop
                }
                if disc[v as usize] == UNSET {
                    parent[v as usize] = u;
                    stack.last_mut().expect("nonempty").2 += 1;
                    disc[v as usize] = timer;
                    low[v as usize] = timer;
                    timer += 1;
                    stack.push((v, 0, 0));
                } else if v != parent[u as usize] {
                    // Back edge (parallel edges to the parent are merged
                    // by the builder, so skipping one parent arc is safe).
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            } else {
                let (_, _, children) = stack.pop().expect("nonempty");
                if let Some(&mut (p, _, _)) = stack.last_mut() {
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                    if parent[u as usize] == p {
                        if low[u as usize] >= disc[p as usize] && parent[p as usize] != UNSET {
                            articulation[p as usize] = true;
                        }
                        if low[u as usize] > disc[p as usize] {
                            bridges.push((p.min(u), p.max(u)));
                        }
                    }
                } else {
                    // u is a DFS root: articulation iff >= 2 tree children.
                    articulation[u as usize] = children >= 2;
                }
            }
        }
    }
    bridges.sort_unstable();
    bridges.dedup();
    CutResult {
        articulation,
        bridges,
    }
}

/// Brute-force verifier for small graphs: `v` is an articulation point
/// iff removing it increases the component count of its component.
pub fn verify_articulation(g: &CsrGraph, result: &CutResult) -> Result<(), String> {
    let n = g.num_vertices();
    let (comp, _) = db_graph::traversal::connected_components(g);
    for v in 0..n as u32 {
        // Count reachable pairs within v's component before/after removal.
        let members: Vec<u32> = (0..n as u32)
            .filter(|&u| comp[u as usize] == comp[v as usize] && u != v)
            .collect();
        if members.is_empty() {
            if result.articulation[v as usize] {
                return Err(format!("isolated vertex {v} flagged as articulation"));
            }
            continue;
        }
        // BFS within the component avoiding v.
        let start = members[0];
        let mut seen = vec![false; n];
        seen[start as usize] = true;
        let mut queue = vec![start];
        while let Some(u) = queue.pop() {
            for &w in g.neighbors(u) {
                if w != v && !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push(w);
                }
            }
        }
        let disconnects = members.iter().any(|&u| !seen[u as usize]);
        if disconnects != result.articulation[v as usize] {
            return Err(format!(
                "vertex {v}: computed articulation={}, brute force={disconnects}",
                result.articulation[v as usize]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::GraphBuilder;

    #[test]
    fn path_interior_vertices_are_cuts() {
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let r = articulation_points(&g);
        assert_eq!(r.articulation, vec![false, true, true, false]);
        assert_eq!(r.bridges, vec![(0, 1), (1, 2), (2, 3)]);
        verify_articulation(&g, &r).unwrap();
    }

    #[test]
    fn cycle_has_no_cuts() {
        let g = GraphBuilder::undirected(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])
            .build();
        let r = articulation_points(&g);
        assert!(r.articulation.iter().all(|&b| !b));
        assert!(r.bridges.is_empty());
        verify_articulation(&g, &r).unwrap();
    }

    #[test]
    fn barbell_center_is_a_cut() {
        // Two triangles joined by a bridge 2-3.
        let g = GraphBuilder::undirected(6)
            .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .build();
        let r = articulation_points(&g);
        assert!(r.articulation[2] && r.articulation[3]);
        assert_eq!(r.bridges, vec![(2, 3)]);
        verify_articulation(&g, &r).unwrap();
    }

    #[test]
    fn star_center_is_a_cut() {
        let g = GraphBuilder::undirected(5)
            .edges([(0, 1), (0, 2), (0, 3), (0, 4)])
            .build();
        let r = articulation_points(&g);
        assert!(r.articulation[0]);
        assert!(!r.articulation[1]);
        assert_eq!(r.bridges.len(), 4);
        verify_articulation(&g, &r).unwrap();
    }

    #[test]
    fn root_with_two_children_rule() {
        // Root 0 of the DFS with two independent branches is a cut point.
        let g = GraphBuilder::undirected(3).edges([(0, 1), (0, 2)]).build();
        let r = articulation_points(&g);
        assert!(r.articulation[0]);
        verify_articulation(&g, &r).unwrap();
    }

    #[test]
    fn self_loops_ignored() {
        let g = GraphBuilder::undirected(3)
            .edges([(0, 0), (0, 1), (1, 2)])
            .build();
        let r = articulation_points(&g);
        assert!(r.articulation[1]);
        verify_articulation(&g, &r).unwrap();
    }

    #[test]
    fn deep_path_no_stack_overflow() {
        let n = 200_000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let r = articulation_points(&g);
        assert_eq!(r.bridges.len(), n as usize - 1);
    }
}
