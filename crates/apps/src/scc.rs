//! Strongly connected components — Tarjan's algorithm (the original DFS
//! application, [Tarjan 1972], cited by the paper's §1).
//!
//! Iterative single-pass Tarjan with explicit low-link maintenance; no
//! recursion, so million-vertex chains are fine.

use db_graph::CsrGraph;

/// SCC labeling: `comp[v]` is the component id of `v`; ids are assigned
/// in reverse topological order of the condensation (Tarjan property).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccResult {
    /// Component id per vertex.
    pub comp: Vec<u32>,
    /// Number of components.
    pub count: u32,
}

impl SccResult {
    /// Sizes of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.count as usize];
        for &c in &self.comp {
            s[c as usize] += 1;
        }
        s
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }
}

/// Computes strongly connected components of a directed graph.
///
/// # Panics
///
/// Panics if `g` is undirected (use connected components instead).
pub fn scc(g: &CsrGraph) -> SccResult {
    assert!(g.is_directed(), "SCC requires a directed graph");
    let n = g.num_vertices();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n]; // discovery index
    let mut low = vec![0u32; n];
    let mut comp = vec![UNSET; n];
    let mut on_stack = vec![false; n];
    let mut tarjan_stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;
    // DFS stack of (vertex, next neighbor offset).
    let mut stack: Vec<(u32, u32)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        tarjan_stack.push(root);
        on_stack[root as usize] = true;
        stack.push((root, 0));

        while let Some(&(u, off)) = stack.last() {
            let row = g.neighbors(u);
            if (off as usize) < row.len() {
                stack.last_mut().expect("nonempty").1 = off + 1;
                let v = row[off as usize];
                if index[v as usize] == UNSET {
                    index[v as usize] = next_index;
                    low[v as usize] = next_index;
                    next_index += 1;
                    tarjan_stack.push(v);
                    on_stack[v as usize] = true;
                    stack.push((v, 0));
                } else if on_stack[v as usize] {
                    low[u as usize] = low[u as usize].min(index[v as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p as usize] = low[p as usize].min(low[u as usize]);
                }
                if low[u as usize] == index[u as usize] {
                    // u is an SCC root: pop its component.
                    loop {
                        let w = tarjan_stack.pop().expect("component member");
                        on_stack[w as usize] = false;
                        comp[w as usize] = count;
                        if w == u {
                            break;
                        }
                    }
                    count += 1;
                }
            }
        }
    }
    SccResult { comp, count }
}

/// Verifies an SCC labeling against first principles on small graphs:
/// `u` and `v` share a component iff each reaches the other.
pub fn verify_scc(g: &CsrGraph, result: &SccResult) -> Result<(), String> {
    let n = g.num_vertices();
    let reach: Vec<Vec<bool>> = (0..n as u32)
        .map(|v| db_graph::traversal::reachable_set(g, v))
        .collect();
    #[allow(clippy::needless_range_loop)] // symmetric double index is clearest
    for u in 0..n {
        for v in 0..n {
            let same = result.comp[u] == result.comp[v];
            let mutual = reach[u][v] && reach[v][u];
            if same != mutual {
                return Err(format!(
                    "vertices {u},{v}: same component = {same}, mutually reachable = {mutual}"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::GraphBuilder;

    #[test]
    fn two_cycles_and_a_bridge() {
        // (0 1 2) -> (3 4): two SCCs of sizes 3 and 2, plus isolated 5.
        let g = GraphBuilder::directed(6)
            .edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)])
            .build();
        let r = scc(&g);
        assert_eq!(r.count, 3);
        assert_eq!(r.comp[0], r.comp[1]);
        assert_eq!(r.comp[1], r.comp[2]);
        assert_eq!(r.comp[3], r.comp[4]);
        assert_ne!(r.comp[0], r.comp[3]);
        verify_scc(&g, &r).unwrap();
        let mut sizes = r.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(r.largest(), 3);
    }

    #[test]
    fn dag_has_singleton_components() {
        let g = GraphBuilder::directed(5)
            .edges([(0, 1), (1, 2), (0, 3), (3, 4)])
            .build();
        let r = scc(&g);
        assert_eq!(r.count, 5);
        verify_scc(&g, &r).unwrap();
    }

    #[test]
    fn tarjan_ids_are_reverse_topological() {
        // comp(u) >= comp(v) for every arc u->v in the condensation.
        let g = GraphBuilder::directed(6)
            .edges([
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 3),
                (3, 2),
                (3, 4),
                (4, 5),
                (5, 4),
            ])
            .build();
        let r = scc(&g);
        for (u, v) in g.arcs() {
            assert!(
                r.comp[u as usize] >= r.comp[v as usize],
                "arc {u}->{v} violates reverse-topological component ids"
            );
        }
    }

    #[test]
    fn giant_cycle() {
        let n = 100_000u32;
        let g = GraphBuilder::directed(n)
            .edges((0..n).map(|i| (i, (i + 1) % n)))
            .build();
        let r = scc(&g);
        assert_eq!(r.count, 1);
        assert_eq!(r.largest(), n as usize);
    }

    #[test]
    fn deep_chain_no_stack_overflow() {
        let n = 200_000u32;
        let g = GraphBuilder::directed(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let r = scc(&g);
        assert_eq!(r.count, n);
    }

    #[test]
    #[should_panic(expected = "directed")]
    fn rejects_undirected() {
        scc(&GraphBuilder::undirected(2).edges([(0, 1)]).build());
    }
}
