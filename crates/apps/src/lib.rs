//! # db-apps — DFS applications
//!
//! §1 of the paper motivates an efficient parallel DFS primitive with
//! its downstream uses: "structural analysis (e.g., strongly connected
//! components), ordering problems (e.g., topological sorting), and
//! pattern recognition". This crate implements those applications on
//! top of the workspace's DFS engines, demonstrating the API a consumer
//! would actually program against:
//!
//! * [`topo`] — topological sorting of DAGs and cycle detection in
//!   directed graphs (DFS finish-time based, Tarjan-style coloring).
//! * [`scc`] — strongly connected components (iterative Tarjan), the
//!   classic DFS application the paper's §1 cites.
//! * [`articulation`] — articulation points and bridges of undirected
//!   graphs via DFS low-links (Hopcroft–Tarjan).
//! * [`forest`] — spanning forests of entire graphs via repeated
//!   parallel DFS (the DiggerBees engines traverse one component per
//!   root; the forest builder restarts them across components), plus
//!   connected-component labeling derived from the forest.
//! * [`reach`] — multi-source reachability oracles built from parallel
//!   DFS `visited` arrays.
//!
//! Serial DFS-tree algorithms (Tarjan/Hopcroft-style) operate on the
//! lexicographic DFS; parallel applications consume the *unordered* DFS
//! output (Table 2's `visited` + `parent` semantics), showing what
//! unordered parallel DFS is and is not sufficient for.

#![warn(missing_docs)]

pub mod articulation;
pub mod forest;
pub mod reach;
pub mod scc;
pub mod topo;
