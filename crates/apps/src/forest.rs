//! Spanning forests and component labeling via *parallel* DFS.
//!
//! The DiggerBees engines traverse one component per root; covering a
//! whole graph means restarting from an unvisited vertex until none
//! remain — exactly how DFS-based forest construction composes with the
//! paper's primitive. Works with either engine through the
//! [`DfsEngine`] adapter.

use db_core::native::{NativeConfig, NativeEngine};
use db_core::{run_sim, DiggerBeesConfig};
use db_gpu_sim::MachineModel;
use db_graph::{CsrGraph, VertexId, NO_PARENT};

/// Anything that can run a single-root parallel DFS.
pub trait DfsEngine {
    /// Traverses from `root`; returns `(visited, parent)`.
    fn traverse(&self, g: &CsrGraph, root: VertexId) -> (Vec<bool>, Vec<u32>);
}

/// The native multithreaded engine.
#[derive(Debug)]
pub struct NativeDfs(pub NativeConfig);

impl DfsEngine for NativeDfs {
    fn traverse(&self, g: &CsrGraph, root: VertexId) -> (Vec<bool>, Vec<u32>) {
        let out = NativeEngine::new(self.0).run(g, root);
        (out.visited, out.parent)
    }
}

/// The simulated-GPU engine.
#[derive(Debug)]
pub struct SimDfs {
    /// Algorithm configuration.
    pub cfg: DiggerBeesConfig,
    /// Machine model to simulate on.
    pub machine: MachineModel,
}

impl DfsEngine for SimDfs {
    fn traverse(&self, g: &CsrGraph, root: VertexId) -> (Vec<bool>, Vec<u32>) {
        let out = run_sim(g, root, &self.cfg, &self.machine);
        (out.visited, out.parent)
    }
}

/// A spanning forest of the whole graph.
#[derive(Debug, Clone)]
pub struct Forest {
    /// Parent per vertex ([`NO_PARENT`] for roots).
    pub parent: Vec<u32>,
    /// Component id per vertex (dense, 0-based).
    pub comp: Vec<u32>,
    /// The DFS root of each component.
    pub roots: Vec<u32>,
}

impl Forest {
    /// Number of components (trees in the forest).
    pub fn num_components(&self) -> usize {
        self.roots.len()
    }
}

/// Builds a spanning forest by repeated parallel DFS.
pub fn spanning_forest<E: DfsEngine>(g: &CsrGraph, engine: &E) -> Forest {
    let n = g.num_vertices();
    let mut parent = vec![NO_PARENT; n];
    let mut comp = vec![u32::MAX; n];
    let mut roots = Vec::new();
    let mut covered = vec![false; n];
    for v in 0..n as u32 {
        if covered[v as usize] {
            continue;
        }
        let cid = roots.len() as u32;
        roots.push(v);
        let (visited, par) = engine.traverse(g, v);
        for u in 0..n {
            if visited[u] {
                debug_assert!(!covered[u], "components must not overlap");
                covered[u] = true;
                comp[u] = cid;
                parent[u] = par[u];
            }
        }
    }
    Forest {
        parent,
        comp,
        roots,
    }
}

/// Verifies a forest: component labels match the reference connected
/// components (up to renaming) and every tree is a valid spanning tree.
pub fn verify_forest(g: &CsrGraph, f: &Forest) -> Result<(), String> {
    assert!(
        !g.is_directed(),
        "forest verification is for undirected graphs"
    );
    let (want, count) = db_graph::traversal::connected_components(g);
    if f.num_components() != count as usize {
        return Err(format!(
            "expected {count} components, got {}",
            f.num_components()
        ));
    }
    // Same partition up to renaming.
    let n = g.num_vertices();
    let mut rename = vec![u32::MAX; f.num_components()];
    for (v, &w) in want.iter().enumerate().take(n) {
        let c = f.comp[v] as usize;
        if rename[c] == u32::MAX {
            rename[c] = w;
        } else if rename[c] != w {
            return Err(format!("component mismatch at vertex {v}"));
        }
    }
    // Every tree valid (restrict the parent array to the tree: the
    // validator requires unvisited vertices to carry no parent).
    for (cid, &root) in f.roots.iter().enumerate() {
        let visited: Vec<bool> = (0..n).map(|v| f.comp[v] == cid as u32).collect();
        let tree_parent: Vec<u32> = (0..n)
            .map(|v| if visited[v] { f.parent[v] } else { NO_PARENT })
            .collect();
        db_graph::validate::check_spanning_tree(g, root, &visited, &tree_parent)
            .map_err(|e| format!("tree {cid}: {e}"))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::GraphBuilder;

    fn engine() -> NativeDfs {
        NativeDfs(NativeConfig {
            algo: DiggerBeesConfig {
                blocks: 2,
                warps_per_block: 2,
                hot_size: 16,
                hot_cutoff: 4,
                cold_cutoff: 8,
                flush_batch: 8,
                ..Default::default()
            },
        })
    }

    #[test]
    fn forest_covers_three_components() {
        let mut b = GraphBuilder::undirected(10);
        b.edge(0, 1);
        b.edge(1, 2);
        b.edge(4, 5);
        // 3, 6..9 isolated
        let g = b.build();
        let f = spanning_forest(&g, &engine());
        assert_eq!(f.num_components(), 7);
        verify_forest(&g, &f).unwrap();
    }

    #[test]
    fn forest_with_sim_engine() {
        let mut b = GraphBuilder::undirected(60);
        for i in 0..29 {
            b.edge(i, i + 1);
        }
        for i in 30..59 {
            b.edge(i, i + 1);
        }
        let g = b.build();
        let sim = SimDfs {
            cfg: DiggerBeesConfig {
                blocks: 2,
                warps_per_block: 2,
                hot_size: 16,
                hot_cutoff: 4,
                cold_cutoff: 8,
                flush_batch: 8,
                ..Default::default()
            },
            machine: MachineModel::h100(),
        };
        let f = spanning_forest(&g, &sim);
        assert_eq!(f.num_components(), 2);
        verify_forest(&g, &f).unwrap();
    }

    #[test]
    fn single_component() {
        let g = GraphBuilder::undirected(50)
            .edges((0..49).map(|i| (i, i + 1)))
            .build();
        let f = spanning_forest(&g, &engine());
        assert_eq!(f.num_components(), 1);
        assert_eq!(f.roots, vec![0]);
        verify_forest(&g, &f).unwrap();
    }

    #[test]
    fn empty_graph_forest() {
        let g = GraphBuilder::undirected(4).build();
        let f = spanning_forest(&g, &engine());
        assert_eq!(f.num_components(), 4);
        verify_forest(&g, &f).unwrap();
    }
}
