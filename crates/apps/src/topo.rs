//! Topological sorting and directed-cycle detection — the "ordering
//! problems" application of §1 (the paper cites Kahn's algorithm; the
//! DFS formulation uses reverse finish order).

use db_graph::CsrGraph;

/// Result of a directed traversal ordering attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoResult {
    /// A valid topological order (every arc goes forward in it).
    Order(Vec<u32>),
    /// The graph contains a directed cycle through this vertex.
    Cycle(u32),
}

/// DFS-based topological sort over the whole graph (all roots).
///
/// Iterative three-color DFS: white = unvisited, gray = on the current
/// DFS path, black = finished. A gray→gray arc is a back edge, i.e. a
/// directed cycle. Vertices are emitted in reverse finish order.
///
/// # Panics
///
/// Panics if `g` is undirected (topological order is a directed notion).
pub fn topo_sort(g: &CsrGraph) -> TopoResult {
    assert!(
        g.is_directed(),
        "topological sort requires a directed graph"
    );
    let n = g.num_vertices();
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let mut color = vec![WHITE; n];
    let mut finish_rev: Vec<u32> = Vec::with_capacity(n);
    let mut stack: Vec<(u32, u32)> = Vec::new();

    for root in 0..n as u32 {
        if color[root as usize] != WHITE {
            continue;
        }
        color[root as usize] = GRAY;
        stack.push((root, 0));
        while let Some(&mut (u, ref mut next)) = stack.last_mut() {
            let row = g.neighbors(u);
            if (*next as usize) < row.len() {
                let v = row[*next as usize];
                *next += 1;
                match color[v as usize] {
                    WHITE => {
                        color[v as usize] = GRAY;
                        stack.push((v, 0));
                    }
                    GRAY => return TopoResult::Cycle(v),
                    _ => {}
                }
            } else {
                color[u as usize] = BLACK;
                finish_rev.push(u);
                stack.pop();
            }
        }
    }
    finish_rev.reverse();
    TopoResult::Order(finish_rev)
}

/// Whether the directed graph is acyclic.
pub fn is_dag(g: &CsrGraph) -> bool {
    matches!(topo_sort(g), TopoResult::Order(_))
}

/// Checks that `order` is a valid topological order of `g`: a
/// permutation of all vertices where every arc points forward.
pub fn verify_topo_order(g: &CsrGraph, order: &[u32]) -> Result<(), String> {
    let n = g.num_vertices();
    if order.len() != n {
        return Err(format!("order has {} entries, graph has {n}", order.len()));
    }
    let mut pos = vec![usize::MAX; n];
    for (i, &v) in order.iter().enumerate() {
        if (v as usize) >= n || pos[v as usize] != usize::MAX {
            return Err(format!("order is not a permutation (vertex {v})"));
        }
        pos[v as usize] = i;
    }
    for (u, v) in g.arcs() {
        if pos[u as usize] >= pos[v as usize] {
            return Err(format!("arc {u}->{v} points backward in the order"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::GraphBuilder;

    #[test]
    fn sorts_a_diamond_dag() {
        let g = GraphBuilder::directed(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build();
        let TopoResult::Order(order) = topo_sort(&g) else {
            panic!("diamond is acyclic")
        };
        verify_topo_order(&g, &order).unwrap();
        assert!(is_dag(&g));
    }

    #[test]
    fn detects_cycles() {
        let g = GraphBuilder::directed(3)
            .edges([(0, 1), (1, 2), (2, 0)])
            .build();
        assert!(matches!(topo_sort(&g), TopoResult::Cycle(_)));
        assert!(!is_dag(&g));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = GraphBuilder::directed(2).edges([(0, 0), (0, 1)]).build();
        assert_eq!(topo_sort(&g), TopoResult::Cycle(0));
    }

    #[test]
    fn disconnected_dag_covers_all_vertices() {
        let g = GraphBuilder::directed(6).edges([(0, 1), (2, 3)]).build();
        let TopoResult::Order(order) = topo_sort(&g) else {
            panic!()
        };
        assert_eq!(order.len(), 6);
        verify_topo_order(&g, &order).unwrap();
    }

    #[test]
    fn verifier_rejects_bad_orders() {
        let g = GraphBuilder::directed(3).edges([(0, 1), (1, 2)]).build();
        assert!(verify_topo_order(&g, &[2, 1, 0]).is_err());
        assert!(verify_topo_order(&g, &[0, 1]).is_err());
        assert!(verify_topo_order(&g, &[0, 0, 1]).is_err());
        verify_topo_order(&g, &[0, 1, 2]).unwrap();
    }

    #[test]
    #[should_panic(expected = "directed")]
    fn rejects_undirected_input() {
        let g = GraphBuilder::undirected(2).edges([(0, 1)]).build();
        topo_sort(&g);
    }

    #[test]
    fn deep_dag_does_not_overflow_stack() {
        // 200k-vertex chain: the iterative implementation must not recurse.
        let n = 200_000u32;
        let g = GraphBuilder::directed(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let TopoResult::Order(order) = topo_sort(&g) else {
            panic!()
        };
        assert_eq!(order[0], 0);
        assert_eq!(order[n as usize - 1], n - 1);
    }
}
