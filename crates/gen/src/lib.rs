//! # db-gen — synthetic workload generators
//!
//! The paper evaluates on 234 SuiteSparse graphs from three collections
//! (Table 3): **DIMACS10** (clustering, numerical simulation, road
//! networks), **SNAP** (social, citation, web), and **LAW** (web crawls).
//! Those graphs are not available offline, so this crate generates seeded
//! synthetic graphs with the same *structural* character — the property
//! that actually drives the paper's results (traversal depth, degree
//! skew, branching factor):
//!
//! * [`grid`] — road-network analogues: sparse, near-planar, enormous
//!   diameter (euro_osm needs 17,346 BFS levels in the paper).
//! * [`mesh`] — Delaunay-like triangulated meshes and the bubble meshes
//!   of `hugebubbles` (moderate degree, large diameter).
//! * [`rgg`] — random geometric graphs (DIMACS10's `rgg_n_2_*` series).
//! * [`rmat`] — Kronecker/R-MAT power-law graphs: social networks and web
//!   crawls (SNAP's `wiki`, LAW's `ljournal`/`hollywood`): tiny diameter,
//!   heavy-tailed degrees.
//! * [`pref`] — preferential-attachment graphs (SNAP's `amazon`,
//!   `google`, DIMACS10's `citation`).
//! * [`social`] — a *row-streaming* social-network generator whose
//!   adjacency rows are pure functions of `(seed, vertex)`: the feed
//!   for `db-store` pack writers at 50M-arc scale, where materializing
//!   an edge list first is not an option.
//! * [`suite`] — the registry mapping the paper's Table 4 representative
//!   graphs (and the broader three-family benchmark sweep) to scaled
//!   analogues, used by every figure harness in `db-bench`.
//! * [`mutation`] — seeded streams of *commuting* edge-mutation batches
//!   for epoch-versioned (`db-delta`) corpora: read/write-mix loads
//!   stay digest-deterministic because any interleaving of the batches
//!   reaches the same final graph.
//!
//! All generators take an explicit `seed` and are fully deterministic.

#![warn(missing_docs)]

pub mod grid;
pub mod mesh;
pub mod mutation;
pub mod pref;
pub mod rgg;
pub mod rmat;
pub mod social;
pub mod suite;

pub use mutation::{MutationBatch, MutationStream};
pub use social::{SocialGraph, SocialParams};
pub use suite::{GraphFamily, GraphSpec, Suite};
