//! Streaming social-network generator for pack-scale graphs.
//!
//! The other generators in this crate materialize an edge list and sort
//! it through [`db_graph::GraphBuilder`] — fine up to a few million
//! edges, hopeless for the 50M-arc packs `db-store` is built for. This
//! generator is **row-streaming**: every vertex's adjacency row is a
//! pure function of `(seed, vertex)`, produced sorted and deduplicated,
//! so a caller can feed rows straight into a
//! `PackWriter` one at a time and never hold more than one row in
//! memory. Re-deriving any row later (for spot checks, or to rebuild
//! the whole graph in RAM for a differential test) gives identical
//! bytes.
//!
//! Structure, after the SNAP social graphs the paper evaluates:
//!
//! * **Pareto out-degrees** (`alpha = 2`, `x_m = avg/2`): heavy-tailed
//!   degree skew, mean `avg_degree`, occasional hubs thousands wide —
//!   exactly the shape the pack layout's hub segregation targets.
//! * **Popularity-biased targets**: an arc points at
//!   `floor(n · r^beta)` with `beta = 2`, so low-numbered vertices are
//!   quadratically more popular — the social "celebrity" core.
//! * **Locality arcs**: a fraction of each row links near the source
//!   (friend-of-friend clustering), which keeps deltas small and gives
//!   the varint encoder something to compress.
//!
//! Graphs are **directed** (out-adjacency rows): symmetrizing would
//! need the transpose and break one-pass streaming.

use db_graph::CsrGraph;

/// Tunables for [`SocialGraph`]. `Default` matches the paper's social
/// analogues: mean degree 10, Pareto tail `alpha = 2`, popularity bias
/// `beta = 2`, 20% local arcs.
#[derive(Debug, Clone, Copy)]
pub struct SocialParams {
    /// Mean out-degree (Pareto mean; actual rows dedup slightly lower).
    pub avg_degree: u32,
    /// Pareto tail index; smaller = heavier hub tail. Must be > 1.
    pub alpha: f64,
    /// Popularity exponent: targets are `floor(n · r^beta)`.
    pub beta: f64,
    /// Fraction of arcs drawn from the near-window instead of the
    /// popularity distribution, in `[0, 1]`.
    pub locality: f64,
    /// Hard cap on a single row's sampled degree (before dedup).
    pub max_degree: u32,
}

impl Default for SocialParams {
    fn default() -> Self {
        Self {
            avg_degree: 10,
            alpha: 2.0,
            beta: 2.0,
            locality: 0.2,
            max_degree: 1 << 16,
        }
    }
}

/// A deterministic, row-streamable social graph: `n` vertices whose
/// out-rows are pure functions of `(seed, vertex)`.
#[derive(Debug, Clone, Copy)]
pub struct SocialGraph {
    n: u32,
    seed: u64,
    params: SocialParams,
}

/// splitmix64 — the stateless mixer every row derivation hangs off.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform in `[0, 1)` from a mixed word (53-bit mantissa).
fn unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SocialGraph {
    /// Describes an `n`-vertex social graph; no memory is allocated
    /// until rows are asked for.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, `alpha <= 1`, or `locality` is outside
    /// `[0, 1]`.
    pub fn new(n: u32, seed: u64, params: SocialParams) -> Self {
        assert!(n > 0, "social graph needs at least one vertex");
        assert!(params.alpha > 1.0, "pareto mean diverges for alpha <= 1");
        assert!(
            (0.0..=1.0).contains(&params.locality),
            "locality must be a fraction"
        );
        Self { n, seed, params }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        self.n
    }

    /// The sampled (pre-dedup) out-degree of `u`.
    fn sampled_degree(&self, u: u32) -> u32 {
        let p = &self.params;
        // Pareto(x_m = avg·(alpha-1)/alpha, alpha) has mean exactly avg.
        let xm = p.avg_degree as f64 * (p.alpha - 1.0) / p.alpha;
        let r = unit(splitmix64(
            self.seed ^ (u as u64).wrapping_mul(0x9e6c_63d0_876a_8bb1),
        ))
        .max(f64::EPSILON);
        let d = xm / r.powf(1.0 / p.alpha);
        (d as u32).min(p.max_degree).min(self.n - 1)
    }

    /// Writes `u`'s sorted, deduplicated out-row into `out` (cleared
    /// first). Pure in `(seed, u)`: every call yields identical bytes.
    pub fn row_into(&self, u: u32, out: &mut Vec<u32>) {
        let p = &self.params;
        out.clear();
        let deg = self.sampled_degree(u);
        let base = splitmix64(
            self.seed
                .wrapping_add(0x5851_f42d_4c95_7f2d)
                .wrapping_mul(2)
                ^ u as u64,
        );
        for k in 0..deg {
            let w = splitmix64(base ^ (k as u64).wrapping_mul(0xd6e8_feb8_6659_fd93));
            let t = if unit(w) < p.locality {
                // Near-window arc: a small forward offset in [1, 64].
                let off = 1 + (splitmix64(w) % 64) as u32;
                (u.wrapping_add(off)) % self.n
            } else {
                // Popularity-biased arc toward low vertex ids.
                let t = ((self.n as f64) * unit(splitmix64(w ^ 1)).powf(p.beta)) as u32;
                t.min(self.n - 1)
            };
            if t != u {
                out.push(t);
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    /// Streams every row in vertex order through `f(u, row)`, reusing
    /// one buffer. This is the pack-writer feed: peak memory is one
    /// row. Returns the total arc count.
    pub fn for_each_row(&self, mut f: impl FnMut(u32, &[u32])) -> u64 {
        let mut row = Vec::new();
        let mut arcs = 0u64;
        for u in 0..self.n {
            self.row_into(u, &mut row);
            arcs += row.len() as u64;
            f(u, &row);
        }
        arcs
    }

    /// Materializes the whole graph in RAM (directed CSR). Intended for
    /// tests and small scales — pack-scale callers stream with
    /// [`SocialGraph::for_each_row`] instead.
    pub fn build(&self) -> CsrGraph {
        let mut row_ptr = Vec::with_capacity(self.n as usize + 1);
        let mut col_idx = Vec::new();
        row_ptr.push(0u64);
        self.for_each_row(|_, row| {
            col_idx.extend_from_slice(row);
            row_ptr.push(col_idx.len() as u64);
        });
        CsrGraph::from_sorted_parts(self.n, row_ptr, col_idx, true)
    }
}

/// One-call convenience: materialize a social graph with default
/// parameters.
pub fn social(n: u32, seed: u64) -> CsrGraph {
    SocialGraph::new(n, seed, SocialParams::default()).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_deterministic_and_sorted() {
        let g = SocialGraph::new(5000, 42, SocialParams::default());
        let mut a = Vec::new();
        let mut b = Vec::new();
        for u in [0u32, 1, 17, 4999] {
            g.row_into(u, &mut a);
            g.row_into(u, &mut b);
            assert_eq!(a, b, "row {u} not reproducible");
            assert!(
                a.windows(2).all(|w| w[0] < w[1]),
                "row {u} not strict-sorted"
            );
            assert!(a.iter().all(|&t| t < 5000 && t != u));
        }
    }

    #[test]
    fn streaming_matches_build() {
        let sg = SocialGraph::new(2000, 7, SocialParams::default());
        let g = sg.build();
        let mut u = 0u32;
        let arcs = sg.for_each_row(|v, row| {
            assert_eq!(v, u);
            assert_eq!(g.neighbors(v), row, "row {v} differs from built graph");
            u += 1;
        });
        assert_eq!(u, 2000);
        assert_eq!(arcs, g.num_arcs() as u64);
        assert!(g.is_directed());
    }

    #[test]
    fn mean_degree_lands_near_target() {
        let sg = SocialGraph::new(20_000, 3, SocialParams::default());
        let arcs = sg.for_each_row(|_, _| {});
        let mean = arcs as f64 / 20_000.0;
        // Dedup trims a little below the Pareto mean of 10.
        assert!(
            (6.0..=12.0).contains(&mean),
            "mean degree {mean} far from target"
        );
    }

    #[test]
    fn degrees_are_skewed_toward_hubs() {
        let sg = SocialGraph::new(20_000, 11, SocialParams::default());
        let g = sg.build();
        let max = (0..20_000u32).map(|u| g.degree(u)).max().unwrap();
        assert!(max >= 100, "no hub emerged (max degree {max})");
        // Popularity bias: the top id-decile should collect well over
        // its uniform 10% share of in-arcs (beta = 2 predicts ~27%:
        // P(r^2 < 0.1) ≈ 0.316 over the 80% non-local arcs).
        let low: usize = (0..20_000u32)
            .flat_map(|u| g.neighbors(u))
            .filter(|&&t| t < 2_000)
            .count();
        assert!(
            low * 5 > g.num_arcs(),
            "popularity bias missing: {low} of {} arcs hit the top decile",
            g.num_arcs()
        );
    }
}
