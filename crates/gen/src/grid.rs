//! Road-network analogues.
//!
//! Road networks (DIMACS10's `europe_osm`, `il2010`, …) are sparse
//! (average degree ~2–3), near-planar, and have huge diameter — the graph
//! class on which the paper's DFS beats level-synchronous BFS by an order
//! of magnitude (Fig. 6, §4.3). We model them as 2-D lattices with
//! randomly deleted edges (dead ends, sparse connectivity) plus a few
//! long-range "highway" shortcuts, which reproduces both the degree
//! distribution and the deep, narrow traversal structure.

use db_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a `width × height` road-network-like lattice.
///
/// Every lattice edge is kept with probability `keep_prob` (values around
/// 0.8–0.95 give realistic dead ends while keeping the graph mostly
/// connected); `highways` long-range shortcut edges are added between
/// random lattice nodes. Vertex `(x, y)` has id `y * width + x`.
pub fn grid_road(width: u32, height: u32, keep_prob: f64, highways: u32, seed: u64) -> CsrGraph {
    assert!(width >= 1 && height >= 1, "grid must be non-empty");
    assert!(
        (0.0..=1.0).contains(&keep_prob),
        "keep_prob must be in [0,1]"
    );
    let n = width
        .checked_mul(height)
        .expect("grid dimensions overflow u32");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    b.reserve(2 * n as usize);
    let id = |x: u32, y: u32| y * width + x;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width && rng.gen_bool(keep_prob) {
                b.edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < height && rng.gen_bool(keep_prob) {
                b.edge(id(x, y), id(x, y + 1));
            }
        }
    }
    for _ in 0..highways {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.edge(u, v);
        }
    }
    b.build()
}

/// A simple path of `n` vertices — the pathological deepest-possible DFS
/// workload (stack depth = n), used to stress the two-level stack's
/// flush/refill machinery.
pub fn long_path(n: u32) -> CsrGraph {
    assert!(n >= 1);
    GraphBuilder::undirected(n)
        .edges((0..n.saturating_sub(1)).map(|i| (i, i + 1)))
        .build()
}

/// A perfect `k`-ary tree with `depth` levels (root = vertex 0).
/// Trees are the best case for work stealing: every steal yields an
/// independent subtree.
pub fn kary_tree(k: u32, depth: u32) -> CsrGraph {
    assert!(k >= 1 && depth >= 1);
    // n = (k^depth - 1) / (k - 1) for k > 1, depth for k == 1.
    let mut n: u64 = 0;
    let mut level = 1u64;
    for _ in 0..depth {
        n += level;
        level *= k as u64;
    }
    assert!(n <= u32::MAX as u64, "tree too large");
    let n = n as u32;
    let mut b = GraphBuilder::undirected(n);
    // children of i are k*i + 1 ..= k*i + k (heap layout)
    for i in 0..n {
        for c in 1..=k {
            let child = (i as u64) * (k as u64) + c as u64;
            if child < n as u64 {
                b.edge(i, child as u32);
            }
        }
    }
    b.build()
}

/// "Comb" graph: a long spine with short teeth. Deep like a path but with
/// steady small amounts of stealable branch work — a worst-ish case for
/// stealing productivity.
pub fn comb(spine: u32, tooth_len: u32) -> CsrGraph {
    assert!(spine >= 1);
    let n = spine
        .checked_mul(1 + tooth_len)
        .expect("comb dimensions overflow");
    let mut b = GraphBuilder::undirected(n);
    for i in 0..spine - 1 {
        b.edge(i, i + 1);
    }
    // teeth occupy ids spine..n, tooth j of spine vertex i hangs off i
    let mut next = spine;
    for i in 0..spine {
        let mut prev = i;
        for _ in 0..tooth_len {
            b.edge(prev, next);
            prev = next;
            next += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::traversal::{bfs_levels, largest_component};

    #[test]
    fn full_grid_structure() {
        let g = grid_road(4, 3, 1.0, 0, 1);
        assert_eq!(g.num_vertices(), 12);
        // 2*4*3 - 4 - 3 = 17 lattice edges
        assert_eq!(g.num_edges(), 17);
        // corner has degree 2, middle vertex degree 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn keep_prob_thins_the_grid() {
        let full = grid_road(50, 50, 1.0, 0, 7);
        let thin = grid_road(50, 50, 0.7, 0, 7);
        assert!(thin.num_edges() < full.num_edges());
        assert!(thin.num_edges() > full.num_edges() / 2);
    }

    #[test]
    fn grid_is_deterministic() {
        assert_eq!(grid_road(20, 20, 0.9, 5, 3), grid_road(20, 20, 0.9, 5, 3));
        assert_ne!(grid_road(20, 20, 0.9, 5, 3), grid_road(20, 20, 0.9, 5, 4));
    }

    #[test]
    fn grid_has_large_diameter() {
        let g = grid_road(64, 64, 1.0, 0, 1);
        let (_, depth) = bfs_levels(&g, 0);
        assert_eq!(depth as usize, 64 + 64 - 1); // Manhattan diameter + 1
    }

    #[test]
    fn mostly_connected_at_high_keep_prob() {
        let g = grid_road(40, 40, 0.95, 10, 5);
        let (_, size) = largest_component(&g);
        assert!(size > 1400, "giant component too small: {size}");
    }

    #[test]
    fn long_path_is_a_path() {
        let g = long_path(100);
        assert_eq!(g.num_edges(), 99);
        let (_, depth) = bfs_levels(&g, 0);
        assert_eq!(depth, 100);
    }

    #[test]
    fn kary_tree_shape() {
        let g = kary_tree(2, 4); // 1+2+4+8 = 15 vertices
        assert_eq!(g.num_vertices(), 15);
        assert_eq!(g.num_edges(), 14);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(14), 1); // leaf
    }

    #[test]
    fn unary_tree_is_path() {
        let g = kary_tree(1, 5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn comb_shape() {
        let g = comb(10, 3);
        assert_eq!(g.num_vertices(), 40);
        assert_eq!(g.num_edges(), 9 + 30);
        let (_, depth) = bfs_levels(&g, 0);
        assert_eq!(depth, 13); // spine 10 + tooth 3
    }
}
