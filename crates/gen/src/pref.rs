//! Preferential-attachment graphs (Barabási–Albert with tunable locality).
//!
//! Analogue for co-purchase / web-link / citation graphs (`amazon`,
//! `google`, `citation` in Table 4): power-law-ish degrees but milder
//! than R-MAT, moderate diameter, strong local clustering. The
//! `locality` knob mixes preferential attachment with attachment to
//! recent vertices, which raises diameter and clustering the way real
//! co-purchase networks differ from social networks.

use db_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a preferential-attachment graph.
///
/// * `n` — number of vertices;
/// * `edges_per_vertex` — arcs added per arriving vertex (≥ 1);
/// * `locality` in `0.0..=1.0` — probability that a new edge attaches to a
///   recent vertex (uniform over the last `window`) instead of by degree;
/// * `seed` — RNG seed.
pub fn pref_attach(n: u32, edges_per_vertex: u32, locality: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2, "need at least 2 vertices");
    assert!(edges_per_vertex >= 1);
    assert!((0.0..=1.0).contains(&locality));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    // Endpoint pool: classic BA trick — each arc endpoint appears once in
    // the pool, so uniform pool sampling is degree-proportional sampling.
    let mut pool: Vec<u32> = vec![0];
    let window = 64u32;
    for v in 1..n {
        let m = edges_per_vertex.min(v);
        let mut targets = Vec::with_capacity(m as usize);
        let mut guard = 0;
        while targets.len() < m as usize && guard < 32 * m {
            guard += 1;
            let t = if rng.gen_bool(locality) {
                // attach to a recent vertex
                let lo = v.saturating_sub(window);
                rng.gen_range(lo..v)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if t != v && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.edge(v, t);
            pool.push(t);
            pool.push(v);
        }
    }
    b.build()
}

/// Citation-style DAG: preferential attachment where every arc points
/// from a newer vertex to an older one (`citation` analogue; also the
/// natural input for NVG-DFS which targets DAGs).
pub fn citation_dag(n: u32, edges_per_vertex: u32, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    let und = pref_attach(n, edges_per_vertex, 0.3, seed);
    let mut b = GraphBuilder::directed(n);
    for (u, v) in und.arcs() {
        if u > v {
            // newer cites older
            b.edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::traversal::largest_component;

    #[test]
    fn pref_attach_deterministic() {
        assert_eq!(pref_attach(500, 3, 0.3, 1), pref_attach(500, 3, 0.3, 1));
        assert_ne!(pref_attach(500, 3, 0.3, 1), pref_attach(500, 3, 0.3, 2));
    }

    #[test]
    fn pref_attach_is_connected() {
        let g = pref_attach(1000, 2, 0.3, 9);
        let (_, size) = largest_component(&g);
        assert_eq!(size, 1000, "BA graphs are connected by construction");
    }

    #[test]
    fn hub_emerges_without_locality() {
        let g = pref_attach(2000, 2, 0.0, 4);
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!(g.max_degree() as f64 > 8.0 * avg);
    }

    #[test]
    fn locality_reduces_hub_dominance() {
        let global = pref_attach(2000, 2, 0.0, 4);
        let local = pref_attach(2000, 2, 0.9, 4);
        assert!(local.max_degree() < global.max_degree());
    }

    #[test]
    fn citation_dag_points_backwards() {
        let g = citation_dag(300, 3, 2);
        assert!(g.is_directed());
        for (u, v) in g.arcs() {
            assert!(u > v, "citation arc {u}->{v} must point to older vertex");
        }
    }

    #[test]
    fn edge_budget_respected() {
        let g = pref_attach(100, 3, 0.2, 8);
        // at most 3 per arriving vertex
        assert!(g.num_edges() <= 3 * 99);
        assert!(g.num_edges() >= 99); // tree at minimum
    }
}
