//! Benchmark-suite registry.
//!
//! Maps the paper's datasets to scaled synthetic analogues:
//!
//! * [`Suite::representative12`] — Table 4's 12 representative graphs
//!   (Fig. 6).
//! * [`Suite::representative6`] — the 6 graphs used for Figs. 8, 9, 10
//!   (`euro_osm`, `delaunay`, `hugebubbles`, `amazon`, `google`,
//!   `ljournal`).
//! * [`Suite::full`] — the broad three-family sweep standing in for the
//!   234-graph SuiteSparse run of Figs. 5 and 7.
//!
//! Every spec is deterministic (fixed seed derived from its name) and
//! scaled to laptop size; DESIGN.md §1 documents the substitution.

use crate::{grid, mesh, pref, rgg, rmat};
use db_graph::CsrGraph;

/// The paper's three graph collections (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphFamily {
    /// DIMACS10: clustering, numerical simulation, road networks.
    Dimacs10,
    /// SNAP: social, citation, and web graphs.
    Snap,
    /// LAW: large web crawls.
    Law,
}

impl std::fmt::Display for GraphFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphFamily::Dimacs10 => write!(f, "DIMACS10"),
            GraphFamily::Snap => write!(f, "SNAP"),
            GraphFamily::Law => write!(f, "LAW"),
        }
    }
}

/// Parameterized generator recipe (kept as data so specs are `'static`).
#[derive(Debug, Clone, Copy)]
pub enum Recipe {
    /// `grid::grid_road(width, height, keep_prob, highways, seed)`
    GridRoad {
        /// lattice width
        width: u32,
        /// lattice height
        height: u32,
        /// per-edge keep probability
        keep_prob: f64,
        /// number of long-range shortcuts
        highways: u32,
    },
    /// `mesh::delaunay_mesh(width, height, seed)`
    Delaunay {
        /// lattice width
        width: u32,
        /// lattice height
        height: u32,
    },
    /// `mesh::bubbles(bubbles, bubble_size, cross_links, seed)`
    Bubbles {
        /// number of chained bubbles
        bubbles: u32,
        /// vertices per bubble
        bubble_size: u32,
        /// extra local links
        cross_links: u32,
    },
    /// `rgg::rgg(n, radius_scale * threshold, seed)`
    Rgg {
        /// vertex count
        n: u32,
        /// multiple of the connectivity-threshold radius
        radius_scale: f64,
    },
    /// `rmat::rmat(scale, edge_factor, default params, seed)`
    Rmat {
        /// log2 of the vertex count
        scale: u32,
        /// sampled edges per vertex
        edge_factor: u32,
    },
    /// `grid::kary_tree(k, depth)` — shallow hierarchical graphs
    /// (directory trees, shallow web hierarchies).
    Tree {
        /// branching factor
        k: u32,
        /// number of levels
        depth: u32,
    },
    /// `grid::comb(spine, tooth_len)` — caterpillar trees: a long spine
    /// with long teeth. Deep enough that work stealing engages, yet
    /// tree-structured so path-label methods stay within budget.
    Comb {
        /// spine length
        spine: u32,
        /// vertices per tooth
        tooth: u32,
    },
    /// `pref::pref_attach(n, edges_per_vertex, locality, seed)`
    Pref {
        /// vertex count
        n: u32,
        /// arcs per arriving vertex
        epv: u32,
        /// recency-attachment probability
        locality: f64,
    },
}

/// A named benchmark graph: recipe + provenance.
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// Short name used in figures and CSV output.
    pub name: &'static str,
    /// Which paper collection this graph stands in for.
    pub family: GraphFamily,
    /// The SuiteSparse graph it is an analogue of, if any.
    pub paper_analogue: Option<&'static str>,
    /// Generator recipe.
    pub recipe: Recipe,
}

impl GraphSpec {
    /// Deterministic seed derived from the graph name (FNV-1a).
    pub fn seed(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Materializes the graph.
    pub fn build(&self) -> CsrGraph {
        let seed = self.seed();
        match self.recipe {
            Recipe::GridRoad {
                width,
                height,
                keep_prob,
                highways,
            } => grid::grid_road(width, height, keep_prob, highways, seed),
            Recipe::Delaunay { width, height } => mesh::delaunay_mesh(width, height, seed),
            Recipe::Bubbles {
                bubbles,
                bubble_size,
                cross_links,
            } => mesh::bubbles(bubbles, bubble_size, cross_links, seed),
            Recipe::Rgg { n, radius_scale } => {
                rgg::rgg(n, rgg::threshold_radius(n) * radius_scale, seed)
            }
            Recipe::Rmat { scale, edge_factor } => {
                rmat::rmat(scale, edge_factor, rmat::RmatParams::default(), seed)
            }
            Recipe::Tree { k, depth } => grid::kary_tree(k, depth),
            Recipe::Comb { spine, tooth } => grid::comb(spine, tooth),
            Recipe::Pref { n, epv, locality } => pref::pref_attach(n, epv, locality, seed),
        }
    }
}

/// Static registry of benchmark suites.
#[derive(Debug)]
pub struct Suite;

impl Suite {
    /// Table 4's 12 representative graphs as scaled analogues.
    pub fn representative12() -> &'static [GraphSpec] {
        REPRESENTATIVE12
    }

    /// The 6 graphs used in Figs. 8–10.
    pub fn representative6() -> Vec<GraphSpec> {
        const SIX: [&str; 6] = [
            "euro_osm",
            "delaunay",
            "hugebubbles",
            "amazon",
            "google",
            "ljournal",
        ];
        REPRESENTATIVE12
            .iter()
            .filter(|s| SIX.contains(&s.name))
            .copied()
            .collect()
    }

    /// The broad sweep standing in for the 234-graph run (Figs. 5 and 7):
    /// the 12 representative graphs plus size ladders per family.
    pub fn full() -> Vec<GraphSpec> {
        let mut v: Vec<GraphSpec> = REPRESENTATIVE12.to_vec();
        v.extend_from_slice(SWEEP);
        v
    }

    /// Looks a spec up by name across all suites.
    pub fn by_name(name: &str) -> Option<GraphSpec> {
        Self::full().into_iter().find(|s| s.name == name)
    }
}

/// Scaled analogues of Table 4. Original sizes are noted per entry; the
/// scale-down factor is ~10–60× on vertices — large enough to keep the
/// paper's parameters (hot_size 128, cutoffs 32/64) in their intended
/// regime, small enough that the whole evaluation runs in minutes.
static REPRESENTATIVE12: &[GraphSpec] = &[
    // euro_osm: 50.9M V / 108.1M E road network, 17,346 BFS levels.
    GraphSpec {
        name: "euro_osm",
        family: GraphFamily::Dimacs10,
        paper_analogue: Some("europe_osm"),
        recipe: Recipe::GridRoad {
            width: 2000,
            height: 2000,
            keep_prob: 0.88,
            highways: 0,
        },
    },
    // delaunay: 16.8M V / 100.7M E triangulation.
    GraphSpec {
        name: "delaunay",
        family: GraphFamily::Dimacs10,
        paper_analogue: Some("delaunay_n24"),
        recipe: Recipe::Delaunay {
            width: 1400,
            height: 1400,
        },
    },
    // rgg: 16.8M V / 265.1M E random geometric graph.
    GraphSpec {
        name: "rgg",
        family: GraphFamily::Dimacs10,
        paper_analogue: Some("rgg_n_2_24_s0"),
        recipe: Recipe::Rgg {
            n: 400_000,
            radius_scale: 0.72,
        },
    },
    // hugebubbles: 21.2M V / 63.6M E adaptive 2-D frame mesh with
    // bubble-shaped cavities: very sparse (avg degree 3), huge diameter.
    GraphSpec {
        name: "hugebubbles",
        family: GraphFamily::Dimacs10,
        paper_analogue: Some("hugebubbles-00020"),
        recipe: Recipe::GridRoad {
            width: 1250,
            height: 1250,
            keep_prob: 0.77,
            highways: 0,
        },
    },
    // auto: 0.4M V / 6.6M E 3-D mesh partitioning graph — dense (avg
    // degree ~33) and comparatively shallow, the one mesh where BFS wins
    // in Fig. 6.
    GraphSpec {
        name: "auto",
        family: GraphFamily::Dimacs10,
        paper_analogue: Some("auto"),
        recipe: Recipe::Rgg {
            n: 250_000,
            radius_scale: 0.77,
        },
    },
    // citation: 0.3M V / 2.3M E citation network.
    GraphSpec {
        name: "citation",
        family: GraphFamily::Dimacs10,
        paper_analogue: Some("citationCiteseer"),
        recipe: Recipe::Pref {
            n: 150_000,
            epv: 7,
            locality: 0.5,
        },
    },
    // il2010: 0.5M V / 2.2M E census-block road-ish network.
    GraphSpec {
        name: "il2010",
        family: GraphFamily::Dimacs10,
        paper_analogue: Some("il2010"),
        recipe: Recipe::GridRoad {
            width: 450,
            height: 450,
            keep_prob: 0.92,
            highways: 16,
        },
    },
    // amazon: 0.3M V / 1.2M E co-purchase.
    GraphSpec {
        name: "amazon",
        family: GraphFamily::Snap,
        paper_analogue: Some("amazon0601"),
        recipe: Recipe::Pref {
            n: 200_000,
            epv: 4,
            locality: 0.88,
        },
    },
    // google: 0.9M V / 5.1M E web graph.
    GraphSpec {
        name: "google",
        family: GraphFamily::Snap,
        paper_analogue: Some("web-Google"),
        recipe: Recipe::Pref {
            n: 300_000,
            epv: 6,
            locality: 0.4,
        },
    },
    // wiki: 1.8M V / 28.6M E hyperlink graph.
    GraphSpec {
        name: "wiki",
        family: GraphFamily::Snap,
        paper_analogue: Some("wiki-Talk"),
        recipe: Recipe::Rmat {
            scale: 18,
            edge_factor: 12,
        },
    },
    // ljournal: 5.4M V / 79.0M E social network.
    GraphSpec {
        name: "ljournal",
        family: GraphFamily::Law,
        paper_analogue: Some("ljournal-2008"),
        recipe: Recipe::Rmat {
            scale: 19,
            edge_factor: 10,
        },
    },
    // hollywood: 1.1M V / 113.9M E dense collaboration network.
    GraphSpec {
        name: "hollywood",
        family: GraphFamily::Law,
        paper_analogue: Some("hollywood-2009"),
        recipe: Recipe::Rmat {
            scale: 17,
            edge_factor: 36,
        },
    },
];

/// Size ladders per family for the Fig. 5 / Fig. 7 sweep.
static SWEEP: &[GraphSpec] = &[
    // --- DIMACS10: roads ---
    GraphSpec {
        name: "road_s",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::GridRoad {
            width: 192,
            height: 192,
            keep_prob: 0.9,
            highways: 2,
        },
    },
    GraphSpec {
        name: "road_m",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::GridRoad {
            width: 384,
            height: 384,
            keep_prob: 0.9,
            highways: 3,
        },
    },
    GraphSpec {
        name: "road_l",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::GridRoad {
            width: 768,
            height: 768,
            keep_prob: 0.9,
            highways: 4,
        },
    },
    GraphSpec {
        name: "road_xl",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::GridRoad {
            width: 1400,
            height: 1400,
            keep_prob: 0.9,
            highways: 6,
        },
    },
    // --- DIMACS10: meshes ---
    GraphSpec {
        name: "mesh_s",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Delaunay {
            width: 150,
            height: 150,
        },
    },
    GraphSpec {
        name: "mesh_m",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Delaunay {
            width: 320,
            height: 320,
        },
    },
    GraphSpec {
        name: "mesh_l",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Delaunay {
            width: 640,
            height: 640,
        },
    },
    GraphSpec {
        name: "mesh_xl",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Delaunay {
            width: 1000,
            height: 1000,
        },
    },
    // --- DIMACS10: bubbles ---
    GraphSpec {
        name: "bubbles_s",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Bubbles {
            bubbles: 600,
            bubble_size: 20,
            cross_links: 300,
        },
    },
    GraphSpec {
        name: "bubbles_m",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Bubbles {
            bubbles: 600,
            bubble_size: 20,
            cross_links: 300,
        },
    },
    GraphSpec {
        name: "bubbles_l",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Bubbles {
            bubbles: 4000,
            bubble_size: 25,
            cross_links: 2000,
        },
    },
    // --- DIMACS10: rgg ---
    GraphSpec {
        name: "rgg_s",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Rgg {
            n: 30_000,
            radius_scale: 0.85,
        },
    },
    GraphSpec {
        name: "rgg_m",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Rgg {
            n: 120_000,
            radius_scale: 0.78,
        },
    },
    GraphSpec {
        name: "rgg_l",
        family: GraphFamily::Dimacs10,
        paper_analogue: None,
        recipe: Recipe::Rgg {
            n: 300_000,
            radius_scale: 0.74,
        },
    },
    // --- SNAP: social / web ---
    GraphSpec {
        name: "social_s",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Rmat {
            scale: 14,
            edge_factor: 10,
        },
    },
    GraphSpec {
        name: "social_m",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Rmat {
            scale: 16,
            edge_factor: 12,
        },
    },
    GraphSpec {
        name: "social_l",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Rmat {
            scale: 18,
            edge_factor: 12,
        },
    },
    GraphSpec {
        name: "copurchase_s",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Pref {
            n: 40_000,
            epv: 4,
            locality: 0.6,
        },
    },
    GraphSpec {
        name: "copurchase_m",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Pref {
            n: 120_000,
            epv: 5,
            locality: 0.55,
        },
    },
    GraphSpec {
        name: "web_m",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Pref {
            n: 200_000,
            epv: 8,
            locality: 0.35,
        },
    },
    // Hierarchies. Tree-structured graphs are the one class where
    // ordered path-label methods (NVG-DFS) stay within budget. The
    // bushy `hier_flat` tree is also a stress case for DiggerBees
    // itself: its DFS stack never reaches hot_cutoff, so stealing
    // cannot engage (documented in EXPERIMENTS.md). The caterpillar
    // `hier_*` combs are deep enough for hierarchical stealing.
    GraphSpec {
        name: "hier_flat",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Tree { k: 4, depth: 9 },
    },
    GraphSpec {
        name: "hier_s",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Comb {
            spine: 120,
            tooth: 150,
        },
    },
    GraphSpec {
        name: "hier_m",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Comb {
            spine: 200,
            tooth: 300,
        },
    },
    GraphSpec {
        name: "hier_l",
        family: GraphFamily::Snap,
        paper_analogue: None,
        recipe: Recipe::Comb {
            spine: 280,
            tooth: 450,
        },
    },
    // --- LAW: crawls ---
    GraphSpec {
        name: "crawl_s",
        family: GraphFamily::Law,
        paper_analogue: None,
        recipe: Recipe::Rmat {
            scale: 14,
            edge_factor: 24,
        },
    },
    GraphSpec {
        name: "crawl_m",
        family: GraphFamily::Law,
        paper_analogue: None,
        recipe: Recipe::Rmat {
            scale: 16,
            edge_factor: 28,
        },
    },
    GraphSpec {
        name: "crawl_l",
        family: GraphFamily::Law,
        paper_analogue: None,
        recipe: Recipe::Rmat {
            scale: 18,
            edge_factor: 24,
        },
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::traversal::bfs_levels;

    #[test]
    fn twelve_representative_graphs() {
        assert_eq!(Suite::representative12().len(), 12);
        let names: Vec<_> = Suite::representative12().iter().map(|s| s.name).collect();
        for expect in [
            "euro_osm",
            "delaunay",
            "rgg",
            "hugebubbles",
            "auto",
            "citation",
            "il2010",
            "amazon",
            "google",
            "wiki",
            "ljournal",
            "hollywood",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn six_subset_matches_figure8() {
        let six = Suite::representative6();
        assert_eq!(six.len(), 6);
    }

    #[test]
    fn names_are_unique_across_full_suite() {
        let mut names: Vec<_> = Suite::full().iter().map(|s| s.name).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(total >= 30, "full suite should be broad, got {total}");
    }

    #[test]
    fn seeds_differ_per_name() {
        let specs = Suite::full();
        let mut seeds: Vec<_> = specs.iter().map(|s| s.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), specs.len());
    }

    #[test]
    fn by_name_lookup() {
        assert!(Suite::by_name("euro_osm").is_some());
        assert!(Suite::by_name("nonexistent").is_none());
    }

    #[test]
    fn small_specs_build() {
        for name in [
            "road_s",
            "mesh_s",
            "bubbles_s",
            "rgg_s",
            "social_s",
            "copurchase_s",
        ] {
            let g = Suite::by_name(name).unwrap().build();
            assert!(g.num_vertices() > 0, "{name} is empty");
            assert!(g.num_edges() > 0, "{name} has no edges");
        }
    }

    #[test]
    fn road_analogue_is_deep_and_social_is_shallow() {
        let road = Suite::by_name("road_s").unwrap().build();
        let (_, road_depth) = bfs_levels(&road, 0);
        let social = Suite::by_name("social_s").unwrap().build();
        let hub = (0..social.num_vertices() as u32)
            .max_by_key(|&v| social.degree(v))
            .unwrap();
        let (_, social_depth) = bfs_levels(&social, hub);
        assert!(
            road_depth > 8 * social_depth,
            "road {road_depth} levels vs social {social_depth} — depth contrast lost"
        );
    }
}
