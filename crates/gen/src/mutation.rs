//! Seeded mutation streams for epoch-versioned (`db-delta`) graphs.
//!
//! A dynamic-graph benchmark needs write batches with two properties
//! at once: *seeded* (same seed → same batches, so double runs can be
//! digest-compared) and *commuting* (any interleaving of the batches
//! lands on the same final graph, so the digest is schedule-free even
//! when concurrent writers race). [`MutationStream`] produces batches
//! with both, using a parity split of the vertex space: inserts only
//! connect even-numbered vertices, deletes only cut odd-numbered
//! pairs. Inserted and deleted arc sets are therefore disjoint, and
//! since inserts are idempotent set-unions and deletes idempotent
//! set-subtractions, the final state is `base ∪ inserts ∖ deletes`
//! regardless of arrival order.

/// One publishable batch of mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutationBatch {
    /// Arcs to insert (undirected consumers stage both directions).
    AddEdges(Vec<(u32, u32)>),
    /// Arcs to delete (absent arcs are no-ops).
    DelEdges(Vec<(u32, u32)>),
}

impl MutationBatch {
    /// The endpoint pairs regardless of direction.
    pub fn edges(&self) -> &[(u32, u32)] {
        match self {
            MutationBatch::AddEdges(e) | MutationBatch::DelEdges(e) => e,
        }
    }

    /// Whether this batch deletes rather than inserts.
    pub fn is_delete(&self) -> bool {
        matches!(self, MutationBatch::DelEdges(_))
    }
}

/// Infinite seeded stream of commuting mutation batches over a vertex
/// space of size `n` (requires `n ≥ 4` so both parities exist).
///
/// ```
/// use db_gen::{MutationBatch, MutationStream};
///
/// let batches: Vec<MutationBatch> = MutationStream::new(64, 42).take(100).collect();
/// // Deterministic: a second stream with the same seed is identical.
/// assert_eq!(batches, MutationStream::new(64, 42).take(100).collect::<Vec<_>>());
/// // Commuting: inserted and deleted arc sets never overlap.
/// for b in &batches {
///     for &(u, v) in b.edges() {
///         assert_eq!(u % 2, if b.is_delete() { 1 } else { 0 });
///         assert_eq!(v % 2, if b.is_delete() { 1 } else { 0 });
///     }
/// }
/// ```
#[derive(Debug, Clone)]
pub struct MutationStream {
    n: u32,
    state: u64,
}

impl MutationStream {
    /// A stream over vertices `0..n` derived from `seed`.
    ///
    /// # Panics
    /// If `n < 4` — the parity split needs at least two vertices of
    /// each parity to generate non-degenerate batches.
    pub fn new(n: u32, seed: u64) -> Self {
        assert!(n >= 4, "MutationStream needs n >= 4 (got {n})");
        MutationStream {
            n,
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: tiny, seeded, good enough for workload shapes.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A vertex of the given parity (0 = even, 1 = odd), always `< n`.
    fn vertex(&mut self, parity: u32) -> u32 {
        let half = (self.n / 2) as u64;
        (self.next_u64() % half) as u32 * 2 + parity
    }
}

impl Iterator for MutationStream {
    type Item = MutationBatch;

    fn next(&mut self) -> Option<MutationBatch> {
        // 1 in 4 batches deletes; batch sizes 1..=3 keep epochs cheap.
        let del = self.next_u64().is_multiple_of(4);
        let parity = del as u32;
        let len = 1 + (self.next_u64() % 3) as usize;
        let edges = (0..len)
            .map(|_| (self.vertex(parity), self.vertex(parity)))
            .collect();
        Some(if del {
            MutationBatch::DelEdges(edges)
        } else {
            MutationBatch::AddEdges(edges)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn streams_are_seed_deterministic() {
        let a: Vec<_> = MutationStream::new(100, 7).take(500).collect();
        let b: Vec<_> = MutationStream::new(100, 7).take(500).collect();
        assert_eq!(a, b);
        let c: Vec<_> = MutationStream::new(100, 8).take(500).collect();
        assert_ne!(a, c, "different seeds must diverge");
    }

    #[test]
    fn inserts_and_deletes_are_disjoint_and_in_range() {
        for n in [4u32, 5, 63, 64] {
            let mut adds = BTreeSet::new();
            let mut dels = BTreeSet::new();
            for b in MutationStream::new(n, 13).take(1000) {
                for &(u, v) in b.edges() {
                    assert!(u < n && v < n, "out of range for n={n}: ({u},{v})");
                    if b.is_delete() {
                        dels.insert((u, v));
                    } else {
                        adds.insert((u, v));
                    }
                }
            }
            assert!(adds.is_disjoint(&dels), "n={n}");
            assert!(!adds.is_empty() && !dels.is_empty(), "n={n}");
        }
    }

    #[test]
    fn final_state_is_order_independent() {
        // Apply the same 200 batches forwards and backwards as set
        // operations; disjointness makes the results identical.
        let batches: Vec<_> = MutationStream::new(32, 99).take(200).collect();
        let apply = |order: Vec<&MutationBatch>| {
            let mut s: BTreeSet<(u32, u32)> = BTreeSet::new();
            for b in order {
                for &e in b.edges() {
                    if b.is_delete() {
                        s.remove(&e);
                    } else {
                        s.insert(e);
                    }
                }
            }
            s
        };
        let fwd = apply(batches.iter().collect());
        let rev = apply(batches.iter().rev().collect());
        assert_eq!(fwd, rev);
    }

    #[test]
    #[should_panic(expected = "n >= 4")]
    fn tiny_vertex_spaces_are_rejected() {
        MutationStream::new(3, 0);
    }
}
