//! Mesh analogues: Delaunay-like triangulations and bubble meshes.
//!
//! DIMACS10's `delaunay_n24` and `hugebubbles` are numerical-simulation
//! meshes: bounded degree (~6 for Delaunay), planar-ish, diameter
//! O(√n) — deep enough that the paper's DFS beats BFS on them (Fig. 6).
//!
//! A true Delaunay triangulation is overkill for traversal structure; we
//! triangulate a jittered lattice (every quad gets a random diagonal),
//! which matches Delaunay's degree distribution (4–8) and diameter class.
//! Bubble meshes are modeled as rings ("bubbles") stitched along a long
//! chain with occasional cross-links, matching `hugebubbles`' extremely
//! deep, locally-cyclic structure.

use db_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Triangulated lattice: `width × height` grid where every unit square is
/// split by one randomly chosen diagonal. Degree 4–8, diameter O(w + h) —
/// the Delaunay-mesh analogue.
pub fn delaunay_mesh(width: u32, height: u32, seed: u64) -> CsrGraph {
    assert!(
        width >= 2 && height >= 2,
        "mesh needs at least 2x2 vertices"
    );
    let n = width.checked_mul(height).expect("mesh dimensions overflow");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    b.reserve(3 * n as usize);
    let id = |x: u32, y: u32| y * width + x;
    for y in 0..height {
        for x in 0..width {
            if x + 1 < width {
                b.edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < height {
                b.edge(id(x, y), id(x, y + 1));
            }
            if x + 1 < width && y + 1 < height {
                if rng.gen_bool(0.5) {
                    b.edge(id(x, y), id(x + 1, y + 1));
                } else {
                    b.edge(id(x + 1, y), id(x, y + 1));
                }
            }
        }
    }
    b.build()
}

/// Bubble mesh: `bubbles` rings of `bubble_size` vertices each, stitched
/// into a chain (each bubble shares a junction edge with the next), with
/// `cross_links` extra random intra-chain links. Mirrors `hugebubbles`'
/// chained-cavity structure: locally cyclic, globally path-like, so both
/// DFS depth and BFS level count are enormous.
pub fn bubbles(bubbles: u32, bubble_size: u32, cross_links: u32, seed: u64) -> CsrGraph {
    assert!(
        bubbles >= 1 && bubble_size >= 3,
        "need >=1 bubble of >=3 vertices"
    );
    let n = bubbles
        .checked_mul(bubble_size)
        .expect("bubble dimensions overflow");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    b.reserve(n as usize + cross_links as usize);
    for i in 0..bubbles {
        let base = i * bubble_size;
        for j in 0..bubble_size {
            b.edge(base + j, base + (j + 1) % bubble_size);
        }
        if i + 1 < bubbles {
            // junction: connect the "far side" of this bubble to the next
            b.edge(base + bubble_size / 2, base + bubble_size);
        }
    }
    for _ in 0..cross_links {
        // Links stay local (within a window of 3 bubbles) so the global
        // path-like structure — the property that starves BFS — survives.
        let bi = rng.gen_range(0..bubbles);
        let bj = (bi + rng.gen_range(0..3).min(bubbles - 1 - bi)).min(bubbles - 1);
        let u = bi * bubble_size + rng.gen_range(0..bubble_size);
        let v = bj * bubble_size + rng.gen_range(0..bubble_size);
        if u != v {
            b.edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::traversal::{bfs_levels, largest_component};

    #[test]
    fn delaunay_is_connected_with_bounded_degree() {
        let g = delaunay_mesh(30, 30, 11);
        let (_, size) = largest_component(&g);
        assert_eq!(size, 900);
        assert!(
            g.max_degree() <= 8,
            "max degree {} too high",
            g.max_degree()
        );
        // avg degree close to 6 for interior-dominated meshes
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        assert!((4.0..7.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    fn delaunay_deterministic() {
        assert_eq!(delaunay_mesh(10, 10, 5), delaunay_mesh(10, 10, 5));
        assert_ne!(delaunay_mesh(10, 10, 5), delaunay_mesh(10, 10, 6));
    }

    #[test]
    fn delaunay_diameter_is_lattice_like() {
        let g = delaunay_mesh(40, 40, 2);
        let (_, depth) = bfs_levels(&g, 0);
        assert!((40..=80).contains(&depth), "depth {depth}");
    }

    #[test]
    fn bubbles_connected_and_deep() {
        let g = bubbles(50, 12, 20, 3);
        assert_eq!(g.num_vertices(), 600);
        let (_, size) = largest_component(&g);
        assert_eq!(size, 600);
        let (_, depth) = bfs_levels(&g, 0);
        // chain of 50 bubbles, each needing ~size/2 levels to cross
        assert!(depth > 100, "bubbles should be deep, got {depth} levels");
    }

    #[test]
    fn bubbles_deterministic() {
        assert_eq!(bubbles(10, 8, 5, 9), bubbles(10, 8, 5, 9));
    }

    #[test]
    fn single_bubble_is_a_cycle() {
        let g = bubbles(1, 6, 0, 0);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 6);
        assert!((0..6).all(|v| g.degree(v) == 2));
    }
}
