//! Random geometric graphs (DIMACS10's `rgg_n_2_*` series).
//!
//! `n` points uniform in the unit square, an edge between every pair at
//! distance ≤ `radius`. Built with a cell grid so generation is O(n)
//! for the connectivity-threshold radii used in DIMACS10
//! (`r ≈ c·sqrt(ln n / n)`).

use db_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random geometric graph with `n` vertices and connection
/// radius `radius`.
pub fn rgg(n: u32, radius: f64, seed: u64) -> CsrGraph {
    assert!(n >= 1);
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();

    // Cell grid with cell side >= radius: candidates live in the 3x3
    // neighborhood of a point's cell.
    let cells_per_side = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((y * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        grid[cy * cells_per_side + cx].push(i as u32);
    }

    let r2 = radius * radius;
    let mut b = GraphBuilder::undirected(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        let x0 = cx.saturating_sub(1);
        let y0 = cy.saturating_sub(1);
        let x1 = (cx + 1).min(cells_per_side - 1);
        let y1 = (cy + 1).min(cells_per_side - 1);
        for gy in y0..=y1 {
            for gx in x0..=x1 {
                for &j in &grid[gy * cells_per_side + gx] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (xj, yj) = pts[j as usize];
                    let dx = x - xj;
                    let dy = y - yj;
                    if dx * dx + dy * dy <= r2 {
                        b.edge(i as u32, j);
                    }
                }
            }
        }
    }
    b.build()
}

/// Radius at the connectivity threshold for `n` points:
/// `c * sqrt(ln n / n)` with `c = 1.2`, the regime DIMACS10 uses.
pub fn threshold_radius(n: u32) -> f64 {
    let n = n.max(2) as f64;
    1.2 * (n.ln() / n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::traversal::largest_component;

    #[test]
    fn rgg_deterministic() {
        assert_eq!(rgg(500, 0.06, 1), rgg(500, 0.06, 1));
        assert_ne!(rgg(500, 0.06, 1), rgg(500, 0.06, 2));
    }

    #[test]
    fn rgg_at_threshold_is_mostly_connected() {
        let n = 2000;
        let g = rgg(n, threshold_radius(n), 42);
        let (_, size) = largest_component(&g);
        assert!(size as f64 > 0.95 * n as f64, "giant component {size}/{n}");
    }

    #[test]
    fn rgg_edges_respect_radius() {
        // Brute-force check on a small instance: every edge pair distance
        // <= r. (Point positions are re-derived by re-seeding.)
        let n = 200u32;
        let r = 0.15;
        let g = rgg(n, r, 7);
        let mut rng = StdRng::seed_from_u64(7);
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
            .collect();
        for (u, v) in g.arcs() {
            let (x1, y1) = pts[u as usize];
            let (x2, y2) = pts[v as usize];
            let d2 = (x1 - x2).powi(2) + (y1 - y2).powi(2);
            assert!(d2 <= r * r + 1e-12, "edge ({u},{v}) too long: {d2}");
        }
        // And completeness: count brute-force pairs == edge count.
        let mut expect = 0;
        for i in 0..n as usize {
            for j in i + 1..n as usize {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                if d2 <= r * r {
                    expect += 1;
                }
            }
        }
        assert_eq!(g.num_edges(), expect);
    }

    #[test]
    fn tiny_rgg() {
        let g = rgg(1, 0.5, 0);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
