//! R-MAT (recursive matrix) power-law graph generator.
//!
//! The standard Graph500/GAP generator for social-network-like graphs:
//! heavy-tailed degree distribution, tiny diameter, one giant core. These
//! are the SNAP/LAW analogues (`wiki`, `ljournal`, `hollywood`,
//! `higgs-twitter`, `soc-Pokec`) — the graphs where the paper's BFS
//! baselines shine (10-level traversals, Fig. 6) and NVG-DFS collapses.

use db_graph::{CsrGraph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// R-MAT quadrant probabilities.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "core" pull). Graph500 uses 0.57.
    pub a: f64,
    /// Top-right probability. Graph500 uses 0.19.
    pub b: f64,
    /// Bottom-left probability. Graph500 uses 0.19.
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // Graph500 reference parameters.
        Self {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

impl RmatParams {
    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an undirected R-MAT graph with `2^scale` vertices and
/// `edge_factor * 2^scale` sampled edges (duplicates are merged, so the
/// final edge count is somewhat lower — as in Graph500).
pub fn rmat(scale: u32, edge_factor: u32, params: RmatParams, seed: u64) -> CsrGraph {
    assert!((1..=30).contains(&scale), "scale out of supported range");
    assert!(params.d() >= 0.0, "rmat probabilities exceed 1");
    let n: u32 = 1 << scale;
    let m = (n as u64) * edge_factor as u64;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::undirected(n);
    b.reserve(m as usize);
    for _ in 0..m {
        let (mut u, mut v) = (0u32, 0u32);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < params.a {
                // top-left: both bits 0
            } else if r < params.a + params.b {
                v |= 1;
            } else if r < params.a + params.b + params.c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            b.edge(u, v);
        }
    }
    b.build()
}

/// Directed R-MAT variant (for DAG experiments the arcs are later
/// filtered by vertex order).
pub fn rmat_directed(scale: u32, edge_factor: u32, params: RmatParams, seed: u64) -> CsrGraph {
    let und = rmat(scale, edge_factor, params, seed);
    // Re-derive directed arcs: keep each sampled direction as-is by
    // re-sampling; simplest faithful approach is to rebuild from the
    // undirected arc list keeping u->v for all stored arcs.
    let n = und.num_vertices() as u32;
    let mut b = GraphBuilder::directed(n);
    for (u, v) in und.arcs() {
        b.edge(u, v);
    }
    b.build()
}

/// Makes a DAG out of any graph by keeping only arcs `u -> v` with
/// `u < v` — the standard construction for lexicographic-DFS baselines
/// (NVG-DFS is defined on DAGs).
pub fn to_dag(g: &CsrGraph) -> CsrGraph {
    let n = g.num_vertices() as u32;
    let mut b = GraphBuilder::directed(n);
    for (u, v) in g.arcs() {
        if u < v {
            b.edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::traversal::{bfs_levels, largest_component};

    #[test]
    fn rmat_deterministic() {
        let p = RmatParams::default();
        assert_eq!(rmat(10, 8, p, 1), rmat(10, 8, p, 1));
        assert_ne!(rmat(10, 8, p, 1), rmat(10, 8, p, 2));
    }

    #[test]
    fn rmat_has_heavy_tail() {
        let g = rmat(12, 8, RmatParams::default(), 42);
        let n = g.num_vertices();
        let avg = g.num_arcs() as f64 / n as f64;
        let max = g.max_degree() as f64;
        assert!(max > 10.0 * avg, "expected skew: max {max}, avg {avg}");
    }

    #[test]
    fn rmat_core_is_shallow() {
        let g = rmat(12, 16, RmatParams::default(), 7);
        // start from the hub (max-degree vertex)
        let hub = (0..g.num_vertices() as u32)
            .max_by_key(|&v| g.degree(v))
            .unwrap();
        let (_, depth) = bfs_levels(&g, hub);
        assert!(depth <= 12, "social graphs are shallow, got {depth} levels");
        let (_, giant) = largest_component(&g);
        assert!(giant > g.num_vertices() / 2);
    }

    #[test]
    fn uniform_params_give_erdos_renyi_like() {
        let p = RmatParams {
            a: 0.25,
            b: 0.25,
            c: 0.25,
        };
        let g = rmat(10, 8, p, 3);
        let avg = g.num_arcs() as f64 / g.num_vertices() as f64;
        let max = g.max_degree() as f64;
        assert!(max < 6.0 * avg, "uniform R-MAT should not be very skewed");
    }

    #[test]
    fn to_dag_is_acyclic_by_construction() {
        let g = rmat(8, 4, RmatParams::default(), 5);
        let dag = to_dag(&g);
        assert!(dag.is_directed());
        for (u, v) in dag.arcs() {
            assert!(u < v);
        }
    }

    #[test]
    #[should_panic(expected = "probabilities exceed 1")]
    fn rejects_bad_params() {
        rmat(
            5,
            2,
            RmatParams {
                a: 0.5,
                b: 0.4,
                c: 0.3,
            },
            0,
        );
    }
}
