//! Property tests for the workload generators: structural invariants of
//! each family hold across the parameter space.

use db_gen::{grid, mesh, pref, rgg, rmat};
use db_graph::traversal::{bfs_levels, largest_component};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn grid_road_structure(w in 3u32..40, h in 3u32..40, keep in 0.5f64..1.0, seed in 0u64..100) {
        let g = grid::grid_road(w, h, keep, 0, seed);
        prop_assert_eq!(g.num_vertices(), (w * h) as usize);
        // Lattice degree bound.
        prop_assert!(g.max_degree() <= 4);
        // Edge count bounded by the full lattice.
        let full = (w * (h - 1) + h * (w - 1)) as usize;
        prop_assert!(g.num_edges() <= full);
    }

    #[test]
    fn delaunay_structure(w in 2u32..30, h in 2u32..30, seed in 0u64..100) {
        let g = mesh::delaunay_mesh(w, h, seed);
        prop_assert_eq!(g.num_vertices(), (w * h) as usize);
        prop_assert!(g.max_degree() <= 8, "triangulated lattice degree bound");
        // Exactly lattice edges + one diagonal per cell.
        let expect = (w * (h - 1) + h * (w - 1) + (w - 1) * (h - 1)) as usize;
        prop_assert_eq!(g.num_edges(), expect);
        let (_, size) = largest_component(&g);
        prop_assert_eq!(size, g.num_vertices(), "meshes are connected");
    }

    #[test]
    fn bubbles_structure(nb in 1u32..30, size in 3u32..20, links in 0u32..50, seed in 0u64..100) {
        let g = mesh::bubbles(nb, size, links, seed);
        prop_assert_eq!(g.num_vertices(), (nb * size) as usize);
        // Ring + junction edges at minimum.
        prop_assert!(g.num_edges() >= (nb * size + nb - 1) as usize - 1);
        let (_, comp) = largest_component(&g);
        prop_assert_eq!(comp, g.num_vertices(), "bubble chains are connected");
    }

    #[test]
    fn rmat_structure(scale in 4u32..12, ef in 1u32..12, seed in 0u64..100) {
        let g = rmat::rmat(scale, ef, rmat::RmatParams::default(), seed);
        prop_assert_eq!(g.num_vertices(), 1usize << scale);
        prop_assert!(g.num_edges() <= (ef as usize) << scale);
        // No self loops (filtered by the generator).
        for u in 0..g.num_vertices() as u32 {
            prop_assert!(!g.has_arc(u, u));
        }
    }

    #[test]
    fn pref_attach_structure(n in 3u32..800, epv in 1u32..5, loc in 0.0f64..1.0, seed in 0u64..100) {
        let g = pref::pref_attach(n, epv, loc, seed);
        prop_assert_eq!(g.num_vertices(), n as usize);
        let (_, size) = largest_component(&g);
        prop_assert_eq!(size, n as usize, "BA graphs are connected");
        prop_assert!(g.num_edges() <= (epv as usize) * (n as usize));
    }

    #[test]
    fn citation_dag_is_topologically_ordered(n in 3u32..400, epv in 1u32..4, seed in 0u64..50) {
        let g = pref::citation_dag(n, epv, seed);
        for (u, v) in g.arcs() {
            prop_assert!(u > v, "citation arcs must point backwards in time");
        }
    }

    #[test]
    fn rgg_structure(n in 10u32..400, seed in 0u64..50) {
        let r = rgg::threshold_radius(n);
        let g = rgg::rgg(n, r, seed);
        prop_assert_eq!(g.num_vertices(), n as usize);
        for u in 0..n {
            prop_assert!(!g.has_arc(u, u));
        }
    }

    #[test]
    fn kary_tree_is_a_tree(k in 1u32..6, depth in 1u32..8) {
        let g = grid::kary_tree(k, depth);
        let n = g.num_vertices();
        prop_assert_eq!(g.num_edges(), n - 1);
        let (_, size) = largest_component(&g);
        prop_assert_eq!(size, n);
        let (_, levels) = bfs_levels(&g, 0);
        prop_assert_eq!(levels as u64, depth as u64);
    }
}
