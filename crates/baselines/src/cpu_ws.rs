//! CPU work-stealing DFS baselines: CKL-PDFS and ACR-PDFS.
//!
//! Both run on the simulated 64-core Xeon Max (Table 1) via the
//! discrete-event core, with each core as an agent owning a private,
//! unbounded stack (CPU memory is not the constraint it is on GPUs).
//! Both report **reachability only** (`visited`, Table 2).
//!
//! * **CKL-PDFS** (Cong, Kodali, Krishnamoorthy, Lea, Saraswat, Wen —
//!   "Solving Large, Irregular Graph Problems Using Adaptive
//!   Work-Stealing", ICPP 2008): per-worker deques with *adaptive*
//!   steal-half-from-the-bottom; visited checks are plain reads with a
//!   CAS only on claim.
//! * **ACR-PDFS** (Acar, Charguéraud, Rainey — "A work-efficient
//!   algorithm for parallel unordered depth-first search", SC 2015):
//!   also steal-half, but the work-efficiency guarantee costs extra
//!   per-edge bookkeeping (vertex ownership handoff), modelled as a
//!   constant extra per-edge charge, and steals are coordinated with the
//!   victim (an extra memory round trip). The paper measures ACR ≈ 25%
//!   slower than CKL on average (Fig. 5 shows 1.37× vs 1.83× DiggerBees
//!   speedups); both properties follow from these two charges.

use crate::run::BaselineRun;
use db_gpu_sim::{Des, MachineModel, MemPipeline, SimStats};
use db_graph::{CsrGraph, VertexId};
use db_trace::{EventKind, NullTracer, PhaseKind, TraceEvent, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Records an event with CPU-baseline provenance: each worker core is
/// its own "block" (there is no warp hierarchy), timestamps are
/// simulated cycles. Folds away entirely under [`NullTracer`].
#[inline(always)]
fn emit<T: Tracer>(tracer: &T, cycle: u64, worker: u32, kind: EventKind) {
    if T::ENABLED {
        tracer.record(TraceEvent {
            cycle,
            block: worker,
            warp: 0,
            kind,
        });
    }
}

/// Which CPU baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpuWsStyle {
    /// Cong et al. adaptive work stealing.
    Ckl,
    /// Acar et al. work-efficient unordered DFS.
    Acr,
}

/// Configuration for the CPU work-stealing engines.
#[derive(Debug, Clone, Copy)]
pub struct CpuWsConfig {
    /// Worker (core) count; 0 means "use the machine's core count".
    pub workers: u32,
    /// Minimum victim stack size to steal from.
    pub steal_cutoff: u32,
    /// Edges examined per simulated event (amortization granularity).
    pub chunk: u32,
    /// RNG seed for victim selection.
    pub seed: u64,
}

impl Default for CpuWsConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            steal_cutoff: 4,
            chunk: 16,
            seed: 0xc0ffee,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    Working,
    IdleScan,
    Reserve { victim: u32 },
}

struct Worker {
    stack: Vec<(u32, u32)>,
    phase: Phase,
    backoff: u64,
}

/// Runs CKL- or ACR-PDFS on machine `m` (normally
/// [`MachineModel::xeon_max`]).
pub fn run(
    g: &CsrGraph,
    root: VertexId,
    style: CpuWsStyle,
    cfg: &CpuWsConfig,
    m: &MachineModel,
) -> BaselineRun {
    run_traced(g, root, style, cfg, m, &NullTracer)
}

/// Like [`run`], recording events into `tracer` (worker core as block,
/// warp lane 0, simulated cycles as timestamps).
pub fn run_traced<T: Tracer>(
    g: &CsrGraph,
    root: VertexId,
    style: CpuWsStyle,
    cfg: &CpuWsConfig,
    m: &MachineModel,
    tracer: &T,
) -> BaselineRun {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let p = if cfg.workers == 0 {
        m.sm_count
    } else {
        cfg.workers
    };
    assert!(p >= 1);

    // Per-edge and per-steal charges by style (see module docs).
    let c = &m.costs;
    let edge_cost = match style {
        CpuWsStyle::Ckl => c.edge_chunk,
        CpuWsStyle::Acr => c.edge_chunk + c.edge_chunk / 3,
    };
    let steal_extra = match style {
        CpuWsStyle::Ckl => 0,
        CpuWsStyle::Acr => 2 * c.gmem_latency, // victim-coordinated split
    };

    let mut visited = vec![false; n];
    let mut workers: Vec<Worker> = (0..p)
        .map(|_| Worker {
            stack: Vec::new(),
            phase: Phase::IdleScan,
            backoff: 64,
        })
        .collect();
    visited[root as usize] = true;
    workers[0].stack.push((root, 0));
    workers[0].phase = Phase::Working;
    let mut live: u64 = 1;
    let mut finish: Option<u64> = None;
    let mut stats = SimStats::new(p as usize);
    stats.vertices_visited = 1;
    stats.tasks_per_block[0] = 1;
    stats.hot_high_water = 1; // the seeded root
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut mem = MemPipeline::new(c.random_trans_per_cycle);

    emit(
        tracer,
        0,
        0,
        EventKind::KernelPhase {
            phase: PhaseKind::Start,
        },
    );
    emit(tracer, 0, 0, EventKind::Push { vertex: root });
    let mut des = Des::new(p);
    while let Some((now, w)) = des.next() {
        let wi = w as usize;
        match workers[wi].phase {
            Phase::Working => {
                let Some(&(u, off)) = workers[wi].stack.last() else {
                    workers[wi].phase = Phase::IdleScan;
                    workers[wi].backoff = 64;
                    emit(tracer, now, w, EventKind::WarpIdle);
                    des.yield_for(w, c.smem_op);
                    continue;
                };
                let row = g.neighbors(u);
                let deg = row.len() as u32;
                if off >= deg {
                    workers[wi].stack.pop();
                    emit(tracer, now, w, EventKind::Pop { vertex: u });
                    live -= 1;
                    if live == 0 && finish.is_none() {
                        finish = Some(now + c.smem_op);
                    }
                    des.yield_for(w, c.smem_op);
                    continue;
                }
                let chunk_end = (off + cfg.chunk).min(deg);
                let mut found = None;
                for i in off..chunk_end {
                    let v = row[i as usize];
                    if !visited[v as usize] {
                        found = Some((v, i));
                        break;
                    }
                }
                match found {
                    Some((v, i)) => {
                        visited[v as usize] = true;
                        stats.vertices_visited += 1;
                        stats.edges_traversed += (i + 1 - off) as u64;
                        stats.tasks_per_block[wi] += 1;
                        *workers[wi].stack.last_mut().expect("nonempty") = (u, i + 1);
                        workers[wi].stack.push((v, 0));
                        stats.hot_high_water =
                            stats.hot_high_water.max(workers[wi].stack.len() as u64);
                        emit(tracer, now, w, EventKind::Push { vertex: v });
                        live += 1;
                        // Dependent-miss chain per discovery: visited CAS,
                        // the new vertex's row_ptr fetch, and the parent /
                        // frontier cache-line write, plus per-edge probes.
                        let scanned = (i + 1 - off) as u64;
                        let cost = scanned * edge_cost
                            + c.atomic_global
                            + 2 * c.gmem_latency
                            + 2 * c.smem_op
                            + mem.charge(now, scanned + 3);
                        des.yield_for(w, cost);
                    }
                    None => {
                        stats.edges_traversed += (chunk_end - off) as u64;
                        *workers[wi].stack.last_mut().expect("nonempty") = (u, chunk_end);
                        let scanned = (chunk_end - off) as u64;
                        des.yield_for(
                            w,
                            scanned * edge_cost + c.smem_op + mem.charge(now, scanned + 1),
                        );
                    }
                }
            }
            Phase::IdleScan => {
                if live == 0 {
                    continue; // park
                }
                // Random victim probing (both papers probe random peers).
                let mut victim = None;
                for _ in 0..4 {
                    let cand = rng.gen_range(0..p);
                    if cand != w && workers[cand as usize].stack.len() >= cfg.steal_cutoff as usize
                    {
                        victim = Some(cand);
                        break;
                    }
                }
                match victim {
                    Some(v) => {
                        workers[wi].phase = Phase::Reserve { victim: v };
                        des.yield_for(w, 4 * c.steal_scan);
                    }
                    None => {
                        let cost = 4 * c.steal_scan + workers[wi].backoff;
                        workers[wi].backoff = (workers[wi].backoff * 2).min(4096);
                        des.yield_for(w, cost);
                    }
                }
            }
            Phase::Reserve { victim } => {
                let vlen = workers[victim as usize].stack.len();
                if vlen < cfg.steal_cutoff as usize {
                    stats.steal_failures += 1;
                    emit(tracer, now, w, EventKind::StealFail { victim });
                    workers[wi].phase = Phase::IdleScan;
                    des.yield_for(w, c.atomic_global);
                    continue;
                }
                // Steal half from the bottom (oldest entries — the
                // largest unexplored subtrees).
                let k = vlen / 2;
                let taken: Vec<(u32, u32)> = workers[victim as usize].stack.drain(..k).collect();
                workers[wi].stack.extend(taken);
                stats.hot_high_water = stats.hot_high_water.max(workers[wi].stack.len() as u64);
                stats.steals_intra += 1;
                emit(
                    tracer,
                    now,
                    w,
                    EventKind::StealInter {
                        victim_block: victim,
                        entries: k as u32,
                    },
                );
                workers[wi].phase = Phase::Working;
                workers[wi].backoff = 64;
                des.yield_for(
                    w,
                    c.atomic_global
                        + steal_extra
                        + k as u64 * c.copy_per_entry
                        + mem.charge(now, 1 + k as u64 / 16),
                );
            }
        }
    }

    let cycles = finish.unwrap_or_else(|| des.horizon());
    emit(
        tracer,
        cycles,
        0,
        EventKind::KernelPhase {
            phase: PhaseKind::Finish,
        },
    );
    stats.cycles = cycles;
    stats.record_to(
        db_metrics::global(),
        match style {
            CpuWsStyle::Ckl => "cpu_ws_ckl",
            CpuWsStyle::Acr => "cpu_ws_acr",
        },
    );
    let edges = stats.edges_traversed;
    BaselineRun {
        visited,
        parent: None, // Table 2: CKL/ACR report reachability only
        level: None,
        order: None,
        cycles: 0,
        edges_traversed: edges,
        mteps: 0.0,
    }
    .with_cost(m, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::validate::check_reachability;
    use db_graph::GraphBuilder;

    fn grid(w: u32, h: u32) -> CsrGraph {
        let mut b = GraphBuilder::undirected(w * h);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.edge(y * w + x, y * w + x + 1);
                }
                if y + 1 < h {
                    b.edge(y * w + x, (y + 1) * w + x);
                }
            }
        }
        b.build()
    }

    #[test]
    fn ckl_visits_reachable_set() {
        let g = grid(40, 40);
        let m = MachineModel::xeon_max();
        let r = run(&g, 0, CpuWsStyle::Ckl, &CpuWsConfig::default(), &m);
        check_reachability(&g, 0, &r.visited).unwrap();
        assert!(r.parent.is_none(), "CKL reports reachability only");
        assert!(r.mteps > 0.0);
    }

    #[test]
    fn acr_visits_reachable_set() {
        let g = grid(40, 40);
        let m = MachineModel::xeon_max();
        let r = run(&g, 0, CpuWsStyle::Acr, &CpuWsConfig::default(), &m);
        check_reachability(&g, 0, &r.visited).unwrap();
    }

    #[test]
    fn ckl_outpaces_acr() {
        // The work-efficiency overhead makes ACR slower on the same
        // input — the Fig. 5 ordering.
        let g = grid(80, 80);
        let m = MachineModel::xeon_max();
        let cfg = CpuWsConfig::default();
        let ckl = run(&g, 0, CpuWsStyle::Ckl, &cfg, &m);
        let acr = run(&g, 0, CpuWsStyle::Acr, &cfg, &m);
        assert!(
            ckl.mteps > acr.mteps,
            "CKL {} <= ACR {}",
            ckl.mteps,
            acr.mteps
        );
    }

    #[test]
    fn stealing_spreads_work() {
        let g = grid(60, 60);
        let m = MachineModel::xeon_max();
        let r = run(&g, 0, CpuWsStyle::Ckl, &CpuWsConfig::default(), &m);
        assert!(r.cycles > 0);
        check_reachability(&g, 0, &r.visited).unwrap();
    }

    #[test]
    fn deterministic() {
        let g = grid(30, 30);
        let m = MachineModel::xeon_max();
        let cfg = CpuWsConfig::default();
        let a = run(&g, 0, CpuWsStyle::Ckl, &cfg, &m);
        let b = run(&g, 0, CpuWsStyle::Ckl, &cfg, &m);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.visited, b.visited);
    }

    #[test]
    fn single_worker_degenerates_to_serial() {
        let g = grid(10, 10);
        let m = MachineModel::xeon_max();
        let cfg = CpuWsConfig {
            workers: 1,
            ..Default::default()
        };
        let r = run(&g, 0, CpuWsStyle::Ckl, &cfg, &m);
        check_reachability(&g, 0, &r.visited).unwrap();
    }

    #[test]
    fn parallel_beats_single_worker_on_big_graphs() {
        let g = grid(100, 100);
        let m = MachineModel::xeon_max();
        let one = run(
            &g,
            0,
            CpuWsStyle::Ckl,
            &CpuWsConfig {
                workers: 1,
                ..Default::default()
            },
            &m,
        );
        let many = run(&g, 0, CpuWsStyle::Ckl, &CpuWsConfig::default(), &m);
        assert!(
            many.cycles * 4 < one.cycles,
            "64 workers should give >4x: {} vs {}",
            many.cycles,
            one.cycles
        );
    }
}
