//! Generic work-stealing DFS on `crossbeam-deque` — an *extra* ablation
//! baseline (not from the paper): what you get by dropping the paper's
//! structured two-level/hierarchical design and handing the same
//! traversal to an off-the-shelf Chase-Lev scheduler with flat random
//! stealing. Used by `db-bench`'s scheduler ablation and as a second
//! independently implemented parallel DFS for cross-validation of the
//! native engine.

use crate::run::BaselineRun;
use crossbeam::deque::{Steal, Stealer, Worker};
use db_graph::{CsrGraph, VertexId, NO_PARENT};
use db_trace::{EventKind, NullTracer, TraceEvent, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Records an event with flat-scheduler provenance: each deque worker
/// thread is its own "block" (warp lane 0), timestamps are nanoseconds
/// since traversal start. Folds away entirely under [`NullTracer`].
#[inline(always)]
fn emit<T: Tracer>(tracer: &T, t0: Instant, tid: u32, kind: EventKind) {
    if T::ENABLED {
        tracer.record(TraceEvent {
            cycle: t0.elapsed().as_nanos() as u64,
            block: tid,
            warp: 0,
            kind,
        });
    }
}

/// Result of the crossbeam-deque DFS.
#[derive(Debug, Clone)]
pub struct DequeDfsResult {
    /// Reachability flags.
    pub visited: Vec<bool>,
    /// DFS-forest parents.
    pub parent: Vec<u32>,
    /// Wall-clock duration.
    pub wall: Duration,
    /// Adjacency entries examined.
    pub edges_traversed: u64,
    /// Successful steals.
    pub steals: u64,
}

impl DequeDfsResult {
    /// Converts into the common baseline shape (no simulated cycles).
    pub fn into_run(self) -> BaselineRun {
        BaselineRun {
            visited: self.visited,
            parent: Some(self.parent),
            level: None,
            order: None,
            cycles: 0,
            edges_traversed: self.edges_traversed,
            mteps: 0.0,
        }
    }
}

/// Runs parallel DFS from `root` with `threads` workers on crossbeam
/// deques (LIFO owner end, FIFO steals — the classic Chase-Lev split).
pub fn run(g: &CsrGraph, root: VertexId, threads: u32, seed: u64) -> DequeDfsResult {
    run_traced(g, root, threads, seed, &NullTracer)
}

/// Like [`run`], recording events into `tracer` (worker thread as
/// block, warp lane 0, nanoseconds since start as timestamps).
pub fn run_traced<T: Tracer>(
    g: &CsrGraph,
    root: VertexId,
    threads: u32,
    seed: u64,
    tracer: &T,
) -> DequeDfsResult {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let threads = threads.max(1);

    let visited: Vec<AtomicU8> = (0..n).map(|_| AtomicU8::new(0)).collect();
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect();
    let live = AtomicI64::new(1);
    let done = AtomicBool::new(false);
    let edges = AtomicU64::new(0);
    let steals = AtomicU64::new(0);

    let workers: Vec<Worker<(u32, u32)>> = (0..threads).map(|_| Worker::new_lifo()).collect();
    let stealers: Vec<Stealer<(u32, u32)>> = workers.iter().map(|w| w.stealer()).collect();

    visited[root as usize].store(1, Ordering::Release);
    workers[0].push((root, 0));

    let start = Instant::now();
    emit(
        tracer,
        start,
        0,
        EventKind::KernelPhase {
            phase: db_trace::PhaseKind::Start,
        },
    );
    emit(tracer, start, 0, EventKind::Push { vertex: root });
    crossbeam::scope(|scope| {
        for (tid, worker) in workers.into_iter().enumerate() {
            let visited = &visited;
            let parent = &parent;
            let live = &live;
            let done = &done;
            let edges = &edges;
            let steals = &steals;
            let stealers = &stealers;
            scope.spawn(move |_| {
                let mut rng =
                    SmallRng::seed_from_u64(seed ^ (tid as u64).wrapping_mul(0x9e3779b97f4a7c15));
                let mut local_edges = 0u64;
                let mut backoff = 0u32;
                loop {
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let task = worker.pop().or_else(|| {
                        // Flat random stealing.
                        for _ in 0..2 * stealers.len() {
                            let v = rng.gen_range(0..stealers.len());
                            if v == tid {
                                continue;
                            }
                            if let Steal::Success(t) = stealers[v].steal() {
                                // relaxed-ok: statistics counter, read after join
                                steals.fetch_add(1, Ordering::Relaxed);
                                emit(
                                    tracer,
                                    start,
                                    tid as u32,
                                    EventKind::StealInter {
                                        victim_block: v as u32,
                                        entries: 1,
                                    },
                                );
                                return Some(t);
                            }
                        }
                        None
                    });
                    let Some((u, off)) = task else {
                        if backoff == 0 {
                            emit(tracer, start, tid as u32, EventKind::WarpIdle);
                        }
                        backoff = (backoff + 1).min(16);
                        if backoff < 4 {
                            std::hint::spin_loop();
                        } else {
                            std::thread::yield_now();
                        }
                        continue;
                    };
                    backoff = 0;
                    let row = g.neighbors(u);
                    let deg = row.len() as u32;
                    let mut i = off;
                    let mut child = None;
                    while i < deg {
                        let v = row[i as usize];
                        i += 1;
                        // relaxed-ok: optimistic pre-check; the CAS below decides
                        if visited[v as usize].load(Ordering::Relaxed) != 0 {
                            continue;
                        }
                        // relaxed-ok: CAS failure means another worker won the
                        // claim; we read nothing it published, so no acquire
                        if visited[v as usize]
                            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
                            .is_ok()
                        {
                            parent[v as usize].store(u, Ordering::Release);
                            child = Some(v);
                            break;
                        }
                    }
                    local_edges += (i - off) as u64;
                    if let Some(v) = child {
                        // Count the new entry BEFORE publishing it: a
                        // thief may consume the child instantly, and the
                        // live counter must never under-count while the
                        // parent continuation exists.
                        live.fetch_add(1, Ordering::AcqRel);
                        // Parent entry continues, child goes on top.
                        worker.push((u, i));
                        worker.push((v, 0));
                        emit(tracer, start, tid as u32, EventKind::Push { vertex: v });
                    } else {
                        emit(tracer, start, tid as u32, EventKind::Pop { vertex: u });
                        if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                            done.store(true, Ordering::Release);
                        }
                    }
                }
                // relaxed-ok: statistics counter, read after join
                edges.fetch_add(local_edges, Ordering::Relaxed);
            });
        }
    })
    .expect("worker panicked");
    let wall = start.elapsed();
    emit(
        tracer,
        start,
        0,
        EventKind::KernelPhase {
            phase: db_trace::PhaseKind::Finish,
        },
    );

    let result = DequeDfsResult {
        visited: visited
            .iter()
            .map(|a| a.load(Ordering::Acquire) != 0)
            .collect(),
        parent: parent.iter().map(|a| a.load(Ordering::Acquire)).collect(),
        wall,
        edges_traversed: edges.load(Ordering::Relaxed), // relaxed-ok: after join
        steals: steals.load(Ordering::Relaxed),         // relaxed-ok: after join
    };

    // No SimStats here (the flat scheduler tracks its own few counters),
    // so record the global `db_engine_*` series directly. Chase-Lev
    // steals cross worker deques, which maps to the "inter" level (and
    // matches the StealInter trace events above).
    let reg = db_metrics::global();
    let labels = &[("engine", "deque_dfs")][..];
    reg.counter(
        "db_engine_runs_total",
        "Completed traversal runs per engine",
        labels,
    )
    .inc();
    reg.counter(
        "db_engine_vertices_visited_total",
        "Vertices discovered (visited-CAS wins)",
        labels,
    )
    .add(result.visited.iter().filter(|&&v| v).count() as u64);
    reg.counter(
        "db_engine_edges_traversed_total",
        "Adjacency entries examined (TEPS numerator)",
        labels,
    )
    .add(result.edges_traversed);
    reg.counter(
        "db_engine_steals_total",
        "Successful steals by level (intra-block ring vs inter-block ColdSeg)",
        &[("engine", "deque_dfs"), ("level", "inter")],
    )
    .add(result.steals);

    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::validate::{check_reachability, check_spanning_tree};
    use db_graph::GraphBuilder;

    fn grid(w: u32, h: u32) -> CsrGraph {
        let mut b = GraphBuilder::undirected(w * h);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.edge(y * w + x, y * w + x + 1);
                }
                if y + 1 < h {
                    b.edge(y * w + x, (y + 1) * w + x);
                }
            }
        }
        b.build()
    }

    #[test]
    fn visits_reachable_set_and_builds_tree() {
        let g = grid(40, 40);
        let r = run(&g, 0, 4, 42);
        check_reachability(&g, 0, &r.visited).unwrap();
        check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
        assert_eq!(r.edges_traversed, g.num_arcs() as u64);
    }

    #[test]
    fn single_thread_works() {
        let g = grid(10, 10);
        let r = run(&g, 5, 1, 1);
        check_spanning_tree(&g, 5, &r.visited, &r.parent).unwrap();
        assert_eq!(r.steals, 0);
    }

    #[test]
    fn disconnected_untouched() {
        let mut b = GraphBuilder::undirected(6);
        b.edge(0, 1);
        b.edge(3, 4);
        let g = b.build();
        let r = run(&g, 0, 2, 7);
        assert!(!r.visited[3] && !r.visited[4]);
    }

    #[test]
    fn termination_race_regression() {
        // Regression: `live` must be incremented before the child entry
        // is published, or a fast thief finishing the child can zero the
        // counter while the parent continuation is still live, cutting
        // the traversal short. Deep paths with several threads provoke
        // the original schedule.
        let n = 3000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        for seed in 0..6 {
            let r = run(&g, 0, 3, seed);
            check_reachability(&g, 0, &r.visited).unwrap();
        }
    }

    #[test]
    fn repeated_runs_stay_valid() {
        let g = grid(25, 25);
        for seed in 0..4 {
            let r = run(&g, 0, 3, seed);
            check_reachability(&g, 0, &r.visited).unwrap();
            check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
        }
    }
}
