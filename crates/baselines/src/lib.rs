//! # db-baselines — every comparison point of the DiggerBees evaluation
//!
//! The paper compares against five systems (Table 1/2). Each is
//! reimplemented here from its published description, with its native
//! output semantics preserved:
//!
//! | module | method | platform | outputs |
//! |---|---|---|---|
//! | [`serial`] | serial stack DFS (Alg. 1) | 1 core | visited + tree + order |
//! | [`cpu_ws`] | CKL-PDFS (Cong et al., ICPP'08) | 64-core CPU | visited |
//! | [`cpu_ws`] | ACR-PDFS (Acar et al., SC'15) | 64-core CPU | visited |
//! | [`nvg`] | NVG-DFS (Naumov et al., IA3'17) | GPU | visited + *ordered* tree |
//! | [`bfs`] | Gunrock BFS (Wang et al., PPoPP'16) | GPU | visited + level |
//! | [`bfs`] | BerryBees BFS (Niu & Casas, PPoPP'25) | GPU | visited + level |
//! | [`deque_dfs`] | crossbeam-deque DFS (extra ablation) | native threads | visited + tree |
//!
//! CPU baselines execute on the simulated 64-core Xeon Max model; GPU
//! baselines on the simulated A100/H100 (see `db-gpu-sim` and DESIGN.md
//! §1 for the hardware substitution). All engines are deterministic.
//!
//! [`run::BaselineRun`] is the common result shape used by the benchmark
//! harness; methods that can fail (NVG-DFS exhausts memory on deep
//! graphs, by design of its path-tracking labels) return an error that
//! the harness records as a failed run, mirroring "NVG-DFS … failing on
//! 44 out of 234 graphs" (§4.2).

#![warn(missing_docs)]

pub mod bfs;
pub mod cpu_ws;
pub mod deque_dfs;
pub mod nvg;
pub mod run;
pub mod serial;

pub use run::BaselineRun;
