//! Serial DFS baseline — Algorithm 1 on one simulated core.
//!
//! Mostly a reference point for correctness and for the speedup
//! denominators in the harness; the paper itself does not report serial
//! numbers, but every parallel method must beat this to be interesting.

use crate::run::BaselineRun;
use db_gpu_sim::MachineModel;
use db_graph::{serial_dfs, CsrGraph, VertexId};

/// Runs serial DFS and prices it on one core of `m`: each adjacency
/// entry costs `edge_chunk` (per-edge on CPUs) and each vertex pays one
/// global-latency visit plus stack bookkeeping.
pub fn run(g: &CsrGraph, root: VertexId, m: &MachineModel) -> BaselineRun {
    let out = serial_dfs(g, root);
    let edges = out.traversed_edges(g);
    let vertices = out.num_visited() as u64;
    let c = &m.costs;
    let cycles = edges * c.edge_chunk + vertices * (c.gmem_latency + 2 * c.smem_op);
    BaselineRun {
        visited: out.visited,
        parent: Some(out.parent),
        level: None,
        order: Some(out.order),
        cycles: 0,
        edges_traversed: edges,
        mteps: 0.0,
    }
    .with_cost(m, cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::GraphBuilder;

    #[test]
    fn serial_baseline_outputs_everything() {
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (1, 2), (2, 3)])
            .build();
        let r = run(&g, 0, &MachineModel::xeon_max());
        assert_eq!(r.num_visited(), 4);
        assert!(r.parent.is_some());
        assert!(r.order.is_some());
        assert!(r.cycles > 0);
        assert!(r.mteps > 0.0);
    }
}
