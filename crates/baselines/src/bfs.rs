//! GPU BFS baselines: Gunrock-style push BFS and BerryBees-style
//! direction-optimizing BFS.
//!
//! Both are level-synchronous: one frontier-expansion kernel (plus
//! bookkeeping) per level, so cycles come from the
//! [`db_gpu_sim::level_sync`] model applied to the *actual* per-level
//! work of the traversal. Outputs are `visited` + `level` (Table 2).
//!
//! * **Gunrock** (Wang et al., PPoPP 2016): push-based advance — every
//!   level scans the full adjacency of the frontier.
//! * **BerryBees** (Niu & Casas, PPoPP 2025): direction-optimizing
//!   (Beamer-style push/pull switching) with bit-tensor-core frontier
//!   expansion, modelled as a 2× edge-throughput advantage while pulling
//!   and an early-exit factor on bottom-up scans.
//!
//! The shape the paper leans on (§4.3) falls out: on 10-level social
//! graphs the fixed per-level cost vanishes and BFS streams at memory
//! bandwidth; on 17,346-level road networks the per-level overhead
//! dominates and DFS wins by an order of magnitude.

use crate::run::BaselineRun;
use db_gpu_sim::level_sync::{level_cycles, LevelWork};
use db_gpu_sim::MachineModel;
use db_graph::{CsrGraph, VertexId};

/// Which BFS baseline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BfsFlavor {
    /// Push-based advance every level.
    Gunrock,
    /// Direction-optimizing with bit-level frontier processing.
    BerryBees,
}

/// Runs the selected BFS baseline on machine `m`.
pub fn run(g: &CsrGraph, root: VertexId, flavor: BfsFlavor, m: &MachineModel) -> BaselineRun {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");
    let total_arcs: u64 = g.num_arcs() as u64;

    let mut level = vec![u32::MAX; n];
    level[root as usize] = 0;
    let mut frontier = vec![root];
    let mut depth = 0u32;
    let mut cycles: u64 = 0;
    let mut explored_arcs: u64 = g.degree(root) as u64;
    let mut visited_count: u64 = 1;

    let mut next = Vec::new();
    while !frontier.is_empty() {
        depth += 1;
        // Snapshot: adjacency already owned by visited vertices *before*
        // this level expands (the direction-optimizing decision is made
        // at level start).
        let explored_at_start = explored_arcs;
        let unvisited_vertices = n as u64 - visited_count;
        // The traversal itself (identical for both flavors).
        let mut frontier_edges: u64 = 0;
        for &u in &frontier {
            frontier_edges += g.degree(u) as u64;
            for &v in g.neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = depth;
                    explored_arcs += g.degree(v) as u64;
                    visited_count += 1;
                    next.push(v);
                }
            }
        }

        // Cost accounting per flavor.
        let work = match flavor {
            BfsFlavor::Gunrock => LevelWork {
                frontier_vertices: frontier.len() as u64,
                scanned_edges: frontier_edges,
            },
            BfsFlavor::BerryBees => {
                // Direction-optimizing choice (Beamer heuristic): pull
                // when the frontier's adjacency rivals the unexplored
                // remainder; a bottom-up level scans ~half the
                // unexplored adjacency (early exit on the first visited
                // parent). The bit-tensor-core datapath raises edge
                // throughput by ~1.6x, modelled as a scan discount.
                let unexplored = total_arcs.saturating_sub(explored_at_start);
                let push = frontier_edges;
                // A bottom-up pass probes every unvisited vertex at
                // least once, on top of scanning ~half the unexplored
                // adjacency (early exit on the first visited parent).
                let pull = (unexplored / 2).max(unvisited_vertices);
                let scanned = if push > unexplored / 14 {
                    pull.min(push)
                } else {
                    push
                };
                LevelWork {
                    frontier_vertices: frontier.len() as u64,
                    scanned_edges: (scanned as f64 / 1.6) as u64,
                }
            }
        };
        cycles += level_cycles(m, &work);
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }

    let visited: Vec<bool> = level.iter().map(|&l| l != u32::MAX).collect();
    let edges: u64 = (0..n as u32)
        .filter(|&v| visited[v as usize])
        .map(|v| g.degree(v) as u64)
        .sum();
    BaselineRun {
        visited,
        parent: None, // Table 2: BFS baselines report visited + level
        level: Some(level),
        order: None,
        cycles: 0,
        edges_traversed: edges,
        mteps: 0.0,
    }
    .with_cost(m, cycles)
}

/// Convenience: runs both flavors and returns the better-performing one
/// with its name — the "Best BFS" series of Fig. 6.
pub fn best_bfs(g: &CsrGraph, root: VertexId, m: &MachineModel) -> (&'static str, BaselineRun) {
    let gunrock = run(g, root, BfsFlavor::Gunrock, m);
    let berry = run(g, root, BfsFlavor::BerryBees, m);
    if berry.mteps >= gunrock.mteps {
        ("BerryBees", berry)
    } else {
        ("Gunrock", gunrock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::traversal::bfs_levels;
    use db_graph::validate::check_reachability;
    use db_graph::GraphBuilder;

    fn h100() -> MachineModel {
        MachineModel::h100()
    }

    fn star_social(n: u32) -> CsrGraph {
        // hub-heavy shallow graph
        let mut b = GraphBuilder::undirected(n);
        for i in 1..n {
            b.edge(0, i);
            b.edge(i, (i * 7 % n).max(1));
        }
        b.build()
    }

    fn path(n: u32) -> CsrGraph {
        GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build()
    }

    #[test]
    fn levels_match_reference_bfs() {
        let g = star_social(500);
        let r = run(&g, 0, BfsFlavor::Gunrock, &h100());
        let (want, _) = bfs_levels(&g, 0);
        assert_eq!(r.level.as_ref().unwrap(), &want);
        check_reachability(&g, 0, &r.visited).unwrap();
    }

    #[test]
    fn berrybees_levels_identical_to_gunrock() {
        let g = star_social(300);
        let a = run(&g, 0, BfsFlavor::Gunrock, &h100());
        let b = run(&g, 0, BfsFlavor::BerryBees, &h100());
        assert_eq!(a.level, b.level);
        assert_eq!(a.visited, b.visited);
    }

    #[test]
    fn berrybees_wins_on_social_graphs() {
        let g = star_social(20_000);
        let (name, _) = best_bfs(&g, 0, &h100());
        assert_eq!(
            name, "BerryBees",
            "direction optimization should win on hub graphs"
        );
    }

    #[test]
    fn deep_paths_are_slow_for_bfs() {
        // Same edge count, wildly different level counts.
        let deep = path(4000);
        let shallow = star_social(4000);
        let rd = run(&deep, 0, BfsFlavor::Gunrock, &h100());
        let rs = run(&shallow, 0, BfsFlavor::Gunrock, &h100());
        assert!(
            rd.mteps * 10.0 < rs.mteps,
            "deep {} vs shallow {} MTEPS",
            rd.mteps,
            rs.mteps
        );
    }

    #[test]
    fn disconnected_vertices_unvisited() {
        let mut b = GraphBuilder::undirected(10);
        b.edge(0, 1);
        b.edge(3, 4);
        let g = b.build();
        let r = run(&g, 0, BfsFlavor::BerryBees, &h100());
        assert!(!r.visited[3]);
        assert_eq!(r.level.as_ref().unwrap()[3], u32::MAX);
    }

    #[test]
    fn best_bfs_returns_max() {
        let g = path(2000);
        let (_, best) = best_bfs(&g, 0, &h100());
        let gun = run(&g, 0, BfsFlavor::Gunrock, &h100());
        let berry = run(&g, 0, BfsFlavor::BerryBees, &h100());
        assert!(best.mteps >= gun.mteps.max(berry.mteps) - 1e-9);
    }
}
