//! NVG-DFS — Naumov, Vrielink & Garland, "Parallel Depth-First Search
//! for Directed Acyclic Graphs" (IA3 2017), reimplemented from the
//! paper's description (the original GPU code was never released; the
//! DiggerBees authors also reimplemented it — §4.1 footnote).
//!
//! The method constructs the **lexicographic** DFS tree with BFS-style
//! phases: every vertex carries a *path label* — the sequence of
//! child-ranks along its discovery path — and labels are iteratively
//! relaxed until fixpoint. The lexicographically minimal simple-path
//! label of a vertex is exactly its serial-DFS discovery path, so the
//! fixpoint reproduces Algorithm 1's tree and ordering (our integration
//! tests check this against `serial_dfs`).
//!
//! The design's two documented pathologies fall out naturally:
//!
//! * **Memory**: labels are O(depth) words per vertex; deep graphs blow
//!   through any budget. We enforce a configurable budget and return
//!   [`crate::run::RunError`] when exceeded — this is the mechanism
//!   behind "NVG-DFS … failing on 44 out of 234 graphs" (§4.2) and its
//!   0.0-MTEPS entries in Fig. 6.
//! * **Time**: the fixpoint needs ~depth level-synchronous rounds, each
//!   streaming edges *and* comparing/copying labels, so it is orders of
//!   magnitude slower than unordered DFS — the 30.18× average gap.

use crate::run::{BaselineRun, RunError};
use db_gpu_sim::level_sync::{total_cycles, LevelWork};
use db_gpu_sim::MachineModel;
use db_graph::{CsrGraph, VertexId, NO_PARENT};

/// Configuration for NVG-DFS.
#[derive(Debug, Clone, Copy)]
pub struct NvgConfig {
    /// Label-storage budget in bytes. The default (256 MB) is the
    /// paper's 80 GB GPU scaled by roughly the same factor as the
    /// graphs themselves, so the failure profile matches §4.2's.
    pub memory_budget_bytes: u64,
    /// Relaxation work budget (label words processed). Deep-DFS graphs
    /// make the fixpoint crawl for hours; the evaluation kills such runs
    /// the same way the paper's harness bounds each method's runtime.
    pub work_budget_words: u64,
}

impl Default for NvgConfig {
    fn default() -> Self {
        Self {
            memory_budget_bytes: 256 << 20,
            work_budget_words: 400_000_000,
        }
    }
}

/// `label(u) ++ [rank] < lv` under lexicographic order with
/// prefix-less-than-extension, without building the candidate.
fn candidate_less(lu: &[u32], rank: u32, lv: &[u32]) -> bool {
    let common = lu.len().min(lv.len());
    for k in 0..common {
        match lu[k].cmp(&lv[k]) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    if lu.len() < lv.len() {
        // candidate = lu ++ [rank]; lv continues with lv[lu.len()]
        match rank.cmp(&lv[lu.len()]) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            // equal: candidate has length lu.len()+1 <= lv.len(); it is
            // a prefix (or equal), hence <= lv; strictly less only if
            // shorter.
            std::cmp::Ordering::Equal => lu.len() + 1 < lv.len(),
        }
    } else {
        // lu is at least as long as lv and equal on the common prefix:
        // lv is a prefix of the candidate, so candidate >= lv.
        false
    }
}

/// Runs NVG-DFS on `g` from `root` under machine `m`.
///
/// # Errors
///
/// Returns an error when the path labels exceed the memory budget.
pub fn run(
    g: &CsrGraph,
    root: VertexId,
    cfg: &NvgConfig,
    m: &MachineModel,
) -> Result<BaselineRun, RunError> {
    let n = g.num_vertices();
    assert!((root as usize) < n, "root out of range");

    let mut label: Vec<Option<Box<[u32]>>> = vec![None; n];
    let mut parent = vec![NO_PARENT; n];
    label[root as usize] = Some(Box::new([]));
    let mut frontier = vec![root];
    let mut label_bytes: u64 = 0;
    let mut total_work: u64 = 0;
    let mut levels: Vec<LevelWork> = Vec::new();

    while !frontier.is_empty() {
        let mut next: Vec<u32> = Vec::new();
        let mut scanned_edges: u64 = 0;
        let mut label_words: u64 = 0;
        for &u in &frontier {
            // Clone the label once per frontier vertex (the kernels keep
            // labels in global memory; we charge the words they touch).
            let lu = label[u as usize]
                .clone()
                .expect("frontier vertex has a label");
            for (i, &v) in g.neighbors(u).iter().enumerate() {
                scanned_edges += 1;
                // Candidate label = label(u) ++ [rank of v in u's row],
                // compared without materializing it.
                let better = match &label[v as usize] {
                    None => true,
                    Some(lv) => {
                        label_words += lv.len().min(lu.len()) as u64 + 1;
                        candidate_less(&lu, i as u32, lv)
                    }
                };
                if better {
                    let mut cand = Vec::with_capacity(lu.len() + 1);
                    cand.extend_from_slice(&lu);
                    cand.push(i as u32);
                    label_words += cand.len() as u64;
                    if let Some(old) = &label[v as usize] {
                        label_bytes = label_bytes.saturating_sub(4 * old.len() as u64);
                    }
                    label_bytes += 4 * cand.len() as u64;
                    label[v as usize] = Some(cand.into_boxed_slice());
                    parent[v as usize] = u;
                    next.push(v);
                    if label_bytes > cfg.memory_budget_bytes {
                        return Err(RunError {
                            reason: format!(
                                "NVG-DFS path labels exceeded the memory budget: \
                                 {} > {} bytes",
                                label_bytes, cfg.memory_budget_bytes
                            ),
                        });
                    }
                }
            }
        }
        if label_bytes > cfg.memory_budget_bytes {
            return Err(RunError {
                reason: format!(
                    "NVG-DFS path labels exceeded the memory budget: {} > {} bytes",
                    label_bytes, cfg.memory_budget_bytes
                ),
            });
        }
        total_work += scanned_edges + label_words;
        if total_work > cfg.work_budget_words {
            return Err(RunError {
                reason: format!(
                    "NVG-DFS exceeded the relaxation work budget ({} label words)",
                    cfg.work_budget_words
                ),
            });
        }
        next.sort_unstable();
        next.dedup();
        // Naumov's phases order the next frontier by path label (child
        // ordering); charge the comparison traffic of that sort.
        let f = next.len() as u64;
        let label_total: u64 = next
            .iter()
            .map(|&v| label[v as usize].as_ref().map_or(0, |l| l.len() as u64))
            .sum();
        let avg_label = label_total.checked_div(f).unwrap_or(0);
        let sort_words = f * (64 - f.leading_zeros() as u64) * avg_label.max(1);
        levels.push(LevelWork {
            frontier_vertices: frontier.len() as u64,
            // label traffic streams through the same memory system
            scanned_edges: scanned_edges + label_words + sort_words,
        });
        frontier = next;
    }

    let visited: Vec<bool> = label.iter().map(Option::is_some).collect();
    // Discovery order = vertices sorted by label (lexicographic).
    let mut order: Vec<u32> = (0..n as u32).filter(|&v| visited[v as usize]).collect();
    order.sort_by(|&a, &b| label[a as usize].as_ref().cmp(&label[b as usize].as_ref()));
    let edges: u64 = (0..n as u32)
        .filter(|&v| visited[v as usize])
        .map(|v| g.degree(v) as u64)
        .sum();
    let cycles = total_cycles(m, &levels);

    Ok(BaselineRun {
        visited,
        parent: Some(parent),
        level: None,
        order: Some(order),
        cycles: 0,
        edges_traversed: edges,
        mteps: 0.0,
    }
    .with_cost(m, cycles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::{serial_dfs, GraphBuilder};

    fn h100() -> MachineModel {
        MachineModel::h100()
    }

    #[test]
    fn matches_serial_dfs_on_figure1() {
        let g = GraphBuilder::undirected(6)
            .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4), (2, 5)])
            .build();
        let nvg = run(&g, 0, &NvgConfig::default(), &h100()).unwrap();
        let serial = serial_dfs(&g, 0);
        assert_eq!(nvg.order.as_ref().unwrap(), &serial.order);
        assert_eq!(nvg.parent.as_ref().unwrap(), &serial.parent);
        assert_eq!(nvg.visited, serial.visited);
    }

    #[test]
    fn matches_serial_on_dag() {
        let g = GraphBuilder::directed(7)
            .edges([
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (3, 4),
                (1, 5),
                (5, 6),
                (2, 6),
            ])
            .build();
        let nvg = run(&g, 0, &NvgConfig::default(), &h100()).unwrap();
        let serial = serial_dfs(&g, 0);
        assert_eq!(nvg.order.as_ref().unwrap(), &serial.order);
        assert_eq!(nvg.parent.as_ref().unwrap(), &serial.parent);
    }

    #[test]
    fn cycle_with_shortcut_matches_serial() {
        // a-b, a-c, c-d, d-b: DFS order a,b,d,c (see module analysis).
        let g = GraphBuilder::undirected(4)
            .edges([(0, 1), (0, 2), (2, 3), (3, 1)])
            .build();
        let nvg = run(&g, 0, &NvgConfig::default(), &h100()).unwrap();
        let serial = serial_dfs(&g, 0);
        assert_eq!(nvg.order.as_ref().unwrap(), &serial.order);
    }

    #[test]
    fn deep_graph_exhausts_memory() {
        // A path of 100k vertices: labels average ~50k words; way past
        // a tiny budget — the §4.2 failure mode.
        let n = 100_000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let cfg = NvgConfig {
            memory_budget_bytes: 1 << 20,
            ..Default::default()
        };
        let err = run(&g, 0, &cfg, &h100()).unwrap_err();
        assert!(err.reason.contains("memory budget"));
    }

    #[test]
    fn shallow_graph_fits_comfortably() {
        let g = GraphBuilder::undirected(100)
            .edges((1..100).map(|i| (0, i)))
            .build(); // star: depth 1
        let r = run(&g, 0, &NvgConfig::default(), &h100()).unwrap();
        assert_eq!(r.num_visited(), 100);
        assert!(r.mteps > 0.0);
    }

    #[test]
    fn respects_reachability() {
        let mut b = GraphBuilder::undirected(10);
        b.edge(0, 1);
        b.edge(1, 2);
        b.edge(5, 6);
        let g = b.build();
        let r = run(&g, 0, &NvgConfig::default(), &h100()).unwrap();
        assert!(r.visited[2]);
        assert!(!r.visited[5]);
    }

    #[test]
    fn ordered_semantics_cost_more_than_unordered() {
        // NVG pays per-level launches plus label traffic; even on a
        // shallow graph it must be far slower than a single streaming
        // pass over the edges.
        let n = 2000u32;
        let mut b = GraphBuilder::undirected(n);
        for i in 1..n {
            b.edge(0, i); // star: depth 1
        }
        for i in 1..n - 1 {
            b.edge(i, i + 1); // rim: forces label comparisons
        }
        let g = b.build();
        let r = run(&g, 0, &NvgConfig::default(), &h100()).unwrap();
        let single_pass = (g.num_arcs() as f64 / h100().costs.stream_edges_per_cycle) as u64;
        assert!(
            r.cycles > 10 * single_pass,
            "{} vs {}",
            r.cycles,
            single_pass
        );
    }

    #[test]
    fn deep_mesh_exceeds_work_budget() {
        // Even a small lattice drives the label fixpoint past the work
        // budget — the practical face of NVG's 30x+ slowdowns (§4.2).
        let mut b = GraphBuilder::undirected(32 * 32);
        for y in 0..32u32 {
            for x in 0..32u32 {
                if x + 1 < 32 {
                    b.edge(y * 32 + x, y * 32 + x + 1);
                }
                if y + 1 < 32 {
                    b.edge(y * 32 + x, (y + 1) * 32 + x);
                }
            }
        }
        let g = b.build();
        let err = run(&g, 0, &NvgConfig::default(), &h100()).unwrap_err();
        assert!(err.reason.contains("budget"));
    }
}
