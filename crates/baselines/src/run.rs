//! Common result type for baseline traversals.

use db_gpu_sim::MachineModel;

/// Result of one baseline traversal, with that method's native output
/// semantics (Table 2): fields the method does not produce are `None`.
#[derive(Debug, Clone)]
pub struct BaselineRun {
    /// Reachability flags — produced by every method.
    pub visited: Vec<bool>,
    /// DFS-tree parents (NVG-DFS, serial DFS, deque DFS).
    pub parent: Option<Vec<u32>>,
    /// BFS levels (Gunrock, BerryBees).
    pub level: Option<Vec<u32>>,
    /// Lexicographic discovery order (serial DFS, NVG-DFS).
    pub order: Option<Vec<u32>>,
    /// Simulated cycles.
    pub cycles: u64,
    /// Adjacency entries examined (TEPS numerator).
    pub edges_traversed: u64,
    /// MTEPS under the machine the method ran on.
    pub mteps: f64,
}

impl BaselineRun {
    /// Fills `cycles`/`mteps` from a machine model.
    pub fn with_cost(mut self, m: &MachineModel, cycles: u64) -> Self {
        self.cycles = cycles;
        self.mteps = m.mteps(self.edges_traversed, cycles);
        self
    }

    /// Number of visited vertices.
    pub fn num_visited(&self) -> usize {
        self.visited.iter().filter(|&&b| b).count()
    }
}

/// A failed baseline run (NVG-DFS memory exhaustion).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// Human-readable failure reason.
    pub reason: String,
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.reason)
    }
}

impl std::error::Error for RunError {}
