//! Machine descriptions and cycle-cost tables.
//!
//! Costs are *per-warp-step latencies* in cycles. DFS is a dependent
//! chain per warp, so unlike throughput kernels a warp cannot hide its
//! own latency behind other instructions; each operation charges its
//! full round-trip. Level-synchronous kernels (BFS) are modelled
//! throughput-bound instead — see [`crate::level_sync`].
//!
//! The numbers start from public latency measurements of Ampere/Hopper
//! (shared memory ~30 cycles, L2/DRAM ~300–600 cycles, global atomics
//! ~200 cycles) and were calibrated once against the paper's Fig. 6
//! MTEPS table; EXPERIMENTS.md records the resulting paper-vs-measured
//! comparison. The *shape* of every result emerges from the simulated
//! algorithm dynamics, not from these constants.

use db_trace::json::Value;

/// Cycle costs for the operations traversal engines perform.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Shared-memory access (HotRing push/pop bookkeeping).
    pub smem_op: u64,
    /// Shared-memory atomic (intra-block steal CAS on `tail`).
    pub atomic_shared: u64,
    /// Global-memory round trip (ColdSeg access, CSR row fetch).
    pub gmem_latency: u64,
    /// Global atomic (visited-array `atomicCAS`, inter-block steal CAS).
    pub atomic_global: u64,
    /// Scanning one 32-wide chunk of adjacency entries (coalesced load +
    /// warp-wide compare/ballot).
    pub edge_chunk: u64,
    /// Per-entry cost of a flush/refill/steal transfer (amortized; the
    /// fixed part is a `gmem_latency`).
    pub copy_per_entry: u64,
    /// Victim-selection scan, per peer inspected.
    pub steal_scan: u64,
    /// Kernel launch / grid sync (level-synchronous methods pay this per
    /// level; persistent kernels pay it once).
    pub kernel_launch: u64,
    /// Throughput bound for streaming kernels: edges processed per cycle
    /// across the whole device (bandwidth-derived).
    pub stream_edges_per_cycle: f64,
    /// Device-wide throughput for *random* (uncoalesced) memory
    /// transactions, in transactions per cycle. DFS's visited checks are
    /// scattered 32-byte accesses; this shared pipeline is what caps
    /// traversal throughput on high-degree graphs (latency dominates on
    /// low-degree ones). Engines funnel their random transactions
    /// through a global FCFS pipeline at this rate.
    pub random_trans_per_cycle: f64,
}

/// A simulated platform (Table 1 of the paper).
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Display name ("H100", "A100", "XeonMax").
    pub name: String,
    /// Streaming multiprocessors (GPU) or cores (CPU): the number of
    /// blocks (workers) that can execute concurrently.
    pub sm_count: u32,
    /// Warps per block for persistent-kernel engines.
    pub warps_per_block: u32,
    /// Warp width (32 on NVIDIA GPUs, 1 on CPUs).
    pub warp_width: u32,
    /// Clock in GHz, for cycles → seconds conversion.
    pub clock_ghz: f64,
    /// Whether flush/refill may use the Tensor Memory Accelerator
    /// (`cp_async_bulk` / `cuda::memcpy_async`): §3.3 reports ~5% on H100.
    pub tma: bool,
    /// Cycle-cost table.
    pub costs: CostModel,
}

impl MachineModel {
    /// NVIDIA A100 (Ampere) PCIe: 108 SMs, 1.94 TB/s (Table 1).
    pub fn a100() -> Self {
        Self {
            name: "A100".to_string(),
            sm_count: 108,
            warps_per_block: 8,
            warp_width: 32,
            clock_ghz: 1.41,
            tma: false,
            costs: CostModel {
                smem_op: 25,
                atomic_shared: 35,
                gmem_latency: 380,
                atomic_global: 170,
                edge_chunk: 240,
                copy_per_entry: 2,
                steal_scan: 8,
                kernel_launch: 9200,
                stream_edges_per_cycle: 4.6,
                random_trans_per_cycle: 8.2,
            },
        }
    }

    /// NVIDIA H100 (Hopper) SXM5: 132 SMs, 2.02 TB/s, TMA (Table 1).
    pub fn h100() -> Self {
        Self {
            name: "H100".to_string(),
            sm_count: 132,
            warps_per_block: 8,
            warp_width: 32,
            clock_ghz: 1.83,
            tma: true,
            costs: CostModel {
                smem_op: 25,
                atomic_shared: 35,
                gmem_latency: 460,
                atomic_global: 190,
                edge_chunk: 270,
                copy_per_entry: 2,
                steal_scan: 8,
                kernel_launch: 12000,
                stream_edges_per_cycle: 4.2,
                random_trans_per_cycle: 8.6,
            },
        }
    }

    /// H100 with TMA disabled — the §3.3 ablation ("TMA-driven approach
    /// yields an approximately 5% performance improvement").
    pub fn h100_no_tma() -> Self {
        let mut m = Self::h100();
        m.name = "H100-noTMA".to_string();
        m.tma = false;
        m
    }

    /// Intel Xeon Max 9462 (Table 1): 2×32 cores, HBM. CPU baselines run
    /// one worker per core; `warp_width = 1` (no SIMD edge chunking in
    /// the CPU baselines, matching the reference implementations).
    pub fn xeon_max() -> Self {
        Self {
            name: "XeonMax".to_string(),
            sm_count: 64,
            warps_per_block: 1,
            warp_width: 1,
            clock_ghz: 2.7,
            tma: false,
            costs: CostModel {
                // CPU DFS is a dependent chain of DRAM misses (visited,
                // row_ptr, columns) per discovery; stack ops are cached.
                smem_op: 6,
                atomic_shared: 20,
                gmem_latency: 520,
                atomic_global: 140,
                edge_chunk: 34, // per-edge on CPUs (warp_width = 1)
                copy_per_entry: 1,
                steal_scan: 30,
                kernel_launch: 0,
                stream_edges_per_cycle: 4.0,
                random_trans_per_cycle: 4.0,
            },
        }
    }

    /// Total warps for persistent-kernel engines (`blocks × warps/block`).
    pub fn total_warps(&self) -> u32 {
        self.sm_count * self.warps_per_block
    }

    /// Cost multiplier for flush/refill transfers: TMA overlaps the copy,
    /// modelled as a 35% reduction of the per-entry cost.
    pub fn copy_per_entry_effective(&self) -> f64 {
        if self.tma {
            self.costs.copy_per_entry as f64 * 0.65
        } else {
            self.costs.copy_per_entry as f64
        }
    }

    /// Cycles a warp spends on a contiguous `k`-entry transfer between
    /// shared and global memory (flush, refill, inter-block steal copy).
    ///
    /// Without TMA the copy is synchronous: one dependent round trip per
    /// 128-byte chunk (16 entries). With TMA (`cp_async_bulk` /
    /// `cuda::memcpy_async`, §3.3) the bulk engine overlaps the chunks,
    /// leaving the issue latency plus a small per-entry cost — this is
    /// the mechanism behind the paper's ~5% end-to-end TMA gain.
    pub fn transfer_cost(&self, k: u64) -> u64 {
        let c = &self.costs;
        if self.tma {
            (c.gmem_latency * 2).div_ceil(5) + (k as f64 * self.copy_per_entry_effective()) as u64
        } else {
            c.gmem_latency * (1 + k / 16) + k * c.copy_per_entry
        }
    }

    /// Serializes the model to a JSON document (used by config files and
    /// trace sidecars; the workspace builds offline without serde).
    pub fn to_json_value(&self) -> Value {
        let c = &self.costs;
        Value::Obj(vec![
            ("name".into(), Value::str(self.name.clone())),
            ("sm_count".into(), Value::u64(self.sm_count as u64)),
            (
                "warps_per_block".into(),
                Value::u64(self.warps_per_block as u64),
            ),
            ("warp_width".into(), Value::u64(self.warp_width as u64)),
            ("clock_ghz".into(), Value::Num(self.clock_ghz)),
            ("tma".into(), Value::Bool(self.tma)),
            (
                "costs".into(),
                Value::Obj(vec![
                    ("smem_op".into(), Value::u64(c.smem_op)),
                    ("atomic_shared".into(), Value::u64(c.atomic_shared)),
                    ("gmem_latency".into(), Value::u64(c.gmem_latency)),
                    ("atomic_global".into(), Value::u64(c.atomic_global)),
                    ("edge_chunk".into(), Value::u64(c.edge_chunk)),
                    ("copy_per_entry".into(), Value::u64(c.copy_per_entry)),
                    ("steal_scan".into(), Value::u64(c.steal_scan)),
                    ("kernel_launch".into(), Value::u64(c.kernel_launch)),
                    (
                        "stream_edges_per_cycle".into(),
                        Value::Num(c.stream_edges_per_cycle),
                    ),
                    (
                        "random_trans_per_cycle".into(),
                        Value::Num(c.random_trans_per_cycle),
                    ),
                ]),
            ),
        ])
    }

    /// Inverse of [`Self::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Self, String> {
        fn req_u64(v: &Value, key: &str) -> Result<u64, String> {
            v.get(key)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("missing or non-integer field `{key}`"))
        }
        fn req_f64(v: &Value, key: &str) -> Result<f64, String> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing or non-numeric field `{key}`"))
        }
        let c = v.get("costs").ok_or("missing field `costs`")?;
        Ok(MachineModel {
            name: v
                .get("name")
                .and_then(Value::as_str)
                .ok_or("missing field `name`")?
                .to_string(),
            sm_count: req_u64(v, "sm_count")? as u32,
            warps_per_block: req_u64(v, "warps_per_block")? as u32,
            warp_width: req_u64(v, "warp_width")? as u32,
            clock_ghz: req_f64(v, "clock_ghz")?,
            tma: v
                .get("tma")
                .and_then(Value::as_bool)
                .ok_or("missing field `tma`")?,
            costs: CostModel {
                smem_op: req_u64(c, "smem_op")?,
                atomic_shared: req_u64(c, "atomic_shared")?,
                gmem_latency: req_u64(c, "gmem_latency")?,
                atomic_global: req_u64(c, "atomic_global")?,
                edge_chunk: req_u64(c, "edge_chunk")?,
                copy_per_entry: req_u64(c, "copy_per_entry")?,
                steal_scan: req_u64(c, "steal_scan")?,
                kernel_launch: req_u64(c, "kernel_launch")?,
                stream_edges_per_cycle: req_f64(c, "stream_edges_per_cycle")?,
                random_trans_per_cycle: req_f64(c, "random_trans_per_cycle")?,
            },
        })
    }

    /// Converts simulated cycles to seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_ghz * 1e9)
    }

    /// Million traversed edges per second — the paper's headline metric
    /// (§4.1: "average performance as the ratio of traversed edges to
    /// runtime").
    pub fn mteps(&self, traversed_edges: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        traversed_edges as f64 / self.cycles_to_seconds(cycles) / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table1() {
        assert_eq!(MachineModel::a100().sm_count, 108);
        assert_eq!(MachineModel::h100().sm_count, 132);
        assert_eq!(MachineModel::xeon_max().sm_count, 64);
        assert!(MachineModel::h100().tma);
        assert!(!MachineModel::a100().tma);
    }

    #[test]
    fn h100_has_more_parallelism_than_a100() {
        let a = MachineModel::a100();
        let h = MachineModel::h100();
        // 132/108 = 22.2% more SMs (§4.4)
        let ratio = h.sm_count as f64 / a.sm_count as f64;
        assert!((ratio - 1.222).abs() < 0.01);
        assert!(h.total_warps() > a.total_warps());
    }

    #[test]
    fn mteps_conversion() {
        let m = MachineModel::h100();
        // 1.83e9 cycles = 1 second; 5e6 edges in 1 s = 5 MTEPS.
        let mteps = m.mteps(5_000_000, 1_830_000_000);
        assert!((mteps - 5.0).abs() < 1e-9);
        assert_eq!(m.mteps(100, 0), 0.0);
    }

    #[test]
    fn tma_discounts_copies() {
        let h = MachineModel::h100();
        let nh = MachineModel::h100_no_tma();
        assert!(h.copy_per_entry_effective() < nh.copy_per_entry_effective());
        // A 64-entry flush: synchronous pays ~5 round trips, TMA well
        // under one.
        assert!(h.transfer_cost(64) * 3 < nh.transfer_cost(64));
        assert!(nh.transfer_cost(64) >= 5 * nh.costs.gmem_latency);
    }

    #[test]
    fn json_round_trip() {
        let m = MachineModel::h100();
        let json = m.to_json_value().to_json();
        let back = MachineModel::from_json_value(&Value::parse(&json).unwrap()).unwrap();
        assert_eq!(back.sm_count, m.sm_count);
        assert_eq!(back.name, m.name);
        assert_eq!(back.tma, m.tma);
        assert_eq!(back.costs.gmem_latency, m.costs.gmem_latency);
        assert_eq!(
            back.costs.stream_edges_per_cycle,
            m.costs.stream_edges_per_cycle
        );
    }

    #[test]
    fn json_rejects_missing_fields() {
        assert!(MachineModel::from_json_value(&Value::parse("{}").unwrap()).is_err());
    }
}
