//! # db-gpu-sim — deterministic execution-model simulator
//!
//! The hardware substrate of this reproduction. The paper evaluates on
//! NVIDIA A100/H100 GPUs and a 64-core Xeon Max; none of that hardware is
//! available, so every engine in this workspace runs against a
//! deterministic discrete-event simulation of the machine instead
//! (DESIGN.md §1 explains the substitution).
//!
//! Components:
//!
//! * [`machine`] — machine descriptions: SM/core counts, clock, and a
//!   cycle-cost table for the operations the traversal engines perform
//!   (shared vs. global memory accesses, atomics, 32-wide edge-chunk
//!   scans, steal transfers, kernel launches). Presets for the paper's
//!   three platforms: [`machine::MachineModel::a100`],
//!   [`machine::MachineModel::h100`], [`machine::MachineModel::xeon_max`].
//! * [`des`] — a deterministic discrete-event scheduler: every warp (or
//!   CPU worker) is an agent with its own local clock; agents execute in
//!   global time order with ties broken by agent id, so shared-state
//!   interactions (visited-array CAS, steal CAS) are serialized
//!   deterministically and contention emerges from the schedule itself.
//! * [`profile`] — cycle-attribution profiler: charges every simulated
//!   cycle to a phase (expand, ring-push/pop, steal-search, steal-copy,
//!   TMA-wait, idle) per SM, with folded-stacks export, an occupancy
//!   timeline, and live gauges via `db-metrics`. Zero-cost when
//!   disabled, mirroring the `db-trace` tracer pattern.
//! * [`stats`] — counters shared by all engines (traversed edges, steals,
//!   flushes/refills, per-block task distribution with the coefficient of
//!   variation reported in Fig. 9) and MTEPS conversion.
//! * [`level_sync`] — the work-depth cost model for level-synchronous
//!   GPU methods (Gunrock/BerryBees BFS, NVG-DFS): per-level kernel
//!   launch + latency + throughput-bound edge processing.
//!
//! Simulated time is measured in cycles; [`machine::MachineModel::mteps`]
//! converts a `(traversed_edges, cycles)` pair into the paper's metric
//! (million traversed edges per second).

#![warn(missing_docs)]

pub mod des;
pub mod level_sync;
pub mod machine;
pub mod pipeline;
pub mod profile;
pub mod stats;

pub use des::Des;
pub use machine::{CostModel, MachineModel};
pub use pipeline::MemPipeline;
pub use profile::{CycleProfiler, NoProfiler, Profiler, SimPhase};
pub use stats::SimStats;
