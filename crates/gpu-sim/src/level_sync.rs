//! Work-depth cost model for level-synchronous GPU kernels.
//!
//! Gunrock/BerryBees BFS and the BFS-style phases of NVG-DFS launch one
//! (or a few) kernels per frontier level and synchronize the device in
//! between. Their cost per level is therefore
//!
//! ```text
//! launch + memory latency + level_work / device_throughput
//! ```
//!
//! Large frontiers amortize the fixed part (social networks: 10 levels,
//! BFS wins); deep graphs pay it tens of thousands of times (euro_osm:
//! 17,346 levels in the paper, BFS loses by 12× — §4.3). The model takes
//! the *actual* per-level work of the algorithm being simulated, so the
//! crossover emerges from graph structure.

use crate::machine::MachineModel;

/// Work performed by one synchronous level/phase of an algorithm.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LevelWork {
    /// Frontier size (vertices expanded this level).
    pub frontier_vertices: u64,
    /// Adjacency entries scanned this level.
    pub scanned_edges: u64,
}

/// Simulated cycles for one level.
pub fn level_cycles(m: &MachineModel, w: &LevelWork) -> u64 {
    let c = &m.costs;
    let fixed = c.kernel_launch + c.gmem_latency;
    // Vertex-side bookkeeping streams at the same throughput class as
    // edges but touches ~2 words per vertex.
    let stream_work =
        (w.scanned_edges as f64 + 2.0 * w.frontier_vertices as f64) / c.stream_edges_per_cycle;
    fixed + stream_work.ceil() as u64
}

/// Simulated cycles for a whole level-synchronous execution.
pub fn total_cycles(m: &MachineModel, levels: &[LevelWork]) -> u64 {
    levels.iter().map(|w| level_cycles(m, w)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_only(e: u64) -> LevelWork {
        LevelWork {
            frontier_vertices: 0,
            scanned_edges: e,
        }
    }

    #[test]
    fn fixed_cost_dominates_empty_levels() {
        let m = MachineModel::h100();
        let c = level_cycles(&m, &edges_only(0));
        assert_eq!(c, m.costs.kernel_launch + m.costs.gmem_latency);
    }

    #[test]
    fn throughput_dominates_big_levels() {
        let m = MachineModel::h100();
        let big = level_cycles(&m, &edges_only(100_000_000));
        let expect = (100_000_000.0 / m.costs.stream_edges_per_cycle) as u64;
        assert!(big > expect && big < expect + 20_000);
    }

    #[test]
    fn many_shallow_levels_cost_more_than_one_deep() {
        let m = MachineModel::h100();
        let total_edges = 1_000_000u64;
        let deep: Vec<LevelWork> = (0..10_000)
            .map(|_| edges_only(total_edges / 10_000))
            .collect();
        let shallow = [edges_only(total_edges)];
        assert!(
            total_cycles(&m, &deep) > 20 * total_cycles(&m, &shallow),
            "level-sync overhead must punish deep traversals"
        );
    }

    #[test]
    fn h100_streams_faster_than_a100() {
        // In *seconds*: the A100 runs at a lower clock, so its per-cycle
        // stream rate is higher while its wall-clock throughput is lower.
        let a = MachineModel::a100();
        let h = MachineModel::h100();
        let w = [edges_only(50_000_000)];
        let a_s = a.cycles_to_seconds(total_cycles(&a, &w));
        let h_s = h.cycles_to_seconds(total_cycles(&h, &w));
        assert!(h_s < a_s, "H100 {h_s} should beat A100 {a_s}");
    }

    #[test]
    fn vertices_contribute() {
        let m = MachineModel::h100();
        let no_v = level_cycles(&m, &edges_only(1000));
        let with_v = level_cycles(
            &m,
            &LevelWork {
                frontier_vertices: 100_000,
                scanned_edges: 1000,
            },
        );
        assert!(with_v > no_v);
    }
}
