//! Execution statistics shared by every simulated engine.
//!
//! Beyond MTEPS, the paper reports steal activity (§4.5 breakdown), the
//! per-block task distribution with its coefficient of variation
//! (Fig. 9), and failure modes (NVG-DFS "failing on 44 out of 234
//! graphs"). [`SimStats`] collects all of it.

/// Counters accumulated during a simulated traversal.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated makespan in cycles.
    pub cycles: u64,
    /// Vertices discovered (visited-CAS wins).
    pub vertices_visited: u64,
    /// Adjacency entries examined (the TEPS numerator).
    pub edges_traversed: u64,
    /// Successful intra-block steals.
    pub steals_intra: u64,
    /// Successful inter-block steals.
    pub steals_inter: u64,
    /// Failed steal attempts (lost CAS or no eligible victim).
    pub steal_failures: u64,
    /// HotRing → ColdSeg flush operations.
    pub flushes: u64,
    /// ColdSeg → HotRing refill operations.
    pub refills: u64,
    /// Lost visited-array CAS races (vertex already claimed).
    pub visited_cas_failures: u64,
    /// Tasks (vertices) processed per block — Fig. 9's distribution.
    pub tasks_per_block: Vec<u64>,
}

impl SimStats {
    /// Creates stats with `blocks` per-block task slots.
    pub fn new(blocks: usize) -> Self {
        Self {
            tasks_per_block: vec![0; blocks],
            ..Default::default()
        }
    }

    /// Coefficient of variation (stddev / mean) of `tasks_per_block`,
    /// the "Var." metric of Fig. 9 (lower is better). Returns 0 for
    /// degenerate distributions.
    pub fn block_load_cv(&self) -> f64 {
        coefficient_of_variation(&self.tasks_per_block)
    }

    /// Min / median / max of the per-block task counts — the markers
    /// shown in Fig. 9.
    pub fn block_load_min_med_max(&self) -> (u64, u64, u64) {
        if self.tasks_per_block.is_empty() {
            return (0, 0, 0);
        }
        let mut v = self.tasks_per_block.clone();
        v.sort_unstable();
        (v[0], v[v.len() / 2], v[v.len() - 1])
    }

    /// Total steal attempts.
    pub fn steal_attempts(&self) -> u64 {
        self.steals_intra + self.steals_inter + self.steal_failures
    }
}

/// Coefficient of variation of a sample (population stddev / mean).
pub fn coefficient_of_variation(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Geometric mean of positive values; entries `<= 0` are skipped (the
/// paper's "average speedup (geometric mean)" of §4.2).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|&x| x > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv_of_uniform_is_zero() {
        assert_eq!(coefficient_of_variation(&[5, 5, 5, 5]), 0.0);
    }

    #[test]
    fn cv_of_skewed_is_large() {
        let balanced = coefficient_of_variation(&[90, 100, 110, 100]);
        let skewed = coefficient_of_variation(&[0, 0, 0, 400]);
        assert!(skewed > 10.0 * balanced);
        assert!((skewed - 1.732).abs() < 0.01); // sqrt(3)
    }

    #[test]
    fn cv_handles_degenerate() {
        // Pinned: empty and all-zero inputs must be exactly 0.0 — never
        // NaN — or every figure that prints a CV column corrupts its CSV.
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0, 0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0]), 0.0);
        assert!(!coefficient_of_variation(&[]).is_nan());
        assert!(!coefficient_of_variation(&[0, 0, 0]).is_nan());
        assert_eq!(SimStats::new(0).block_load_cv(), 0.0);
        assert_eq!(SimStats::new(8).block_load_cv(), 0.0);
    }

    #[test]
    fn min_med_max() {
        let mut s = SimStats::new(5);
        s.tasks_per_block = vec![10, 50, 30, 20, 40];
        assert_eq!(s.block_load_min_med_max(), (10, 30, 50));
    }

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // zeros / negatives skipped (failed runs)
        assert!((geometric_mean(&[4.0, 0.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geomean_handles_degenerate() {
        // Pinned: empty and all-zero (or all-negative) inputs must be
        // exactly 0.0, never NaN.
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[0.0]), 0.0);
        assert_eq!(geometric_mean(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[-1.0, -2.0]), 0.0);
        assert!(!geometric_mean(&[0.0, 0.0]).is_nan());
        assert_eq!(geometric_mean(&[f64::NAN]), 0.0);
    }

    #[test]
    fn steal_attempts_sum() {
        let s = SimStats {
            steals_intra: 3,
            steals_inter: 2,
            steal_failures: 5,
            ..Default::default()
        };
        assert_eq!(s.steal_attempts(), 10);
    }
}
