//! Execution statistics shared by every simulated engine.
//!
//! Beyond MTEPS, the paper reports steal activity (§4.5 breakdown), the
//! per-block task distribution with its coefficient of variation
//! (Fig. 9), and failure modes (NVG-DFS "failing on 44 out of 234
//! graphs"). [`SimStats`] collects all of it.

/// Counters accumulated during a simulated traversal.
#[derive(Debug, Clone, Default)]
pub struct SimStats {
    /// Simulated makespan in cycles.
    pub cycles: u64,
    /// Vertices discovered (visited-CAS wins).
    pub vertices_visited: u64,
    /// Adjacency entries examined (the TEPS numerator).
    pub edges_traversed: u64,
    /// Successful intra-block steals.
    pub steals_intra: u64,
    /// Successful inter-block steals.
    pub steals_inter: u64,
    /// Failed steal attempts (lost CAS or no eligible victim).
    pub steal_failures: u64,
    /// HotRing → ColdSeg flush operations.
    pub flushes: u64,
    /// ColdSeg → HotRing refill operations.
    pub refills: u64,
    /// Lost visited-array CAS races (vertex already claimed).
    pub visited_cas_failures: u64,
    /// High-water mark of any HotRing (shared-memory stack level).
    pub hot_high_water: u64,
    /// High-water mark of any ColdSeg (global-memory stack level).
    pub cold_high_water: u64,
    /// Tasks (vertices) processed per block — Fig. 9's distribution.
    pub tasks_per_block: Vec<u64>,
    /// Faults injected by a `db-fault` plan during this run (0 for
    /// fault-free runs; the fault-free fast path never touches these).
    pub faults_injected: u64,
    /// SMs (blocks) killed by injected faults.
    pub sms_killed: u64,
    /// Killed SMs whose stranded work was fully drained by survivors.
    pub blocks_recovered: u64,
    /// Stack entries re-stolen from killed SMs via the recovery path.
    pub entries_recovered: u64,
}

impl SimStats {
    /// Creates stats with `blocks` per-block task slots.
    pub fn new(blocks: usize) -> Self {
        Self {
            tasks_per_block: vec![0; blocks],
            ..Default::default()
        }
    }

    /// Coefficient of variation (stddev / mean) of `tasks_per_block`,
    /// the "Var." metric of Fig. 9 (lower is better). Returns 0 for
    /// degenerate distributions.
    pub fn block_load_cv(&self) -> f64 {
        coefficient_of_variation(&self.tasks_per_block)
    }

    /// Min / median / max of the per-block task counts — the markers
    /// shown in Fig. 9.
    pub fn block_load_min_med_max(&self) -> (u64, u64, u64) {
        if self.tasks_per_block.is_empty() {
            return (0, 0, 0);
        }
        let mut v = self.tasks_per_block.clone();
        v.sort_unstable();
        (v[0], v[v.len() / 2], v[v.len() - 1])
    }

    /// Total steal attempts.
    pub fn steal_attempts(&self) -> u64 {
        self.steals_intra + self.steals_inter + self.steal_failures
    }

    /// Publishes these counters into `reg` as `db_engine_*` series
    /// labeled `engine="<engine>"` — the common glue every engine
    /// (sim, native, lockfree, cpu_ws) calls at the end of a run.
    ///
    /// Counters are monotonically *added* (a long-lived process
    /// accumulates across runs); the stack high-water marks are gauges
    /// updated with max-semantics.
    pub fn record_to(&self, reg: &db_metrics::Registry, engine: &str) {
        let labels = &[("engine", engine)][..];
        let c = |name: &str, help: &str, v: u64| {
            reg.counter(name, help, labels).add(v);
        };
        c(
            "db_engine_runs_total",
            "Completed traversal runs per engine",
            1,
        );
        c(
            "db_engine_vertices_visited_total",
            "Vertices discovered (visited-CAS wins)",
            self.vertices_visited,
        );
        c(
            "db_engine_edges_traversed_total",
            "Adjacency entries examined (TEPS numerator)",
            self.edges_traversed,
        );
        for (level, v) in [("intra", self.steals_intra), ("inter", self.steals_inter)] {
            reg.counter(
                "db_engine_steals_total",
                "Successful steals by level (intra-block ring vs inter-block ColdSeg)",
                &[("engine", engine), ("level", level)],
            )
            .add(v);
        }
        c(
            "db_engine_steal_failures_total",
            "Failed steal attempts (lost CAS or no eligible victim)",
            self.steal_failures,
        );
        c(
            "db_engine_flushes_total",
            "HotRing -> ColdSeg flush operations",
            self.flushes,
        );
        c(
            "db_engine_refills_total",
            "ColdSeg -> HotRing refill operations",
            self.refills,
        );
        c(
            "db_engine_visited_cas_failures_total",
            "Lost visited-array CAS races",
            self.visited_cas_failures,
        );
        reg.gauge(
            "db_engine_hot_high_water",
            "Deepest HotRing observed (entries)",
            labels,
        )
        .max(self.hot_high_water);
        reg.gauge(
            "db_engine_cold_high_water",
            "Deepest ColdSeg observed (entries)",
            labels,
        )
        .max(self.cold_high_water);
        // Fault series appear only once a fault plan actually struck, so
        // fault-free deployments scrape a clean exposition.
        if self.faults_injected > 0 || self.sms_killed > 0 {
            c(
                "db_sim_faults_injected",
                "Faults injected into the simulated machine",
                self.faults_injected,
            );
            c(
                "db_sim_sms_killed",
                "SMs killed by injected faults",
                self.sms_killed,
            );
            c(
                "db_sim_blocks_recovered",
                "Killed SMs whose stranded work was fully re-stolen",
                self.blocks_recovered,
            );
            c(
                "db_sim_entries_recovered",
                "Stack entries re-stolen from killed SMs",
                self.entries_recovered,
            );
        }
    }
}

/// Coefficient of variation of a sample (population stddev / mean).
pub fn coefficient_of_variation(xs: &[u64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = xs.iter().map(|&x| (x as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Geometric mean of positive values; entries `<= 0` are skipped (the
/// paper's "average speedup (geometric mean)" of §4.2).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    let logs: Vec<f64> = xs
        .iter()
        .copied()
        .filter(|&x| x > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cv_of_uniform_is_zero() {
        assert_eq!(coefficient_of_variation(&[5, 5, 5, 5]), 0.0);
    }

    #[test]
    fn cv_of_skewed_is_large() {
        let balanced = coefficient_of_variation(&[90, 100, 110, 100]);
        let skewed = coefficient_of_variation(&[0, 0, 0, 400]);
        assert!(skewed > 10.0 * balanced);
        assert!((skewed - 1.732).abs() < 0.01); // sqrt(3)
    }

    #[test]
    fn cv_handles_degenerate() {
        // Pinned: empty and all-zero inputs must be exactly 0.0 — never
        // NaN — or every figure that prints a CV column corrupts its CSV.
        assert_eq!(coefficient_of_variation(&[]), 0.0);
        assert_eq!(coefficient_of_variation(&[0, 0]), 0.0);
        assert_eq!(coefficient_of_variation(&[0]), 0.0);
        assert!(!coefficient_of_variation(&[]).is_nan());
        assert!(!coefficient_of_variation(&[0, 0, 0]).is_nan());
        assert_eq!(SimStats::new(0).block_load_cv(), 0.0);
        assert_eq!(SimStats::new(8).block_load_cv(), 0.0);
    }

    #[test]
    fn min_med_max() {
        let mut s = SimStats::new(5);
        s.tasks_per_block = vec![10, 50, 30, 20, 40];
        assert_eq!(s.block_load_min_med_max(), (10, 30, 50));
    }

    #[test]
    fn geomean_basics() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // zeros / negatives skipped (failed runs)
        assert!((geometric_mean(&[4.0, 0.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
    }

    #[test]
    fn geomean_handles_degenerate() {
        // Pinned: empty and all-zero (or all-negative) inputs must be
        // exactly 0.0, never NaN.
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[0.0]), 0.0);
        assert_eq!(geometric_mean(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(geometric_mean(&[-1.0, -2.0]), 0.0);
        assert!(!geometric_mean(&[0.0, 0.0]).is_nan());
        assert_eq!(geometric_mean(&[f64::NAN]), 0.0);
    }

    #[test]
    fn record_to_emits_per_level_steal_counters() {
        let reg = db_metrics::Registry::new();
        let s = SimStats {
            steals_intra: 3,
            steals_inter: 2,
            steal_failures: 5,
            vertices_visited: 10,
            edges_traversed: 20,
            hot_high_water: 12,
            cold_high_water: 40,
            ..Default::default()
        };
        s.record_to(&reg, "sim");
        // A second run accumulates counters but maxes the gauges.
        let s2 = SimStats {
            steals_intra: 1,
            hot_high_water: 7,
            cold_high_water: 99,
            ..Default::default()
        };
        s2.record_to(&reg, "sim");

        let text = reg.render_prometheus();
        let exp = db_metrics::validate_exposition(&text).unwrap();
        let find = |name: &str, level: Option<&str>| {
            exp.samples
                .iter()
                .find(|smp| {
                    smp.name == name
                        && smp.label("le").is_none()
                        && level.is_none_or(|l| smp.label("level") == Some(l))
                })
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(find("db_engine_steals_total", Some("intra")), 4.0);
        assert_eq!(find("db_engine_steals_total", Some("inter")), 2.0);
        assert_eq!(find("db_engine_steal_failures_total", None), 5.0);
        assert_eq!(find("db_engine_runs_total", None), 2.0);
        assert_eq!(find("db_engine_hot_high_water", None), 12.0);
        assert_eq!(find("db_engine_cold_high_water", None), 99.0);
    }

    #[test]
    fn fault_series_only_appear_under_faults() {
        let clean = db_metrics::Registry::new();
        SimStats::new(2).record_to(&clean, "sim");
        assert!(
            !clean.render_prometheus().contains("db_sim_faults_injected"),
            "fault-free run must not emit fault series"
        );

        let chaos = db_metrics::Registry::new();
        let s = SimStats {
            faults_injected: 3,
            sms_killed: 1,
            blocks_recovered: 1,
            entries_recovered: 17,
            ..Default::default()
        };
        s.record_to(&chaos, "sim");
        let text = chaos.render_prometheus();
        let exp = db_metrics::validate_exposition(&text).unwrap();
        let find = |name: &str| {
            exp.samples
                .iter()
                .find(|smp| smp.name == name)
                .unwrap_or_else(|| panic!("missing {name}"))
                .value
        };
        assert_eq!(find("db_sim_faults_injected"), 3.0);
        assert_eq!(find("db_sim_sms_killed"), 1.0);
        assert_eq!(find("db_sim_blocks_recovered"), 1.0);
        assert_eq!(find("db_sim_entries_recovered"), 17.0);
    }

    #[test]
    fn steal_attempts_sum() {
        let s = SimStats {
            steals_intra: 3,
            steals_inter: 2,
            steal_failures: 5,
            ..Default::default()
        };
        assert_eq!(s.steal_attempts(), 10);
    }
}
