//! Deterministic discrete-event scheduler.
//!
//! Every agent (a GPU warp or a CPU worker) carries its own local clock.
//! The engine repeatedly executes the agent with the smallest clock
//! (ties broken by agent id), performs one atomic step of that agent's
//! state machine against shared state, and re-schedules it at
//! `now + cost`. Because shared-state interactions are serialized in
//! this global time order, runs are bit-for-bit deterministic for a
//! given seed while still exhibiting realistic interleavings: a steal
//! CAS that loses a race simply observes state already mutated by an
//! agent scheduled earlier in simulated time.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Discrete-event scheduler over `n` agents.
#[derive(Debug, Clone)]
pub struct Des {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    now: u64,
    /// Furthest point any agent has reached; the makespan of the run.
    horizon: u64,
    events: u64,
}

impl Des {
    /// Creates a scheduler with `n` agents, all ready at time 0.
    pub fn new(n: u32) -> Self {
        let mut heap = BinaryHeap::with_capacity(n as usize);
        for id in 0..n {
            heap.push(Reverse((0, id)));
        }
        Self {
            heap,
            now: 0,
            horizon: 0,
            events: 0,
        }
    }

    /// Creates an empty scheduler; agents are added with [`Des::schedule`].
    pub fn empty() -> Self {
        Self {
            heap: BinaryHeap::new(),
            now: 0,
            horizon: 0,
            events: 0,
        }
    }

    /// Next `(time, agent)` pair, advancing the global clock. Returns
    /// `None` when no agent is scheduled (the simulation is over or
    /// everyone is parked).
    #[allow(clippy::should_implement_trait)] // deliberately not an Iterator: callers interleave schedule()
    pub fn next(&mut self) -> Option<(u64, u32)> {
        let Reverse((t, id)) = self.heap.pop()?;
        debug_assert!(t >= self.now, "time went backwards");
        self.now = t;
        self.events += 1;
        Some((t, id))
    }

    /// Schedules `agent` to run again at absolute time `at`.
    pub fn schedule(&mut self, agent: u32, at: u64) {
        self.horizon = self.horizon.max(at);
        self.heap.push(Reverse((at, agent)));
    }

    /// Re-schedules `agent` to run `cost` cycles after the current time.
    pub fn yield_for(&mut self, agent: u32, cost: u64) {
        self.schedule(agent, self.now.saturating_add(cost.max(1)));
    }

    /// Current global time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Latest time any agent was scheduled for — the makespan once the
    /// run completes.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of events executed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Number of scheduled (not yet executed) events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agents_run_in_time_order_with_id_ties() {
        let mut des = Des::new(3);
        // all at t=0: ids must come out 0,1,2
        assert_eq!(des.next(), Some((0, 0)));
        assert_eq!(des.next(), Some((0, 1)));
        assert_eq!(des.next(), Some((0, 2)));
        assert_eq!(des.next(), None);
    }

    #[test]
    fn yield_for_orders_by_cost() {
        let mut des = Des::new(2);
        let (_, a) = des.next().unwrap(); // agent 0 at t=0
        des.yield_for(a, 10);
        let (_, b) = des.next().unwrap(); // agent 1 at t=0
        des.yield_for(b, 5);
        // agent 1 (t=5) before agent 0 (t=10)
        assert_eq!(des.next(), Some((5, 1)));
        assert_eq!(des.next(), Some((10, 0)));
    }

    #[test]
    fn zero_cost_still_advances() {
        let mut des = Des::new(1);
        let (t0, a) = des.next().unwrap();
        des.yield_for(a, 0);
        let (t1, _) = des.next().unwrap();
        assert!(t1 > t0, "zero-cost yield must not livelock the heap");
    }

    #[test]
    fn parked_agents_drain() {
        let mut des = Des::new(4);
        // run all agents once, park (don't reschedule) evens
        let mut seen = Vec::new();
        while let Some((_, id)) = des.next() {
            seen.push(id);
            if id % 2 == 1 && seen.iter().filter(|&&x| x == id).count() < 3 {
                des.yield_for(id, 7);
            }
        }
        // odds ran 3 times each, evens once
        assert_eq!(seen.iter().filter(|&&x| x == 0).count(), 1);
        assert_eq!(seen.iter().filter(|&&x| x == 1).count(), 3);
    }

    #[test]
    fn horizon_tracks_makespan() {
        let mut des = Des::new(1);
        let (_, a) = des.next().unwrap();
        des.yield_for(a, 100);
        des.next().unwrap();
        assert_eq!(des.horizon(), 100);
        assert_eq!(des.events(), 2);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut des = Des::new(8);
            let mut trace = Vec::new();
            let mut steps = 0;
            while let Some((t, id)) = des.next() {
                trace.push((t, id));
                steps += 1;
                if steps < 100 {
                    des.yield_for(id, (id as u64 * 13 + 7) % 29 + 1);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
