//! Device-wide memory pipeline.
//!
//! Latency costs alone miss the second limiter of GPU traversals:
//! aggregate memory throughput. A single warp's DFS step is a dependent
//! chain (latency-bound), but a thousand warps hitting the visited array
//! with scattered 32-byte transactions saturate the memory system long
//! before they saturate the SMs — which is exactly why the paper's
//! DiggerBees tops out near 5 GTEPS on social graphs while streaming BFS
//! reaches 17+ GTEPS on the same device (Fig. 6).
//!
//! [`MemPipeline`] models this as a global FCFS resource: each event
//! declares how many random transactions it issues; the pipeline serves
//! `random_trans_per_cycle` of them per cycle. An event's extra delay is
//! the backlog it finds in front of it. Contention therefore emerges
//! only when aggregate demand exceeds the budget — low-degree graphs
//! stay latency-bound, high-degree graphs become bandwidth-bound.

/// Global FCFS memory pipeline (deterministic).
#[derive(Debug, Clone)]
pub struct MemPipeline {
    /// Cycle (scaled by `per_cycle`) at which the pipeline frees up.
    free_at: f64,
    /// Transactions served per cycle.
    per_cycle: f64,
    /// Total transactions issued (diagnostics).
    total: u64,
}

impl MemPipeline {
    /// Creates a pipeline serving `per_cycle` transactions per cycle.
    pub fn new(per_cycle: f64) -> Self {
        assert!(per_cycle > 0.0, "throughput must be positive");
        Self {
            free_at: 0.0,
            per_cycle,
            total: 0,
        }
    }

    /// Issues `trans` transactions at time `now`; returns the queueing
    /// delay (cycles) this event suffers on top of its latency cost.
    pub fn charge(&mut self, now: u64, trans: u64) -> u64 {
        if trans == 0 {
            return 0;
        }
        self.total += trans;
        let start = self.free_at.max(now as f64);
        self.free_at = start + trans as f64 / self.per_cycle;
        (start - now as f64) as u64
    }

    /// Total transactions issued so far.
    pub fn total_transactions(&self) -> u64 {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_pipeline_has_no_delay() {
        let mut p = MemPipeline::new(8.0);
        assert_eq!(p.charge(100, 16), 0);
        assert_eq!(p.total_transactions(), 16);
    }

    #[test]
    fn backlog_delays_followers() {
        let mut p = MemPipeline::new(2.0);
        // 100 transactions at t=0 occupy the pipeline for 50 cycles.
        assert_eq!(p.charge(0, 100), 0);
        // An event at t=10 waits for the backlog.
        let d = p.charge(10, 2);
        assert_eq!(d, 40);
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut p = MemPipeline::new(2.0);
        p.charge(0, 100); // busy until t=50
        assert_eq!(p.charge(60, 2), 0); // fully drained
    }

    #[test]
    fn zero_transactions_free() {
        let mut p = MemPipeline::new(1.0);
        p.charge(0, 100);
        assert_eq!(p.charge(0, 0), 0);
        assert_eq!(p.total_transactions(), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_throughput() {
        MemPipeline::new(0.0);
    }
}
