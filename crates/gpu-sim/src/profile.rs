//! Cycle-attribution profiler: where do simulated cycles go?
//!
//! The paper's load-balance figures (Figs. 8–11) are statements about
//! *time*, not just event counts: how many cycles each SM spent
//! expanding edges versus searching for steal victims versus waiting on
//! transfers. The trace ring can reconstruct that post-hoc; this module
//! measures it live, with the same zero-overhead-when-disabled contract
//! as [`db_trace::Tracer`]: engines are generic over [`Profiler`], and
//! with [`NoProfiler`] (whose `ENABLED` is `false`) every charge site
//! folds away at compile time.
//!
//! [`CycleProfiler`] accumulates per-SM, per-phase cycle totals plus a
//! per-SM task (claimed-vertex) count, and exports three views:
//!
//! * [`CycleProfiler::folded_stacks`] — `flamegraph.pl`-ready folded
//!   stack lines (`diggerbees;sm3;steal-search 1234`);
//! * [`CycleProfiler::occupancy_timeline`] — sampled
//!   `(cycle, active_warps)` pairs;
//! * [`CycleProfiler::record_to`] — gauges in a
//!   [`db_metrics::Registry`] (`db_sim_phase_cycles{sm,phase}`,
//!   `db_sim_tasks_per_block{block}`), so Fig. 9's per-block load CV can
//!   be derived from a live scrape instead of a trace replay.

use db_metrics::Registry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A phase every simulated cycle is charged to.
///
/// The seven phases partition an engine's cycle budget: per SM,
/// `makespan × warps_per_block` equals the sum over phases once
/// [`Profiler::finalize`] has topped up [`SimPhase::Idle`] with the
/// unattributed remainder (parked and backing-off warps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimPhase {
    /// Edge-chunk scans and visited-array claims (the useful work).
    Expand,
    /// HotRing pushes and top-entry updates.
    RingPush,
    /// HotRing pops of exhausted vertices.
    RingPop,
    /// Victim scans, cutoff checks, and failed steal reservations.
    StealSearch,
    /// Successful steal reservation + entry copy into the thief's ring.
    StealCopy,
    /// Bulk transfers: flushes, refills, and inter-block copies
    /// (the TMA/`cp.async` traffic of §3.3).
    TmaWait,
    /// Parked, backing off, or waiting for the traversal to end.
    Idle,
}

impl SimPhase {
    /// Number of phases (array dimension for per-phase tables).
    pub const COUNT: usize = 7;

    /// All phases, in export order.
    pub const ALL: [SimPhase; SimPhase::COUNT] = [
        SimPhase::Expand,
        SimPhase::RingPush,
        SimPhase::RingPop,
        SimPhase::StealSearch,
        SimPhase::StealCopy,
        SimPhase::TmaWait,
        SimPhase::Idle,
    ];

    /// Stable kebab-case name, used in folded stacks and label values.
    pub fn name(self) -> &'static str {
        match self {
            SimPhase::Expand => "expand",
            SimPhase::RingPush => "ring-push",
            SimPhase::RingPop => "ring-pop",
            SimPhase::StealSearch => "steal-search",
            SimPhase::StealCopy => "steal-copy",
            SimPhase::TmaWait => "tma-wait",
            SimPhase::Idle => "idle",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            SimPhase::Expand => 0,
            SimPhase::RingPush => 1,
            SimPhase::RingPop => 2,
            SimPhase::StealSearch => 3,
            SimPhase::StealCopy => 4,
            SimPhase::TmaWait => 5,
            SimPhase::Idle => 6,
        }
    }
}

/// Observer for cycle attribution, mirroring [`db_trace::Tracer`]:
/// `ENABLED` is a compile-time constant, so engines instrumented with
/// [`NoProfiler`] pay nothing.
///
/// Profiling is observational only — implementations must not influence
/// the simulation (and the engines never consult them).
pub trait Profiler {
    /// Compile-time switch; charge sites are guarded by `P::ENABLED`.
    const ENABLED: bool;

    /// Charges `cycles` spent in `phase` by a warp on `sm`.
    fn charge(&self, sm: u32, phase: SimPhase, cycles: u64);

    /// Counts one claimed vertex (task) on `sm` — Fig. 9's numerator.
    fn count_task(&self, sm: u32);

    /// Records an occupancy sample: `active_warps` runnable at `cycle`.
    fn sample(&self, cycle: u64, active_warps: u32) {
        let _ = (cycle, active_warps);
    }

    /// Called once at the end of a run with the final makespan: tops up
    /// [`SimPhase::Idle`] so every simulated cycle is attributed.
    fn finalize(&self, makespan: u64, warps_per_sm: u32) {
        let _ = (makespan, warps_per_sm);
    }
}

/// The disabled profiler: all methods are no-ops that compile out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProfiler;

impl Profiler for NoProfiler {
    const ENABLED: bool = false;

    #[inline(always)]
    fn charge(&self, _sm: u32, _phase: SimPhase, _cycles: u64) {}

    #[inline(always)]
    fn count_task(&self, _sm: u32) {}
}

/// Per-SM, per-phase cycle table with shareable `&self` recording.
///
/// Counters are relaxed atomics (the DES itself is single-threaded; the
/// atomics exist so a profiler can be shared by reference, like the
/// tracers). The occupancy timeline takes a short mutex per sample —
/// one sample per 16 Ki simulated cycles, far off any hot path.
#[derive(Debug)]
pub struct CycleProfiler {
    /// `cells[sm][phase.index()]` = cycles charged.
    cells: Vec<[AtomicU64; SimPhase::COUNT]>,
    /// Claimed vertices per SM (≡ per block in the engine mapping).
    tasks: Vec<AtomicU64>,
    samples: Mutex<Vec<(u64, u32)>>,
}

impl CycleProfiler {
    /// Creates a profiler for `sms` SMs (the engine's block count).
    pub fn new(sms: usize) -> Self {
        Self {
            cells: (0..sms)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            tasks: (0..sms).map(|_| AtomicU64::new(0)).collect(),
            samples: Mutex::new(Vec::new()),
        }
    }

    /// Number of SMs this profiler tracks.
    pub fn sms(&self) -> usize {
        self.cells.len()
    }

    /// Cycles charged to `phase` on `sm`.
    pub fn phase_cycles(&self, sm: u32, phase: SimPhase) -> u64 {
        // relaxed-ok: monotonic profiling counter; a momentarily stale
        // read is fine for reporting (also every load/RMW below)
        self.cells[sm as usize][phase.index()].load(Ordering::Relaxed)
    }

    /// Cycles charged to `phase`, summed over all SMs.
    pub fn total_cycles(&self, phase: SimPhase) -> u64 {
        self.cells
            .iter()
            .map(|c| c[phase.index()].load(Ordering::Relaxed)) // relaxed-ok: reporting
            .sum()
    }

    /// Non-idle cycles charged on `sm`.
    pub fn busy_cycles(&self, sm: u32) -> u64 {
        SimPhase::ALL
            .iter()
            .filter(|p| **p != SimPhase::Idle)
            .map(|p| self.phase_cycles(sm, *p))
            .sum()
    }

    /// Claimed vertices per SM — the live counterpart of
    /// `SimStats::tasks_per_block`.
    pub fn tasks_per_sm(&self) -> Vec<u64> {
        self.tasks
            .iter()
            .map(|t| t.load(Ordering::Relaxed)) // relaxed-ok: reporting
            .collect()
    }

    /// The sampled `(cycle, active_warps)` occupancy timeline.
    pub fn occupancy_timeline(&self) -> Vec<(u64, u32)> {
        self.samples
            .lock()
            .expect("profiler samples poisoned")
            .clone()
    }

    /// Folded-stacks export, one line per `(sm, phase)` cell with a
    /// nonzero cycle count: `diggerbees;sm<N>;<phase> <cycles>`. Feed
    /// directly to `flamegraph.pl` / `inferno-flamegraph`.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        for (sm, cell) in self.cells.iter().enumerate() {
            for phase in SimPhase::ALL {
                let cycles = cell[phase.index()].load(Ordering::Relaxed); // relaxed-ok: reporting
                if cycles > 0 {
                    out.push_str(&format!("diggerbees;sm{sm};{} {cycles}\n", phase.name()));
                }
            }
        }
        out
    }

    /// The nonzero `(sm, phase_index, cycles)` cells, for span sinks:
    /// the serve layer maps each cell onto a `SimPhase` span whose code
    /// packs `(sm << 8) | phase_index` and whose value is the cycle
    /// count, so a flight dump carries the sim-side cost breakdown of
    /// the request that ran it.
    pub fn phase_spans(&self) -> Vec<(u32, usize, u64)> {
        let mut out = Vec::new();
        for (sm, cell) in self.cells.iter().enumerate() {
            for phase in SimPhase::ALL {
                let cycles = cell[phase.index()].load(Ordering::Relaxed); // relaxed-ok: reporting
                if cycles > 0 {
                    out.push((sm as u32, phase.index(), cycles));
                }
            }
        }
        out
    }

    /// Publishes the table as gauges in `reg`:
    /// `db_sim_phase_cycles{phase,sm}` and
    /// `db_sim_tasks_per_block{block}` (Fig. 9's distribution, from
    /// which its load CV can be computed off a plain scrape).
    pub fn record_to(&self, reg: &Registry) {
        for (sm, cell) in self.cells.iter().enumerate() {
            let sm_label = sm.to_string();
            for phase in SimPhase::ALL {
                reg.gauge(
                    "db_sim_phase_cycles",
                    "Simulated cycles charged to each phase, per SM",
                    &[("phase", phase.name()), ("sm", &sm_label)],
                )
                .set(cell[phase.index()].load(Ordering::Relaxed)); // relaxed-ok: reporting
            }
            reg.gauge(
                "db_sim_tasks_per_block",
                "Vertices claimed per block (Fig. 9 distribution)",
                &[("block", &sm_label)],
            )
            .set(self.tasks[sm].load(Ordering::Relaxed)); // relaxed-ok: reporting
        }
    }
}

impl Profiler for CycleProfiler {
    const ENABLED: bool = true;

    #[inline]
    fn charge(&self, sm: u32, phase: SimPhase, cycles: u64) {
        // relaxed-ok: independent profiling counter, no ordering needed
        self.cells[sm as usize][phase.index()].fetch_add(cycles, Ordering::Relaxed);
    }

    #[inline]
    fn count_task(&self, sm: u32) {
        // relaxed-ok: independent profiling counter, no ordering needed
        self.tasks[sm as usize].fetch_add(1, Ordering::Relaxed);
    }

    fn sample(&self, cycle: u64, active_warps: u32) {
        self.samples
            .lock()
            .expect("profiler samples poisoned")
            .push((cycle, active_warps));
    }

    /// Per SM, charges `makespan × warps_per_sm − busy − explicit idle`
    /// to [`SimPhase::Idle`], so the seven phases partition the cycle
    /// budget. Saturating: warps still backing off past the finish time
    /// can push explicit charges beyond the makespan budget, in which
    /// case no further idle is added.
    fn finalize(&self, makespan: u64, warps_per_sm: u32) {
        for sm in 0..self.cells.len() {
            let budget = makespan * warps_per_sm as u64;
            let spent = self.busy_cycles(sm as u32) + self.phase_cycles(sm as u32, SimPhase::Idle);
            self.charge(sm as u32, SimPhase::Idle, budget.saturating_sub(spent));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_per_sm_and_phase() {
        let p = CycleProfiler::new(2);
        p.charge(0, SimPhase::Expand, 10);
        p.charge(0, SimPhase::Expand, 5);
        p.charge(1, SimPhase::StealSearch, 7);
        assert_eq!(p.phase_cycles(0, SimPhase::Expand), 15);
        assert_eq!(p.phase_cycles(1, SimPhase::Expand), 0);
        assert_eq!(p.total_cycles(SimPhase::StealSearch), 7);
        assert_eq!(p.busy_cycles(0), 15);
    }

    #[test]
    fn finalize_partitions_the_cycle_budget() {
        let p = CycleProfiler::new(2);
        p.charge(0, SimPhase::Expand, 30);
        p.charge(0, SimPhase::Idle, 10);
        p.charge(1, SimPhase::TmaWait, 100);
        p.finalize(25, 4); // budget = 100 per SM
        assert_eq!(p.phase_cycles(0, SimPhase::Idle), 70);
        // SM 1 already at budget: no extra idle.
        assert_eq!(p.phase_cycles(1, SimPhase::Idle), 0);
        let total0: u64 = SimPhase::ALL.iter().map(|ph| p.phase_cycles(0, *ph)).sum();
        assert_eq!(total0, 100);
    }

    #[test]
    fn phase_spans_lists_nonzero_cells() {
        let p = CycleProfiler::new(2);
        p.charge(0, SimPhase::Expand, 30);
        p.charge(1, SimPhase::StealSearch, 7);
        let spans = p.phase_spans();
        assert_eq!(spans.len(), 2);
        assert!(spans.contains(&(0, SimPhase::Expand.index(), 30)));
        assert!(spans.contains(&(1, SimPhase::StealSearch.index(), 7)));
    }

    #[test]
    fn folded_stacks_format() {
        let p = CycleProfiler::new(2);
        p.charge(1, SimPhase::StealCopy, 42);
        p.charge(0, SimPhase::Expand, 7);
        let folded = p.folded_stacks();
        assert_eq!(
            folded,
            "diggerbees;sm0;expand 7\ndiggerbees;sm1;steal-copy 42\n"
        );
    }

    #[test]
    fn record_to_exports_gauges() {
        let p = CycleProfiler::new(2);
        p.charge(0, SimPhase::Expand, 9);
        p.count_task(0);
        p.count_task(0);
        p.count_task(1);
        let reg = Registry::new();
        p.record_to(&reg);
        let text = reg.render_prometheus();
        let exp = db_metrics::validate_exposition(&text).unwrap();
        let expand = exp
            .samples
            .iter()
            .find(|s| {
                s.name == "db_sim_phase_cycles"
                    && s.label("phase") == Some("expand")
                    && s.label("sm") == Some("0")
            })
            .unwrap();
        assert_eq!(expand.value, 9.0);
        let t0 = exp
            .samples
            .iter()
            .find(|s| s.name == "db_sim_tasks_per_block" && s.label("block") == Some("0"))
            .unwrap();
        assert_eq!(t0.value, 2.0);
    }

    #[test]
    fn occupancy_samples_round_trip() {
        let p = CycleProfiler::new(1);
        p.sample(0, 4);
        p.sample(16384, 2);
        assert_eq!(p.occupancy_timeline(), vec![(0, 4), (16384, 2)]);
    }

    #[test]
    fn no_profiler_is_disabled() {
        const { assert!(!NoProfiler::ENABLED) }
        // And its methods are callable no-ops.
        NoProfiler.charge(0, SimPhase::Idle, 1);
        NoProfiler.count_task(0);
        NoProfiler.sample(0, 0);
        NoProfiler.finalize(0, 0);
    }
}
