//! Snapshot isolation under real concurrency: a traversal pinned at
//! epoch N must stay bit-identical — same vertex sequence, same CSR
//! bytes — no matter how many publishes and compactions race past it.
//!
//! This is the integration-level counterpart of the bounded-schedule
//! `epoch/small` model in db-check: the model proves the lifecycle has
//! no reclaim-past-a-pin interleaving on tiny configs; this test runs
//! the shipped code with real threads and checks the same promise on
//! the observable output.

use db_delta::DeltaGraph;
use db_graph::CsrGraph;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Directed path 0→1→…→n-1 as a CSR.
fn path(n: u32) -> CsrGraph {
    let row_ptr = (0..=n as u64).map(|i| i.min(n as u64 - 1)).collect();
    let col_idx = (1..n).collect();
    CsrGraph::from_sorted_parts(n, row_ptr, col_idx, true)
}

/// Full preorder DFS from 0; the exact visit sequence is the witness.
fn dfs_order(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut stack = vec![0u32];
    while let Some(u) = stack.pop() {
        if std::mem::replace(&mut seen[u as usize], true) {
            continue;
        }
        order.push(u);
        for &v in g.neighbors(u).iter().rev() {
            if !seen[v as usize] {
                stack.push(v);
            }
        }
    }
    order
}

#[test]
fn pinned_traversals_are_bit_identical_under_concurrent_publishes() {
    const N: u32 = 64;
    let dg = Arc::new(DeltaGraph::with_threshold(Arc::new(path(N)), 4));

    // Move off the base epoch first so the pin holds a delta-backed
    // snapshot, not the trivially-immutable base.
    dg.add_edges(&[(0, 5), (0, 9)]).unwrap();
    dg.del_edges(&[(3, 4)]).unwrap();

    let pin = dg.pin();
    let pinned_epoch = pin.epoch();
    let want_order = dfs_order(pin.graph());
    let want_parts = (
        pin.graph().row_ptr().to_vec(),
        pin.graph().col_idx().to_vec(),
    );

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // Two writers race publishes; every few batches the internal
        // threshold (4) also races compaction attempts against the pin.
        for w in 0..2u32 {
            let dg = Arc::clone(&dg);
            let stop = &stop;
            s.spawn(move || {
                let mut i = 0u32;
                while !stop.load(Ordering::Relaxed) {
                    let u = (w * 31 + i) % N;
                    let v = (u + 7) % N;
                    dg.add_edges(&[(u, v)]).unwrap();
                    dg.del_edges(&[(v, u)]).unwrap();
                    i += 1;
                }
            });
        }
        // The pinned reader re-traverses its snapshot the whole time.
        for _ in 0..400 {
            assert_eq!(pin.epoch(), pinned_epoch);
            assert_eq!(dfs_order(pin.graph()), want_order);
            assert_eq!(pin.graph().row_ptr(), &want_parts.0[..]);
            assert_eq!(pin.graph().col_idx(), &want_parts.1[..]);
        }
        // Don't stop the writers until the world has verifiably moved
        // past the pin — under parallel test load 400 reader loops are
        // no guarantee the writer threads got scheduled at all.
        while dg.current_epoch() <= pinned_epoch + 100 {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
    });

    // The world moved on underneath the pin...
    assert!(dg.current_epoch() > pinned_epoch + 100);
    // ...and the pin still answers for its epoch, bit-identically.
    assert_eq!(dfs_order(pin.graph()), want_order);

    // Once the pin drops, nothing holds the backlog: the next publish
    // folds everything (threshold 4 was long since exceeded).
    drop(pin);
    let p = dg.add_edges(&[(1, 3)]).unwrap();
    assert!(
        matches!(p.compaction, db_delta::CompactOutcome::Folded(k) if k >= 4),
        "expected a fold after the pin released, got {:?}",
        p.compaction
    );
}

#[test]
fn snapshot_at_reconstructs_any_retained_epoch() {
    let dg = Arc::new(DeltaGraph::from_csr(path(8)));
    let mut orders = vec![dfs_order(&dg.pin().snapshot())];
    for i in 0..5u32 {
        dg.add_edges(&[(0, i + 2)]).unwrap();
        orders.push(dfs_order(&dg.pin().snapshot()));
    }
    for (e, want) in orders.iter().enumerate() {
        let g = dg
            .snapshot_at(e as u64)
            .unwrap_or_else(|| panic!("epoch {e} should still be retained"));
        assert_eq!(&dfs_order(&g), want, "epoch {e} drifted");
    }
}
