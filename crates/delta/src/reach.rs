//! Incremental reachability maintenance over an epoch-versioned graph.
//!
//! Caches the visited set of a BFS from each queried root, keyed by the
//! epoch it was computed at. A repeat query on an unchanged epoch is a
//! pure cache hit; when the epochs in between are *insert-only*, the
//! cached set is extended by a dirty-set BFS seeded from the endpoints
//! of newly inserted arcs whose source was already reachable. Deletes
//! and tombstones (or layers already folded by compaction) force a full
//! recompute — edge removal can disconnect arbitrary subsets, so the
//! visited set is not incrementally maintainable in that direction.

use crate::graph::{DeltaGraph, EpochPin};
use db_graph::CsrGraph;
use std::collections::HashMap;
use std::sync::Arc;

/// How a reachability query was answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReachOutcome {
    /// Cached visited set was valid as-is (same epoch).
    Hit,
    /// Cached set extended by a dirty-set BFS over insert-only layers.
    Extended,
    /// Full BFS recompute (cold cache, deletes, or folded layers).
    Recomputed,
}

struct ReachEntry {
    epoch: u64,
    visited: Vec<bool>,
}

/// Per-graph incremental reachability cache. One instance serves all
/// roots of one [`DeltaGraph`]; the serve layer keys instances by
/// corpus.
#[derive(Default)]
pub struct IncrementalReach {
    entries: HashMap<u32, ReachEntry>,
}

impl std::fmt::Debug for IncrementalReach {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalReach")
            .field("roots", &self.entries.len())
            .finish()
    }
}

fn bfs(g: &CsrGraph, seeds: &[u32], visited: &mut [bool]) {
    let mut queue: Vec<u32> = seeds.to_vec();
    while let Some(u) = queue.pop() {
        for &v in g.neighbors(u) {
            if !visited[v as usize] {
                visited[v as usize] = true;
                queue.push(v);
            }
        }
    }
}

impl IncrementalReach {
    /// Answer "is `target` reachable from `root`?" against the pinned
    /// snapshot, reusing or extending the cached visited set when the
    /// epoch history allows it.
    pub fn query(
        &mut self,
        dg: &Arc<DeltaGraph>,
        pin: &EpochPin,
        root: u32,
        target: u32,
    ) -> (bool, ReachOutcome) {
        let g = pin.graph();
        let n = g.num_vertices();
        let epoch = pin.epoch();
        let outcome = match self.entries.get_mut(&root) {
            Some(entry) if entry.epoch == epoch => {
                dg.note_incremental_hit();
                ReachOutcome::Hit
            }
            Some(entry) if entry.epoch < epoch => {
                match dg.layers_between(entry.epoch, epoch) {
                    Some(layers) if layers.iter().all(|l| l.insert_only()) => {
                        // Seed from targets of new arcs whose source is
                        // already reachable; inserted edges can only
                        // grow the visited set.
                        let mut seeds = Vec::new();
                        for layer in &layers {
                            for (u, v) in layer.added_arcs() {
                                if entry.visited[u as usize] && !entry.visited[v as usize] {
                                    entry.visited[v as usize] = true;
                                    seeds.push(v);
                                }
                            }
                        }
                        bfs(g, &seeds, &mut entry.visited);
                        entry.epoch = epoch;
                        dg.note_incremental_hit();
                        ReachOutcome::Extended
                    }
                    _ => {
                        entry.visited = vec![false; n];
                        entry.visited[root as usize] = true;
                        bfs(g, &[root], &mut entry.visited);
                        entry.epoch = epoch;
                        ReachOutcome::Recomputed
                    }
                }
            }
            _ => {
                // Cold, or cached at a *newer* epoch than the pin (a
                // reader on an old pin after later publishes): full
                // recompute without touching newer cache state.
                let mut visited = vec![false; n];
                visited[root as usize] = true;
                bfs(g, &[root], &mut visited);
                let reached = visited[target as usize];
                if self.entries.get(&root).is_none_or(|e| e.epoch < epoch) {
                    self.entries.insert(root, ReachEntry { epoch, visited });
                }
                return (reached, ReachOutcome::Recomputed);
            }
        };
        let entry = &self.entries[&root];
        (entry.visited[target as usize], outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::CsrGraph;

    fn path4() -> CsrGraph {
        CsrGraph::from_sorted_parts(4, vec![0, 1, 2, 3, 3], vec![1, 2, 3], true)
    }

    #[test]
    fn hit_on_unchanged_epoch() {
        let dg = Arc::new(DeltaGraph::from_csr(path4()));
        let mut cache = IncrementalReach::default();
        let pin = dg.pin();
        assert_eq!(
            cache.query(&dg, &pin, 0, 3),
            (true, ReachOutcome::Recomputed)
        );
        assert_eq!(cache.query(&dg, &pin, 0, 3), (true, ReachOutcome::Hit));
        assert_eq!(dg.stats().incremental_hits, 1);
    }

    #[test]
    fn insert_only_extends() {
        // 0→1→2→3, 5 isolated; add 3→4 later.
        let g = CsrGraph::from_sorted_parts(5, vec![0, 1, 2, 3, 3, 3], vec![1, 2, 3], true);
        let dg = Arc::new(DeltaGraph::from_csr(g));
        let mut cache = IncrementalReach::default();
        let pin = dg.pin();
        assert_eq!(
            cache.query(&dg, &pin, 0, 4),
            (false, ReachOutcome::Recomputed)
        );
        drop(pin);
        dg.add_edges(&[(3, 4)]).unwrap();
        let pin = dg.pin();
        assert_eq!(cache.query(&dg, &pin, 0, 4), (true, ReachOutcome::Extended));
        assert_eq!(dg.stats().incremental_hits, 1);
    }

    #[test]
    fn deletes_force_recompute() {
        let dg = Arc::new(DeltaGraph::from_csr(path4()));
        let mut cache = IncrementalReach::default();
        let pin = dg.pin();
        cache.query(&dg, &pin, 0, 3);
        drop(pin);
        dg.del_edges(&[(1, 2)]).unwrap();
        let pin = dg.pin();
        assert_eq!(
            cache.query(&dg, &pin, 0, 3),
            (false, ReachOutcome::Recomputed)
        );
        assert_eq!(dg.stats().incremental_hits, 0);
    }

    #[test]
    fn extension_matches_recompute() {
        // Random-ish growth: every extension answer must equal a fresh
        // BFS over the same snapshot.
        let g = CsrGraph::from_sorted_parts(8, vec![0; 9], vec![], true);
        let dg = Arc::new(DeltaGraph::from_csr(g));
        let mut cache = IncrementalReach::default();
        let edges = [(0u32, 1u32), (1, 2), (5, 6), (2, 3), (0, 5), (6, 7)];
        for chunk in edges.chunks(2) {
            dg.add_edges(chunk).unwrap();
            let pin = dg.pin();
            for t in 0..8u32 {
                let (got, _) = cache.query(&dg, &pin, 0, t);
                let mut fresh = IncrementalReach::default();
                let (want, _) = fresh.query(&dg, &pin, 0, t);
                assert_eq!(got, want, "target {t}");
            }
        }
    }
}
