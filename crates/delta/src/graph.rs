//! Epoch-versioned graph: frozen base CSR + published delta layers.
//!
//! ## Lifecycle
//!
//! ```text
//!          add/del (batch)          publish            compact
//!   pending ───────────────► layer(e+1) ───► current=e+1 ───► new base
//!                                                  ▲               │
//!        pin(e) ◄── readers hold Arc<CsrGraph> ────┘   folds layers ≤ min pin
//! ```
//!
//! Writers stage mutations into a pending delta and publish them with
//! an epoch bump, all under one mutex acquisition per batch. Readers
//! [`DeltaGraph::pin`] the current epoch and receive an [`EpochPin`]
//! guard holding a fully materialized [`CsrGraph`] snapshot behind an
//! `Arc` — the traversal engines (serial, native, lockfree,
//! partitioned) consume it unchanged, and compaction can never
//! invalidate it because the guard owns a strong reference.
//!
//! Compaction folds every layer at or below the lowest pinned epoch
//! into a new base CSR. The merge runs *outside* the lock against
//! snapshot references; the swap re-acquires the lock and verifies no
//! concurrent compaction won the race. [`CompactHook`] points let the
//! fault layer kill the merge mid-flight: an aborted merge makes zero
//! state changes, so no epoch can be lost or reclaimed early.

use crate::layer::{DeltaLayer, PendingDelta};
use db_graph::{CsrGraph, GraphStore};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::{Arc, Mutex};

/// Errors from mutation batches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// An endpoint is outside the fixed vertex space `0..n`.
    VertexOutOfRange {
        /// The offending vertex id.
        v: u32,
        /// The graph's vertex count.
        n: u32,
    },
    /// An endpoint refers to a vertex tombstoned in an earlier epoch
    /// (tombstones are final: deleted vertices never revive).
    Tombstoned(
        /// The tombstoned vertex id.
        u32,
    ),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::VertexOutOfRange { v, n } => {
                write!(f, "vertex {v} out of range (graph has {n} vertices)")
            }
            DeltaError::Tombstoned(v) => write!(f, "vertex {v} is tombstoned"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Where a compaction hook fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactPoint {
    /// Before the out-of-lock merge starts. Aborting here models a
    /// worker killed at the start of compaction.
    Merge,
    /// After the merge, immediately before the in-lock swap. Aborting
    /// here models a worker killed with the new base fully built but
    /// not yet installed.
    Swap,
}

/// Hook return: keep going or simulate a crash at this point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactAction {
    /// Proceed normally.
    Continue,
    /// Abandon the compaction with zero state changes.
    Abort,
}

/// Fault hook consulted at each [`CompactPoint`].
pub type CompactHook<'a> = &'a mut dyn FnMut(CompactPoint) -> CompactAction;

/// Result of one compaction attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompactOutcome {
    /// Nothing foldable (too few cold layers, or all pinned).
    NotNeeded,
    /// The hook aborted the attempt; state is unchanged.
    Aborted(
        /// The [`CompactPoint`] at which the abort struck.
        CompactPoint,
    ),
    /// A concurrent compaction installed a newer base first; this
    /// attempt discarded its work.
    Raced,
    /// Folded this many layers into a new base.
    Folded(
        /// Number of layers folded.
        usize,
    ),
}

/// Summary of one published mutation batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Publish {
    /// The epoch the batch became visible at.
    pub epoch: u64,
    /// Number of mutations applied (requested batch size).
    pub applied: usize,
    /// What the post-publish compaction attempt did.
    pub compaction: CompactOutcome,
}

/// Point-in-time counters, taken under the lock by
/// [`DeltaGraph::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Current epoch (0 before any publish).
    pub current_epoch: u64,
    /// Epoch the frozen base represents.
    pub base_epoch: u64,
    /// Epochs published over the graph's lifetime.
    pub epochs_published: u64,
    /// Compactions that folded layers into a new base.
    pub compactions: u64,
    /// Compaction attempts aborted by the fault hook.
    pub compactions_aborted: u64,
    /// Live (unfolded) delta layers.
    pub layers: usize,
    /// Approximate heap bytes held by live delta layers.
    pub delta_bytes: usize,
    /// Currently outstanding pins.
    pub pins_active: u64,
    /// High-water mark of simultaneously outstanding pins.
    pub pins_high_water: u64,
    /// Reachability queries answered from an unchanged-epoch cache or
    /// by incremental extension (maintained by
    /// [`IncrementalReach`](crate::IncrementalReach)).
    pub incremental_hits: u64,
}

struct Inner {
    base: Arc<dyn GraphStore>,
    base_epoch: u64,
    /// `layers[i].epoch() == base_epoch + i + 1`; contiguous by
    /// construction.
    layers: Vec<Arc<DeltaLayer>>,
    pending: PendingDelta,
    /// Epoch → outstanding pin count.
    pins: BTreeMap<u64, u64>,
    /// Materialized snapshots, keyed by epoch. An entry is dropped when
    /// its epoch is unpinned and no longer current; pins keep their own
    /// `Arc`, so eviction never invalidates a reader.
    snapshots: HashMap<u64, Arc<CsrGraph>>,
    stats: DeltaStats,
    /// Set while an out-of-lock merge is in flight, so concurrent
    /// publishes skip redundant attempts.
    compacting: bool,
}

/// An epoch-versioned graph: frozen base CSR plus delta overlays.
///
/// See the [module docs](self) for the lifecycle. All methods are
/// thread-safe; `pin` requires `Arc<DeltaGraph>` because the guard
/// keeps the graph alive.
pub struct DeltaGraph {
    inner: Mutex<Inner>,
    n: u32,
    directed: bool,
    /// Fold once this many cold layers accumulate.
    compact_threshold: usize,
}

impl fmt::Debug for DeltaGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.stats();
        f.debug_struct("DeltaGraph")
            .field("n", &self.n)
            .field("directed", &self.directed)
            .field("epoch", &s.current_epoch)
            .field("base_epoch", &s.base_epoch)
            .field("layers", &s.layers)
            .finish()
    }
}

/// Default number of cold layers that triggers a fold.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 8;

impl DeltaGraph {
    /// Wrap a frozen base store (in-RAM CSR or mmap'd pack) as epoch 0.
    pub fn new(base: Arc<dyn GraphStore>) -> Self {
        Self::with_threshold(base, DEFAULT_COMPACT_THRESHOLD)
    }

    /// Like [`DeltaGraph::new`] with an explicit compaction threshold
    /// (0 compacts after every publish; tests use small values).
    pub fn with_threshold(base: Arc<dyn GraphStore>, compact_threshold: usize) -> Self {
        Self::with_base_epoch(base, compact_threshold, 0)
    }

    /// Wrap a frozen base store that represents an already-advanced
    /// epoch — the recovery path hands a checkpoint pack here so that
    /// replaying the WAL tail republishes exactly the pre-crash epoch
    /// numbers.
    pub fn with_base_epoch(
        base: Arc<dyn GraphStore>,
        compact_threshold: usize,
        base_epoch: u64,
    ) -> Self {
        let g = base.graph();
        let (n, directed) = (g.num_vertices() as u32, g.is_directed());
        DeltaGraph {
            inner: Mutex::new(Inner {
                base,
                base_epoch,
                layers: Vec::new(),
                pending: PendingDelta::default(),
                pins: BTreeMap::new(),
                snapshots: HashMap::new(),
                stats: DeltaStats::default(),
                compacting: false,
            }),
            n,
            directed,
            compact_threshold: compact_threshold.max(1),
        }
    }

    /// Convenience: wrap an owned CSR directly.
    pub fn from_csr(g: CsrGraph) -> Self {
        Self::new(Arc::new(g))
    }

    /// Vertex count (fixed for the graph's lifetime).
    pub fn num_vertices(&self) -> usize {
        self.n as usize
    }

    /// Locks the mutable state. Poisoning means a mutator panicked
    /// mid-batch; there is no torn on-disk state to salvage (layers
    /// publish atomically), so propagating the panic is correct.
    fn state(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap() // io-ok: poison implies a prior panic; nothing durable is torn
    }

    /// Whether the base graph is directed. Undirected mutation batches
    /// stage both arc directions.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// The currently published epoch.
    pub fn current_epoch(&self) -> u64 {
        let inner = self.state();
        inner.base_epoch + inner.layers.len() as u64
    }

    /// Snapshot of the lifecycle counters.
    pub fn stats(&self) -> DeltaStats {
        let inner = self.state();
        let mut s = inner.stats;
        s.current_epoch = inner.base_epoch + inner.layers.len() as u64;
        s.base_epoch = inner.base_epoch;
        s.layers = inner.layers.len();
        s.delta_bytes = inner.layers.iter().map(|l| l.bytes()).sum();
        s
    }

    /// Record an incremental-reach hit (called by
    /// [`IncrementalReach`](crate::IncrementalReach)).
    pub(crate) fn note_incremental_hit(&self) {
        self.state().stats.incremental_hits += 1;
    }

    /// Published layers with epochs in `(from, to]`, oldest first.
    /// Returns `None` when compaction has already folded part of that
    /// range into the base (callers must fall back to a full rebuild).
    pub fn layers_between(&self, from: u64, to: u64) -> Option<Vec<Arc<DeltaLayer>>> {
        let inner = self.state();
        if from < inner.base_epoch || to > inner.base_epoch + inner.layers.len() as u64 {
            return None;
        }
        let lo = (from - inner.base_epoch) as usize;
        let hi = (to - inner.base_epoch) as usize;
        Some(inner.layers[lo..hi].to_vec())
    }

    fn validate(&self, inner: &Inner, endpoints: &[u32]) -> Result<(), DeltaError> {
        for &v in endpoints {
            if v >= self.n {
                return Err(DeltaError::VertexOutOfRange { v, n: self.n });
            }
            if inner.pending.is_tombstoned(v) || inner.layers.iter().any(|l| l.is_tombstoned(v)) {
                return Err(DeltaError::Tombstoned(v));
            }
        }
        Ok(())
    }

    /// Insert a batch of arcs and publish them as one epoch. For
    /// undirected graphs both directions are staged. Re-inserting an
    /// existing arc is idempotent at materialization (CSR rows dedup).
    /// Empty batches publish nothing and return the current epoch.
    pub fn add_edges(&self, edges: &[(u32, u32)]) -> Result<Publish, DeltaError> {
        self.mutate(edges, &[], &[], &mut |_| CompactAction::Continue)
    }

    /// Delete a batch of arcs and publish them as one epoch. Deleting
    /// an absent arc is a no-op at materialization.
    pub fn del_edges(&self, edges: &[(u32, u32)]) -> Result<Publish, DeltaError> {
        self.mutate(&[], edges, &[], &mut |_| CompactAction::Continue)
    }

    /// Tombstone vertices (all incident arcs disappear; tombstones are
    /// final) and publish as one epoch.
    pub fn del_vertices(&self, vs: &[u32]) -> Result<Publish, DeltaError> {
        self.mutate(&[], &[], vs, &mut |_| CompactAction::Continue)
    }

    /// Full-control batch publish: stage `adds`, `dels`, and vertex
    /// tombstones, publish one epoch, then attempt compaction with
    /// `hook` consulted at each [`CompactPoint`].
    pub fn mutate(
        &self,
        adds: &[(u32, u32)],
        dels: &[(u32, u32)],
        tombs: &[u32],
        hook: CompactHook<'_>,
    ) -> Result<Publish, DeltaError> {
        let applied = adds.len() + dels.len() + tombs.len();
        let epoch = {
            let mut inner = self.state();
            let mut endpoints: Vec<u32> = tombs.to_vec();
            for &(u, v) in adds.iter().chain(dels) {
                endpoints.push(u);
                endpoints.push(v);
            }
            self.validate(&inner, &endpoints)?;
            for &(u, v) in adds {
                inner.pending.add_arc(u, v);
                if !self.directed {
                    inner.pending.add_arc(v, u);
                }
            }
            for &(u, v) in dels {
                inner.pending.del_arc(u, v);
                if !self.directed {
                    inner.pending.del_arc(v, u);
                }
            }
            for &v in tombs {
                inner.pending.del_vertex(v);
            }
            if inner.pending.is_empty() {
                return Ok(Publish {
                    epoch: inner.base_epoch + inner.layers.len() as u64,
                    applied,
                    compaction: CompactOutcome::NotNeeded,
                });
            }
            let epoch = inner.base_epoch + inner.layers.len() as u64 + 1;
            let layer = inner.pending.seal(epoch, self.n);
            inner.layers.push(Arc::new(layer));
            inner.stats.epochs_published += 1;
            // Prior current-epoch snapshot stays cached only while
            // pinned; unpinned entries for stale epochs are dropped
            // here to bound the cache.
            let stale: Vec<u64> = inner
                .snapshots
                .keys()
                .filter(|e| **e < epoch && !inner.pins.contains_key(e))
                .copied()
                .collect();
            for e in stale {
                inner.snapshots.remove(&e);
            }
            epoch
        };
        let compaction = self.try_compact(hook);
        Ok(Publish {
            epoch,
            applied,
            compaction,
        })
    }

    /// Pin the current epoch: bumps its pin count and returns a guard
    /// holding a fully materialized snapshot. The snapshot is cached
    /// per epoch, so repeated pins of an unchanged epoch are cheap.
    pub fn pin(self: &Arc<Self>) -> EpochPin {
        let (epoch, snapshot) = {
            let mut inner = self.state();
            let epoch = inner.base_epoch + inner.layers.len() as u64;
            let snapshot = Self::snapshot_locked(self.n, self.directed, &mut inner, epoch);
            *inner.pins.entry(epoch).or_insert(0) += 1;
            inner.stats.pins_active += 1;
            inner.stats.pins_high_water = inner.stats.pins_high_water.max(inner.stats.pins_active);
            (epoch, snapshot)
        };
        EpochPin {
            dg: Arc::clone(self),
            epoch,
            snapshot,
        }
    }

    /// Materialize (and cache) the snapshot for `epoch` without
    /// pinning. `None` if `epoch` is below the current base or above
    /// the current epoch.
    pub fn snapshot_at(&self, epoch: u64) -> Option<Arc<CsrGraph>> {
        let mut inner = self.state();
        if epoch < inner.base_epoch || epoch > inner.base_epoch + inner.layers.len() as u64 {
            return None;
        }
        Some(Self::snapshot_locked(
            self.n,
            self.directed,
            &mut inner,
            epoch,
        ))
    }

    fn snapshot_locked(n: u32, directed: bool, inner: &mut Inner, epoch: u64) -> Arc<CsrGraph> {
        if let Some(s) = inner.snapshots.get(&epoch) {
            return Arc::clone(s);
        }
        let nlayers = (epoch - inner.base_epoch) as usize;
        let g = materialize(n, directed, inner.base.graph(), &inner.layers[..nlayers]);
        let arc = Arc::new(g);
        inner.snapshots.insert(epoch, Arc::clone(&arc));
        arc
    }

    fn unpin(&self, epoch: u64) {
        let mut inner = self.state();
        let remove = {
            let count = inner
                .pins
                .get_mut(&epoch)
                // io-ok: pin() inserted this entry and EpochPin::drop is the only caller
                .expect("unpin of an epoch that was never pinned");
            *count -= 1;
            *count == 0
        };
        inner.stats.pins_active -= 1;
        if remove {
            inner.pins.remove(&epoch);
            // Snapshot cache entry is only useful again if this is
            // still the current epoch.
            if epoch != inner.base_epoch + inner.layers.len() as u64 {
                inner.snapshots.remove(&epoch);
            }
        }
    }

    /// Attempt a compaction if enough cold layers accumulated. Public
    /// so the serve layer can force attempts with its fault hook.
    pub fn try_compact(&self, hook: CompactHook<'_>) -> CompactOutcome {
        // Phase 1 (locked): decide the fold limit and snapshot refs.
        let (base, layers, base_epoch, limit) = {
            let mut inner = self.state();
            if inner.compacting {
                return CompactOutcome::NotNeeded;
            }
            let current = inner.base_epoch + inner.layers.len() as u64;
            // Never fold past the lowest pinned epoch: a pinned reader
            // may still need `layers_between` for incremental reach.
            let limit = inner
                .pins
                .keys()
                .next()
                .copied()
                .unwrap_or(current)
                .min(current);
            let foldable = (limit - inner.base_epoch) as usize;
            if foldable < self.compact_threshold {
                return CompactOutcome::NotNeeded;
            }
            inner.compacting = true;
            (
                Arc::clone(&inner.base),
                inner.layers[..foldable].to_vec(),
                inner.base_epoch,
                limit,
            )
        };
        // Phase 2 (unlocked): merge. The hook models crashes; an abort
        // leaves every published layer in place — nothing is lost.
        if hook(CompactPoint::Merge) == CompactAction::Abort {
            let mut inner = self.state();
            inner.compacting = false;
            inner.stats.compactions_aborted += 1;
            return CompactOutcome::Aborted(CompactPoint::Merge);
        }
        let merged = materialize(self.n, self.directed, base.graph(), &layers);
        if hook(CompactPoint::Swap) == CompactAction::Abort {
            let mut inner = self.state();
            inner.compacting = false;
            inner.stats.compactions_aborted += 1;
            return CompactOutcome::Aborted(CompactPoint::Swap);
        }
        // Phase 3 (locked): verify we still descend from the base we
        // merged and swap.
        let mut inner = self.state();
        inner.compacting = false;
        if inner.base_epoch != base_epoch {
            return CompactOutcome::Raced;
        }
        let folded = (limit - base_epoch) as usize;
        inner.base = Arc::new(merged);
        inner.base_epoch = limit;
        inner.layers.drain(..folded);
        inner.stats.compactions += 1;
        CompactOutcome::Folded(folded)
    }
}

/// Guard pinning one epoch. Holds the materialized snapshot, so the
/// graph view stays valid (and bit-identical) for the guard's lifetime
/// regardless of concurrent publishes or compactions.
pub struct EpochPin {
    dg: Arc<DeltaGraph>,
    epoch: u64,
    snapshot: Arc<CsrGraph>,
}

impl fmt::Debug for EpochPin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochPin")
            .field("epoch", &self.epoch)
            .finish()
    }
}

impl EpochPin {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The materialized snapshot, engine-ready.
    pub fn graph(&self) -> &CsrGraph {
        &self.snapshot
    }

    /// A shareable handle to the snapshot.
    pub fn snapshot(&self) -> Arc<CsrGraph> {
        Arc::clone(&self.snapshot)
    }

    /// The owning delta graph.
    pub fn delta(&self) -> &Arc<DeltaGraph> {
        &self.dg
    }
}

impl Drop for EpochPin {
    fn drop(&mut self) {
        self.dg.unpin(self.epoch);
    }
}

/// Merge `base` plus `layers` (oldest first) into a standalone CSR.
fn materialize(n: u32, directed: bool, base: &CsrGraph, layers: &[Arc<DeltaLayer>]) -> CsrGraph {
    // Rows touched by any patch get merged individually; the rest copy
    // straight from the base. Tombstones force a global target filter.
    let mut touched: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut tomb = vec![0u64; (n as usize).div_ceil(64)];
    let mut any_tomb = false;
    for layer in layers {
        for (&u, patch) in layer.patches() {
            let row = touched
                .entry(u)
                .or_insert_with(|| base.neighbors(u).to_vec());
            for &v in &patch.del {
                if let Ok(i) = row.binary_search(&v) {
                    row.remove(i);
                }
            }
            for &v in &patch.add {
                if let Err(i) = row.binary_search(&v) {
                    row.insert(i, v);
                }
            }
        }
        for v in 0..n {
            if layer.is_tombstoned(v) {
                tomb[(v / 64) as usize] |= 1 << (v % 64);
                any_tomb = true;
            }
        }
    }
    let is_tomb = |v: u32| tomb[(v / 64) as usize] >> (v % 64) & 1 == 1;
    let mut row_ptr = Vec::with_capacity(n as usize + 1);
    let mut col_idx = Vec::with_capacity(base.num_arcs());
    row_ptr.push(0u64);
    for u in 0..n {
        if !any_tomb || !is_tomb(u) {
            let row: &[u32] = touched
                .get(&u)
                .map(Vec::as_slice)
                .unwrap_or(base.neighbors(u));
            if any_tomb {
                col_idx.extend(row.iter().copied().filter(|&v| !is_tomb(v)));
            } else {
                col_idx.extend_from_slice(row);
            }
        }
        row_ptr.push(col_idx.len() as u64);
    }
    CsrGraph::from_sorted_parts(n, row_ptr, col_idx, directed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> CsrGraph {
        // 0→1→2→3 directed
        CsrGraph::from_sorted_parts(4, vec![0, 1, 2, 3, 3], vec![1, 2, 3], true)
    }

    #[test]
    fn publish_bumps_epoch_and_materializes() {
        let dg = Arc::new(DeltaGraph::from_csr(path4()));
        assert_eq!(dg.current_epoch(), 0);
        let p = dg.add_edges(&[(3, 0)]).unwrap();
        assert_eq!(p.epoch, 1);
        assert_eq!(dg.current_epoch(), 1);
        let pin = dg.pin();
        assert_eq!(pin.graph().neighbors(3), &[0]);
        assert_eq!(pin.graph().num_arcs(), 4);
    }

    #[test]
    fn base_epoch_offsets_published_epochs() {
        let dg = Arc::new(DeltaGraph::with_base_epoch(
            Arc::new(path4()),
            DEFAULT_COMPACT_THRESHOLD,
            9,
        ));
        assert_eq!(dg.current_epoch(), 9);
        let p = dg.add_edges(&[(3, 0)]).unwrap();
        assert_eq!(p.epoch, 10, "publishes continue from the base epoch");
        assert_eq!(dg.pin().epoch(), 10);
        assert_eq!(dg.stats().base_epoch, 9);
    }

    #[test]
    fn pinned_snapshot_isolated_from_later_publishes() {
        let dg = Arc::new(DeltaGraph::from_csr(path4()));
        let pin0 = dg.pin();
        dg.add_edges(&[(0, 2)]).unwrap();
        dg.del_edges(&[(0, 1)]).unwrap();
        assert_eq!(pin0.graph().neighbors(0), &[1]);
        let pin2 = dg.pin();
        assert_eq!(pin2.graph().neighbors(0), &[2]);
        assert_eq!(pin0.epoch(), 0);
        assert_eq!(pin2.epoch(), 2);
    }

    #[test]
    fn undirected_inserts_both_directions() {
        let g = CsrGraph::from_sorted_parts(3, vec![0, 1, 2, 2], vec![1, 0], false);
        let dg = Arc::new(DeltaGraph::from_csr(g));
        dg.add_edges(&[(1, 2)]).unwrap();
        let pin = dg.pin();
        assert_eq!(pin.graph().neighbors(1), &[0, 2]);
        assert_eq!(pin.graph().neighbors(2), &[1]);
    }

    #[test]
    fn tombstones_are_final() {
        let dg = Arc::new(DeltaGraph::from_csr(path4()));
        dg.del_vertices(&[2]).unwrap();
        let pin = dg.pin();
        assert_eq!(pin.graph().degree(2), 0);
        assert_eq!(pin.graph().neighbors(1), &[] as &[u32]);
        assert_eq!(dg.add_edges(&[(2, 3)]), Err(DeltaError::Tombstoned(2)));
    }

    #[test]
    fn out_of_range_rejected() {
        let dg = Arc::new(DeltaGraph::from_csr(path4()));
        assert_eq!(
            dg.add_edges(&[(0, 9)]),
            Err(DeltaError::VertexOutOfRange { v: 9, n: 4 })
        );
        assert_eq!(dg.current_epoch(), 0);
    }

    #[test]
    fn compaction_folds_cold_layers() {
        let dg = Arc::new(DeltaGraph::with_threshold(Arc::new(path4()), 2));
        dg.add_edges(&[(3, 0)]).unwrap();
        let p = dg.add_edges(&[(3, 1)]).unwrap();
        assert_eq!(p.compaction, CompactOutcome::Folded(2));
        let s = dg.stats();
        assert_eq!(s.base_epoch, 2);
        assert_eq!(s.current_epoch, 2);
        assert_eq!(s.layers, 0);
        assert_eq!(s.compactions, 1);
        let pin = dg.pin();
        assert_eq!(pin.graph().neighbors(3), &[0, 1]);
    }

    #[test]
    fn compaction_respects_pins() {
        let dg = Arc::new(DeltaGraph::with_threshold(Arc::new(path4()), 1));
        let pin0 = dg.pin();
        let p = dg.add_edges(&[(3, 0)]).unwrap();
        // Epoch 0 is pinned, so nothing at or below it is foldable —
        // and epoch 1 itself cannot fold past the pin.
        assert_eq!(p.compaction, CompactOutcome::NotNeeded);
        assert_eq!(dg.stats().base_epoch, 0);
        drop(pin0);
        let out = dg.try_compact(&mut |_| CompactAction::Continue);
        assert_eq!(out, CompactOutcome::Folded(1));
        assert_eq!(dg.stats().base_epoch, 1);
    }

    #[test]
    fn aborted_compaction_changes_nothing() {
        let dg = Arc::new(DeltaGraph::with_threshold(Arc::new(path4()), 1));
        let mut kills = 0u32;
        for point in [CompactPoint::Merge, CompactPoint::Swap] {
            let before = dg.stats();
            let out = dg.mutate(
                &[(3, before.epochs_published as u32 % 4)],
                &[],
                &[],
                &mut |p| {
                    if p == point {
                        kills += 1;
                        CompactAction::Abort
                    } else {
                        CompactAction::Continue
                    }
                },
            );
            let pub_ = out.unwrap();
            assert_eq!(pub_.compaction, CompactOutcome::Aborted(point));
            let after = dg.stats();
            assert_eq!(after.base_epoch, before.base_epoch);
            assert_eq!(after.current_epoch, before.current_epoch + 1);
            assert_eq!(after.compactions, before.compactions);
        }
        assert_eq!(kills, 2);
        assert_eq!(dg.stats().compactions_aborted, 2);
        // After the failed attempts, a clean retry folds everything —
        // no epoch was lost.
        let out = dg.try_compact(&mut |_| CompactAction::Continue);
        assert_eq!(out, CompactOutcome::Folded(2));
        let pin = dg.pin();
        assert_eq!(pin.graph().neighbors(3), &[0, 1]);
    }

    #[test]
    fn pin_counters_track_high_water() {
        let dg = Arc::new(DeltaGraph::from_csr(path4()));
        let a = dg.pin();
        let b = dg.pin();
        assert_eq!(dg.stats().pins_active, 2);
        drop(a);
        drop(b);
        let s = dg.stats();
        assert_eq!(s.pins_active, 0);
        assert_eq!(s.pins_high_water, 2);
    }

    #[test]
    fn layers_between_reports_folded_ranges() {
        let dg = Arc::new(DeltaGraph::with_threshold(Arc::new(path4()), 64));
        dg.add_edges(&[(3, 0)]).unwrap();
        dg.add_edges(&[(3, 1)]).unwrap();
        let ls = dg.layers_between(0, 2).unwrap();
        assert_eq!(ls.len(), 2);
        assert_eq!(ls[0].epoch(), 1);
        let dg2 = Arc::new(DeltaGraph::with_threshold(Arc::new(path4()), 1));
        dg2.add_edges(&[(3, 0)]).unwrap();
        assert!(
            dg2.layers_between(0, 1).is_none(),
            "folded range must report None"
        );
    }
}
