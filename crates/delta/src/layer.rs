//! Delta layers: per-epoch edge patches and vertex tombstones.
//!
//! A [`DeltaLayer`] is the immutable, published form of one epoch's
//! mutations: for each touched source vertex a sorted list of inserted
//! and deleted targets, plus a bitmap of vertices deleted wholesale in
//! this epoch. Layers are *non-cumulative* — materializing epoch `e`
//! replays every layer in `(base_epoch, e]` over the frozen base CSR.

use std::collections::BTreeMap;

/// Sorted insert/delete target lists for one source vertex.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VertexPatch {
    /// Targets inserted for this source, sorted ascending, deduped.
    pub add: Vec<u32>,
    /// Targets deleted for this source, sorted ascending, deduped.
    pub del: Vec<u32>,
}

impl VertexPatch {
    fn bytes(&self) -> usize {
        (self.add.len() + self.del.len()) * std::mem::size_of::<u32>()
    }
}

/// One published epoch's worth of mutations.
#[derive(Debug, Clone)]
pub struct DeltaLayer {
    /// The epoch this layer publishes (base_epoch + position + 1).
    epoch: u64,
    /// Per-source patches, keyed by source vertex.
    patches: BTreeMap<u32, VertexPatch>,
    /// Bitmap words (64 vertices per word) of vertices tombstoned in
    /// this epoch. Empty when no vertex was deleted.
    tombstones: Vec<u64>,
}

impl DeltaLayer {
    /// Epoch this layer belongs to.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Per-source patches, keyed by source vertex.
    pub fn patches(&self) -> &BTreeMap<u32, VertexPatch> {
        &self.patches
    }

    /// True when vertex `v` was tombstoned in this epoch.
    pub fn is_tombstoned(&self, v: u32) -> bool {
        let w = (v / 64) as usize;
        self.tombstones
            .get(w)
            .is_some_and(|bits| bits >> (v % 64) & 1 == 1)
    }

    /// True when this layer deletes nothing (neither edges nor
    /// vertices) — the precondition for incremental reachability
    /// extension instead of a full recompute.
    pub fn insert_only(&self) -> bool {
        self.tombstones.iter().all(|w| *w == 0) && self.patches.values().all(|p| p.del.is_empty())
    }

    /// Iterate the `(src, dst)` arcs this layer inserts.
    pub fn added_arcs(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.patches
            .iter()
            .flat_map(|(&u, p)| p.add.iter().map(move |&v| (u, v)))
    }

    /// Approximate heap footprint of this layer, for `delta_bytes`
    /// accounting.
    pub fn bytes(&self) -> usize {
        let patch_bytes: usize = self.patches.values().map(VertexPatch::bytes).sum();
        patch_bytes
            + self.patches.len() * std::mem::size_of::<(u32, VertexPatch)>()
            + self.tombstones.len() * std::mem::size_of::<u64>()
    }
}

/// Mutable staging area for the next epoch's mutations. Sealed into an
/// immutable [`DeltaLayer`] at publish time.
#[derive(Debug, Default)]
pub struct PendingDelta {
    patches: BTreeMap<u32, VertexPatch>,
    tombstoned: Vec<u32>,
}

impl PendingDelta {
    /// True when nothing has been staged (publishing would be a no-op).
    pub fn is_empty(&self) -> bool {
        self.patches.is_empty() && self.tombstoned.is_empty()
    }

    /// Stage an edge insert. An insert cancels a staged delete of the
    /// same arc (last writer wins within a batch).
    pub fn add_arc(&mut self, u: u32, v: u32) {
        let p = self.patches.entry(u).or_default();
        if let Ok(i) = p.del.binary_search(&v) {
            p.del.remove(i);
        }
        if let Err(i) = p.add.binary_search(&v) {
            p.add.insert(i, v);
        }
    }

    /// Stage an edge delete. A delete cancels a staged insert of the
    /// same arc.
    pub fn del_arc(&mut self, u: u32, v: u32) {
        let p = self.patches.entry(u).or_default();
        if let Ok(i) = p.add.binary_search(&v) {
            p.add.remove(i);
        }
        if let Err(i) = p.del.binary_search(&v) {
            p.del.insert(i, v);
        }
    }

    /// Stage a vertex tombstone.
    pub fn del_vertex(&mut self, v: u32) {
        if let Err(i) = self.tombstoned.binary_search(&v) {
            self.tombstoned.insert(i, v);
        }
    }

    /// True when `v` has been tombstoned in this pending batch.
    pub fn is_tombstoned(&self, v: u32) -> bool {
        self.tombstoned.binary_search(&v).is_ok()
    }

    /// Seal into an immutable layer for `epoch`, leaving `self` empty.
    /// `n` sizes the tombstone bitmap.
    pub fn seal(&mut self, epoch: u64, n: u32) -> DeltaLayer {
        let mut tombstones = Vec::new();
        if !self.tombstoned.is_empty() {
            tombstones = vec![0u64; (n as usize).div_ceil(64)];
            for &v in &self.tombstoned {
                tombstones[(v / 64) as usize] |= 1 << (v % 64);
            }
        }
        self.tombstoned.clear();
        DeltaLayer {
            epoch,
            patches: std::mem::take(&mut self.patches),
            tombstones,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_then_del_cancels() {
        let mut p = PendingDelta::default();
        p.add_arc(1, 2);
        p.del_arc(1, 2);
        let layer = p.seal(1, 8);
        let patch = &layer.patches()[&1];
        assert!(patch.add.is_empty());
        assert_eq!(patch.del, vec![2]);
    }

    #[test]
    fn del_then_add_cancels() {
        let mut p = PendingDelta::default();
        p.del_arc(3, 4);
        p.add_arc(3, 4);
        let layer = p.seal(1, 8);
        let patch = &layer.patches()[&3];
        assert_eq!(patch.add, vec![4]);
        assert!(patch.del.is_empty());
    }

    #[test]
    fn seal_sorts_and_dedups() {
        let mut p = PendingDelta::default();
        p.add_arc(0, 5);
        p.add_arc(0, 1);
        p.add_arc(0, 5);
        p.del_vertex(7);
        p.del_vertex(7);
        let layer = p.seal(3, 70);
        assert_eq!(layer.epoch(), 3);
        assert_eq!(layer.patches()[&0].add, vec![1, 5]);
        assert!(layer.is_tombstoned(7));
        assert!(!layer.is_tombstoned(6));
        assert!(!layer.insert_only());
        assert!(p.is_empty());
    }

    #[test]
    fn insert_only_detection() {
        let mut p = PendingDelta::default();
        p.add_arc(2, 3);
        let layer = p.seal(1, 8);
        assert!(layer.insert_only());
        assert_eq!(layer.added_arcs().collect::<Vec<_>>(), vec![(2, 3)]);
        assert!(layer.bytes() > 0);
    }
}
