//! `db-delta`: epoch-versioned dynamic graphs.
//!
//! Every other layer of this workspace treats a graph as frozen at
//! pack/load time. This crate adds mutability without giving up the
//! engines' frozen-CSR assumption: a [`DeltaGraph`] is a frozen base
//! CSR (in-RAM or an mmap'd `db-store` pack) plus published per-epoch
//! [`DeltaLayer`] overlays. Readers [`pin`](DeltaGraph::pin) an epoch
//! and get a materialized [`db_graph::CsrGraph`] snapshot that every
//! existing engine consumes unchanged — snapshot isolation by
//! construction, because the pin guard owns the snapshot.
//!
//! ```
//! use db_delta::DeltaGraph;
//! use db_graph::CsrGraph;
//! use std::sync::Arc;
//!
//! // 0→1→2 path; add a back edge, traverse the new epoch.
//! let base = CsrGraph::from_sorted_parts(3, vec![0, 1, 2, 2], vec![1, 2], true);
//! let dg = Arc::new(DeltaGraph::from_csr(base));
//! let pin0 = dg.pin();
//! dg.add_edges(&[(2, 0)]).unwrap();
//! let pin1 = dg.pin();
//! assert_eq!(pin0.graph().num_arcs(), 2); // old pin: unchanged view
//! assert_eq!(pin1.graph().num_arcs(), 3);
//! ```
//!
//! See [`graph`] for the pin/publish/compact/reclaim lifecycle and
//! DESIGN.md §9 for the invariants the `db-check` model enforces.

#![warn(missing_docs)]

pub mod graph;
pub mod layer;
pub mod reach;

pub use graph::{
    CompactAction, CompactHook, CompactOutcome, CompactPoint, DeltaError, DeltaGraph, DeltaStats,
    EpochPin, Publish, DEFAULT_COMPACT_THRESHOLD,
};
pub use layer::{DeltaLayer, PendingDelta, VertexPatch};
pub use reach::{IncrementalReach, ReachOutcome};
