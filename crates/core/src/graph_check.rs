//! Input validation at the engines' API boundary.
//!
//! Every public `run_*` entry point validates its graph and root with
//! [`validate_input`] before touching a ring: a malformed CSR (stale
//! file loader, a buggy FFI producer, a deliberately corrupt chaos
//! graph) is reported as a typed [`GraphError`] at the boundary instead
//! of panicking with an index error deep inside a steal. Fallible
//! callers — the serve layer's executor — run the same check themselves
//! and map the error to a rejection-with-reason before the engine is
//! ever entered.
//!
//! The check is `O(n + m)` over the two CSR arrays, a few percent of
//! the cheapest traversal that would follow it.

use db_graph::CsrGraph;

/// A structural defect in a traversal input, detected at engine entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// `row_ptr.len() != n + 1`.
    RowPtrLength {
        /// Required length (`n + 1`).
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// `row_ptr` does not start at 0 or end at `col_idx.len()`.
    RowPtrBounds {
        /// First offset (must be 0).
        first: u64,
        /// Final offset.
        last: u64,
        /// Required final offset (`col_idx.len()`).
        arcs: usize,
    },
    /// Row offsets decrease: `row_ptr[at] > row_ptr[at + 1]`.
    NonMonotoneRowPtr {
        /// First index where the offsets decrease.
        at: usize,
    },
    /// A column index points past the vertex count.
    ColumnOutOfRange {
        /// Index of the offending entry in `col_idx`.
        at: usize,
        /// The out-of-range vertex id.
        value: u32,
        /// The vertex count it must stay below.
        n: u32,
    },
    /// The requested root vertex does not exist.
    RootOutOfRange {
        /// The requested root.
        root: u32,
        /// The vertex count.
        n: u32,
    },
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::RowPtrLength { expected, got } => {
                write!(f, "row_ptr length {got} != n + 1 = {expected}")
            }
            GraphError::RowPtrBounds { first, last, arcs } => write!(
                f,
                "row_ptr must span [0, {arcs}] (starts at {first}, ends at {last})"
            ),
            GraphError::NonMonotoneRowPtr { at } => {
                write!(f, "row offsets decrease at index {at}")
            }
            GraphError::ColumnOutOfRange { at, value, n } => {
                write!(f, "col_idx[{at}] = {value} out of range (n = {n})")
            }
            GraphError::RootOutOfRange { root, n } => {
                write!(f, "root {root} out of range (n = {n})")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Validates the CSR structure of `g` (length, bounds, monotonicity,
/// column range). Graphs built by `db_graph::GraphBuilder` or
/// `CsrGraph::try_from_sorted_parts` always pass; only
/// `CsrGraph::from_parts_unchecked` can smuggle a defect this far.
pub fn validate_graph(g: &CsrGraph) -> Result<(), GraphError> {
    let n = g.num_vertices();
    let row_ptr = g.row_ptr();
    let col_idx = g.col_idx();
    if row_ptr.len() != n + 1 {
        return Err(GraphError::RowPtrLength {
            expected: n + 1,
            got: row_ptr.len(),
        });
    }
    let first = row_ptr[0];
    let last = *row_ptr.last().expect("row_ptr nonempty");
    if first != 0 || last as usize != col_idx.len() {
        return Err(GraphError::RowPtrBounds {
            first,
            last,
            arcs: col_idx.len(),
        });
    }
    if let Some(at) = row_ptr.windows(2).position(|w| w[0] > w[1]) {
        return Err(GraphError::NonMonotoneRowPtr { at });
    }
    if let Some(at) = col_idx.iter().position(|&v| v as usize >= n) {
        return Err(GraphError::ColumnOutOfRange {
            at,
            value: col_idx[at],
            n: n as u32,
        });
    }
    Ok(())
}

/// Full engine-entry check: structure plus root range.
pub fn validate_input(g: &CsrGraph, root: u32) -> Result<(), GraphError> {
    validate_graph(g)?;
    if root as usize >= g.num_vertices() {
        return Err(GraphError::RootOutOfRange {
            root,
            n: g.num_vertices() as u32,
        });
    }
    Ok(())
}

/// Engine-entry assertion used by the infallible `run_*` signatures:
/// panics with the typed defect's message, so a bad input fails loudly
/// and uniformly at the boundary rather than corrupting a traversal.
pub(crate) fn assert_valid_input(g: &CsrGraph, root: u32) {
    if let Err(e) = validate_input(g, root) {
        panic!("invalid traversal input: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::GraphBuilder;

    fn good() -> CsrGraph {
        let mut b = GraphBuilder::undirected(4);
        b.edge(0, 1);
        b.edge(1, 2);
        b.edge(2, 3);
        b.build()
    }

    #[test]
    fn builder_graphs_pass() {
        let g = good();
        assert_eq!(validate_input(&g, 0), Ok(()));
        assert_eq!(
            validate_input(&g, 4),
            Err(GraphError::RootOutOfRange { root: 4, n: 4 })
        );
    }

    #[test]
    fn each_defect_is_detected_and_named() {
        let bad_len = CsrGraph::from_parts_unchecked(3, vec![0, 1, 2], vec![1, 2], false);
        assert!(matches!(
            validate_graph(&bad_len),
            Err(GraphError::RowPtrLength {
                expected: 4,
                got: 3
            })
        ));

        let bad_end = CsrGraph::from_parts_unchecked(2, vec![0, 1, 5], vec![1, 0], false);
        assert!(matches!(
            validate_graph(&bad_end),
            Err(GraphError::RowPtrBounds { last: 5, .. })
        ));

        let decreasing = CsrGraph::from_parts_unchecked(3, vec![0, 2, 1, 3], vec![1, 2, 0], false);
        assert!(matches!(
            validate_graph(&decreasing),
            Err(GraphError::NonMonotoneRowPtr { at: 1 })
        ));

        let oob = CsrGraph::from_parts_unchecked(2, vec![0, 1, 2], vec![1, 7], false);
        assert!(matches!(
            validate_graph(&oob),
            Err(GraphError::ColumnOutOfRange {
                at: 1,
                value: 7,
                n: 2
            })
        ));
        // Errors render as human-readable reasons for serve rejections.
        let msg = validate_graph(&oob).unwrap_err().to_string();
        assert!(msg.contains("col_idx[1]"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "invalid traversal input")]
    fn engines_reject_malformed_graphs_at_entry() {
        let oob = CsrGraph::from_parts_unchecked(2, vec![0, 1, 2], vec![1, 7], false);
        crate::native::NativeEngine::default().run(&oob, 0);
    }
}
