//! The native multithreaded DiggerBees engine.
//!
//! This is the *library* form of the algorithm: the same two-level
//! stacks and hierarchical stealing as [`crate::sim`], mapped onto OS
//! threads. Each "warp" is a worker thread; warps are grouped into
//! "blocks" (thread groups) that share the intra-block stealing domain,
//! and blocks steal from each other exactly as in Algorithm 4.
//!
//! Concurrency design (DESIGN.md §1): the GPU kernel coordinates ring
//! ends with `atomicCAS` on `tail`/`bottom`; here each HotRing and
//! ColdSeg is guarded by its own `parking_lot::Mutex` with tiny critical
//! sections — an uncontended acquisition is a single CAS, the same cost
//! class, and the protocol (cutoffs, batch sizes, victim selection,
//! flush-from-`tail`) is preserved verbatim. Ring lengths are also
//! published in atomics so victim scans never take locks.
//!
//! Termination uses a global `live_entries` counter: every entry pushed
//! increments it, every exhausted entry popped decrements it; zero means
//! no warp can ever obtain work again, so the decrementing thread raises
//! the `done` flag. (Entries being copied during a steal stay counted —
//! they are live, merely in transit.)

use crate::cancel::CancelToken;
use crate::config::DiggerBeesConfig;
use crate::stack::{ColdSeg, Entry, HotRing};
use db_gpu_sim::SimStats;
use db_graph::{CsrGraph, VertexId, NO_PARENT};
use db_trace::{EventKind, NullTracer, PhaseKind, TraceEvent, Tracer};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::{Duration, Instant};

/// Tracer plus the engine start time; native engines stamp events with
/// nanoseconds since kernel start (monotone per warp, which is all the
/// exporters require).
pub(crate) struct TraceCtx<'t, T: Tracer> {
    pub(crate) tracer: &'t T,
    pub(crate) t0: Instant,
}

impl<T: Tracer> TraceCtx<'_, T> {
    /// `T::ENABLED` is a compile-time constant: with [`NullTracer`] the
    /// timestamp read, event construction, and call all fold away.
    #[inline(always)]
    pub(crate) fn emit(&self, block: u32, lane: u32, kind: EventKind) {
        if T::ENABLED {
            self.tracer.record(TraceEvent {
                cycle: self.t0.elapsed().as_nanos() as u64,
                block,
                warp: lane,
                kind,
            });
        }
    }
}

/// Configuration for the native engine: the algorithm parameters plus
/// nothing else — thread count is `blocks × warps_per_block`.
#[derive(Debug, Clone, Copy)]
pub struct NativeConfig {
    /// Algorithm parameters. Defaults scale the block geometry down to
    /// CPU-appropriate sizes (4 blocks × 2 warps = 8 threads).
    pub algo: DiggerBeesConfig,
}

impl Default for NativeConfig {
    fn default() -> Self {
        Self {
            algo: DiggerBeesConfig {
                blocks: 4,
                warps_per_block: 2,
                ..DiggerBeesConfig::default()
            },
        }
    }
}

/// Output of a native traversal.
#[derive(Debug, Clone)]
pub struct NativeResult {
    /// Reachability flags.
    pub visited: Vec<bool>,
    /// DFS-tree parents ([`NO_PARENT`] for the root / unvisited).
    pub parent: Vec<u32>,
    /// Steal/flush counters and per-block task counts (`cycles` is 0 —
    /// wall time is in [`NativeResult::wall`]).
    pub stats: SimStats,
    /// Wall-clock duration of the traversal (excluding setup).
    pub wall: Duration,
    /// `false` when the run was stopped early by a [`CancelToken`]; the
    /// output arrays then describe a consistent partial traversal.
    pub completed: bool,
}

impl NativeResult {
    /// Million traversed edges per second by wall clock.
    pub fn mteps(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s == 0.0 {
            return 0.0;
        }
        self.stats.edges_traversed as f64 / s / 1e6
    }
}

struct WarpShared {
    hot: Mutex<HotRing>,
    cold: Mutex<ColdSeg>,
    /// Published `hot_rest` for lock-free victim scans.
    hot_len: AtomicU64,
    /// Published `cold_rest` for lock-free victim scans.
    cold_len: AtomicU64,
}

struct Shared<'g> {
    g: &'g CsrGraph,
    cfg: DiggerBeesConfig,
    visited: Vec<AtomicU8>,
    parent: Vec<AtomicU32>,
    warps: Vec<WarpShared>,
    /// Entries logically alive anywhere (rings, segments, in transit).
    live: AtomicI64,
    done: AtomicBool,
    /// Set when a worker observed a cancelled token and raised `done`.
    cancelled: AtomicBool,
    /// Pending entries per block — the Alg. 4 load signal.
    pending: Vec<AtomicI64>,
    /// Active warps per block — the §3.4 mask, as a counter.
    block_active: Vec<AtomicU32>,
    tasks_per_block: Vec<AtomicU64>,
    steals_intra: AtomicU64,
    steals_inter: AtomicU64,
    steal_failures: AtomicU64,
    flushes: AtomicU64,
    refills: AtomicU64,
    cas_failures: AtomicU64,
    edges: AtomicU64,
    vertices: AtomicU64,
    /// High-water marks across all rings/segments (fetch_max updated
    /// wherever a stack grows).
    hot_hw: AtomicU64,
    cold_hw: AtomicU64,
}

impl<'g> Shared<'g> {
    fn block_of(&self, w: u32) -> u32 {
        w / self.cfg.warps_per_block
    }

    /// Try to claim vertex `v`; true if this thread won the CAS.
    fn claim(&self, v: u32) -> bool {
        self.visited[v as usize]
            // relaxed-ok: failure means another worker won the claim; we
            // read nothing it published, so no acquire is needed
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
    }
}

/// The DiggerBees native engine.
#[derive(Debug, Clone, Default)]
pub struct NativeEngine {
    cfg: NativeConfig,
}

impl NativeEngine {
    /// Creates an engine; `cfg.algo.validate()` is checked at run time.
    pub fn new(cfg: NativeConfig) -> Self {
        Self { cfg }
    }

    /// Runs parallel DFS on `g` from `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range or the configuration is invalid.
    pub fn run(&self, g: &CsrGraph, root: VertexId) -> NativeResult {
        self.run_traced(g, root, &NullTracer)
    }

    /// Runs on any [`db_graph::GraphStore`]-backed graph — packed,
    /// mmap-loaded, or in-RAM — without copying: the engine traverses
    /// the store's CSR view in place.
    pub fn run_store(&self, store: &dyn db_graph::GraphStore, root: VertexId) -> NativeResult {
        self.run(store.graph(), root)
    }

    /// [`NativeEngine::run_cancellable`] over a stored graph.
    pub fn run_store_cancellable(
        &self,
        store: &dyn db_graph::GraphStore,
        root: VertexId,
        token: &CancelToken,
    ) -> NativeResult {
        self.run_cancellable(store.graph(), root, token)
    }

    /// Like [`NativeEngine::run`], but every worker polls `token` at the
    /// top of its loop (one poll per vertex-expansion step). When the
    /// token cancels — by hand or by deadline — all workers stop within
    /// one step and the result comes back with `completed == false`.
    pub fn run_cancellable(
        &self,
        g: &CsrGraph,
        root: VertexId,
        token: &CancelToken,
    ) -> NativeResult {
        self.run_inner(g, root, &NullTracer, Some(token))
    }

    /// Like [`NativeEngine::run`], recording events into `tracer`.
    ///
    /// Event timestamps are nanoseconds since kernel start; block/warp
    /// provenance maps worker thread `w` to block `w / warps_per_block`,
    /// lane `w % warps_per_block`. With [`NullTracer`] this compiles to
    /// exactly [`NativeEngine::run`].
    pub fn run_traced<T: Tracer>(&self, g: &CsrGraph, root: VertexId, tracer: &T) -> NativeResult {
        self.run_inner(g, root, tracer, None)
    }

    fn run_inner<T: Tracer>(
        &self,
        g: &CsrGraph,
        root: VertexId,
        tracer: &T,
        cancel: Option<&CancelToken>,
    ) -> NativeResult {
        let cfg = self.cfg.algo;
        cfg.validate();
        crate::graph_check::assert_valid_input(g, root);
        let n = g.num_vertices();
        let nw = cfg.total_warps();
        let cold_cap = ((n as u32) / nw.max(1)).max(4 * cfg.cold_cutoff);

        let shared = Shared {
            g,
            cfg,
            visited: (0..n).map(|_| AtomicU8::new(0)).collect(),
            parent: (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect(),
            warps: (0..nw)
                .map(|_| WarpShared {
                    hot: Mutex::new(HotRing::new(cfg.hot_size)),
                    cold: Mutex::new(ColdSeg::new(cold_cap)),
                    hot_len: AtomicU64::new(0),
                    cold_len: AtomicU64::new(0),
                })
                .collect(),
            live: AtomicI64::new(0),
            done: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            pending: (0..cfg.blocks).map(|_| AtomicI64::new(0)).collect(),
            block_active: (0..cfg.blocks).map(|_| AtomicU32::new(0)).collect(),
            tasks_per_block: (0..cfg.blocks).map(|_| AtomicU64::new(0)).collect(),
            steals_intra: AtomicU64::new(0),
            steals_inter: AtomicU64::new(0),
            steal_failures: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            refills: AtomicU64::new(0),
            cas_failures: AtomicU64::new(0),
            edges: AtomicU64::new(0),
            vertices: AtomicU64::new(0),
            hot_hw: AtomicU64::new(1), // the seeded root
            cold_hw: AtomicU64::new(0),
        };

        // Seed the root into warp 0.
        shared.visited[root as usize].store(1, Ordering::Release);
        // relaxed-ok: stats counters seeded before any worker spawns
        shared.vertices.store(1, Ordering::Relaxed);
        shared.tasks_per_block[0].store(1, Ordering::Relaxed);
        shared.live.store(1, Ordering::Release);
        shared.pending[0].store(1, Ordering::Release);
        shared.warps[0]
            .hot
            .lock()
            .push((root, 0))
            .expect("fresh ring");
        shared.warps[0].hot_len.store(1, Ordering::Release);
        shared.block_active[0].store(1, Ordering::Release);

        let start = Instant::now();
        let tc = TraceCtx { tracer, t0: start };
        tc.emit(
            0,
            0,
            EventKind::KernelPhase {
                phase: PhaseKind::Start,
            },
        );
        tc.emit(0, 0, EventKind::Push { vertex: root });
        crossbeam::scope(|scope| {
            for w in 0..nw {
                let shared = &shared;
                let tc = &tc;
                let poller = cancel.map(CancelToken::poller);
                scope.spawn(move |_| worker(shared, w, w == 0, tc, poller));
            }
        })
        .expect("worker panicked");
        let wall = start.elapsed();
        tc.emit(
            0,
            0,
            EventKind::KernelPhase {
                phase: PhaseKind::Finish,
            },
        );

        let completed = !shared.cancelled.load(Ordering::Acquire);
        debug_assert!(!completed || shared.live.load(Ordering::SeqCst) == 0);
        let mut stats = SimStats::new(cfg.blocks as usize);
        // relaxed-ok: stats snapshot after every worker has joined; the
        // scope join is the synchronization point (also the next 10 loads)
        stats.vertices_visited = shared.vertices.load(Ordering::Relaxed);
        stats.edges_traversed = shared.edges.load(Ordering::Relaxed);
        stats.steals_intra = shared.steals_intra.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.steals_inter = shared.steals_inter.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.steal_failures = shared.steal_failures.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.flushes = shared.flushes.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.refills = shared.refills.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.visited_cas_failures = shared.cas_failures.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.hot_high_water = shared.hot_hw.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.cold_high_water = shared.cold_hw.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.tasks_per_block = shared
            .tasks_per_block
            .iter()
            .map(|a| a.load(Ordering::Relaxed)) // relaxed-ok: after join
            .collect();
        stats.record_to(db_metrics::global(), "native");
        NativeResult {
            visited: shared
                .visited
                .iter()
                .map(|a| a.load(Ordering::Acquire) != 0)
                .collect(),
            parent: shared
                .parent
                .iter()
                .map(|a| a.load(Ordering::Acquire))
                .collect(),
            stats,
            wall,
            completed,
        }
    }
}

fn worker<T: Tracer>(
    s: &Shared<'_>,
    w: u32,
    initially_active: bool,
    tc: &TraceCtx<'_, T>,
    mut poller: Option<crate::cancel::CancelPoller>,
) {
    let cfg = s.cfg;
    let b = s.block_of(w) as usize;
    let lane = w % cfg.warps_per_block;
    let mut rng =
        SmallRng::seed_from_u64(cfg.seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut active = initially_active;
    let mut backoff = 0u32;

    // Local stat accumulators, merged on exit.
    let mut edges = 0u64;
    let mut vertices = 0u64;
    let mut tasks = 0u64;

    loop {
        if s.done.load(Ordering::Acquire) {
            break;
        }
        // Cooperative cancellation poll point: one poll per step.
        if let Some(p) = poller.as_mut() {
            if p.poll() {
                s.cancelled.store(true, Ordering::Release);
                s.done.store(true, Ordering::Release);
                break;
            }
        }
        if active {
            if work_step(s, w, b, &mut edges, &mut vertices, &mut tasks, tc) {
                backoff = 0;
                continue;
            }
            // Out of local work: flip to idle.
            active = false;
            s.block_active[b].fetch_sub(1, Ordering::AcqRel);
            tc.emit(b as u32, lane, EventKind::WarpIdle);
            continue;
        }
        // Idle: merge hot counters early so other threads see progress,
        // then try to steal.
        if steal_step(s, w, b, &mut rng, tc) {
            active = true;
            backoff = 0;
            s.block_active[b].fetch_add(1, Ordering::AcqRel);
            continue;
        }
        backoff = (backoff + 1).min(16);
        if backoff < 4 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }

    // relaxed-ok: stats counters, read only after the scope join
    s.edges.fetch_add(edges, Ordering::Relaxed);
    s.vertices.fetch_add(vertices, Ordering::Relaxed);
    s.tasks_per_block[b].fetch_add(tasks, Ordering::Relaxed);
}

/// One unit of DFS progress for an active warp. Returns false when the
/// warp has no local work left (hot and cold both empty).
fn work_step<T: Tracer>(
    s: &Shared<'_>,
    w: u32,
    b: usize,
    edges: &mut u64,
    vertices: &mut u64,
    tasks: &mut u64,
    tc: &TraceCtx<'_, T>,
) -> bool {
    let lane = w % s.cfg.warps_per_block;
    let ws = &s.warps[w as usize];
    let mut hot = ws.hot.lock();
    if hot.is_empty() {
        // Refill from own ColdSeg (Figure 2(f)).
        let mut cold = ws.cold.lock();
        if cold.is_empty() {
            return false;
        }
        let batch = cold.take_from_top(hot.capacity() / 2);
        ws.cold_len.store(cold.len(), Ordering::Release);
        drop(cold);
        hot.push_batch(&batch);
        ws.hot_len.store(hot.len(), Ordering::Release);
        s.hot_hw.fetch_max(hot.len(), Ordering::Relaxed); // relaxed-ok: stats
        s.refills.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
        tc.emit(
            b as u32,
            lane,
            EventKind::Refill {
                entries: batch.len() as u32,
            },
        );
        return true;
    }

    let (u, off) = hot.top().expect("nonempty");
    let row = s.g.neighbors(u);
    let deg = row.len() as u32;
    if off >= deg {
        hot.pop();
        ws.hot_len.store(hot.len(), Ordering::Release);
        drop(hot);
        tc.emit(b as u32, lane, EventKind::Pop { vertex: u });
        // relaxed-ok: pending is an advisory load estimate read only by
        // two-choice victim selection; nothing is published under it
        s.pending[b].fetch_sub(1, Ordering::Relaxed);
        if s.live.fetch_sub(1, Ordering::AcqRel) == 1 {
            // This thread consumed the last live entry: traversal done.
            s.done.store(true, Ordering::Release);
        }
        return true;
    }

    // Scan u's remaining neighbors for a vertex we can claim.
    let mut i = off;
    let mut child: Option<Entry> = None;
    while i < deg {
        let v = row[i as usize];
        i += 1;
        // relaxed-ok: optimistic pre-check; claim()'s CAS decides
        if s.visited[v as usize].load(Ordering::Relaxed) != 0 {
            continue;
        }
        if s.claim(v) {
            s.parent[v as usize].store(u, Ordering::Release);
            child = Some((v, 0));
            break;
        }
        s.cas_failures.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
    }
    *edges += (i - off) as u64;
    match child {
        Some((v, _)) => {
            *vertices += 1;
            *tasks += 1;
            // Count the new entry BEFORE it becomes visible: a thief may
            // consume the child instantly, and the live counter must
            // never under-count while the parent continuation exists.
            s.live.fetch_add(1, Ordering::AcqRel);
            // relaxed-ok: advisory victim-selection estimate (see above)
            s.pending[b].fetch_add(1, Ordering::Relaxed);
            hot.update_top((u, i));
            if hot.is_full() {
                // Flush the oldest entries to the ColdSeg (Figure 2(e)).
                let batch = hot.take_from_tail(s.cfg.flush_batch as u64);
                let mut cold = ws.cold.lock();
                cold.push_top(&batch);
                ws.cold_len.store(cold.len(), Ordering::Release);
                s.cold_hw.fetch_max(cold.len(), Ordering::Relaxed); // relaxed-ok: stats
                drop(cold);
                s.flushes.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
                tc.emit(
                    b as u32,
                    lane,
                    EventKind::Flush {
                        entries: batch.len() as u32,
                    },
                );
            }
            hot.push((v, 0)).expect("flush guarantees space");
            ws.hot_len.store(hot.len(), Ordering::Release);
            s.hot_hw.fetch_max(hot.len(), Ordering::Relaxed); // relaxed-ok: stats
            drop(hot);
            tc.emit(b as u32, lane, EventKind::Push { vertex: v });
        }
        None => {
            // Row exhausted without a claim: the entry dies.
            hot.pop();
            ws.hot_len.store(hot.len(), Ordering::Release);
            drop(hot);
            tc.emit(b as u32, lane, EventKind::Pop { vertex: u });
            // relaxed-ok: advisory victim-selection estimate (see above)
            s.pending[b].fetch_sub(1, Ordering::Relaxed);
            if s.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                s.done.store(true, Ordering::Release);
            }
        }
    }
    true
}

/// One steal attempt for an idle warp. Returns true if work was acquired.
fn steal_step<T: Tracer>(
    s: &Shared<'_>,
    w: u32,
    b: usize,
    rng: &mut SmallRng,
    tc: &TraceCtx<'_, T>,
) -> bool {
    let cfg = s.cfg;
    let wpb = cfg.warps_per_block;
    let first = b as u32 * wpb;
    let lane = w % wpb;

    // --- Intra-block (Algorithm 3) ---
    let mut max_rest = 0u64;
    let mut victim = None;
    for peer in first..first + wpb {
        if peer == w {
            continue;
        }
        let rest = s.warps[peer as usize].hot_len.load(Ordering::Acquire);
        if rest > max_rest {
            max_rest = rest;
            victim = Some(peer);
        }
    }
    if let Some(v) = victim {
        if max_rest >= cfg.hot_cutoff as u64 {
            let vs = &s.warps[v as usize];
            let mut vhot = vs.hot.lock();
            // Re-validate under the lock (the atomicCAS of Alg. 3).
            if vhot.len() >= cfg.hot_cutoff as u64 {
                let batch = vhot.take_from_tail(cfg.hot_steal_batch() as u64);
                vs.hot_len.store(vhot.len(), Ordering::Release);
                drop(vhot);
                deposit(s, w, &batch);
                s.steals_intra.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
                tc.emit(
                    b as u32,
                    lane,
                    EventKind::StealIntra {
                        victim_warp: v % wpb,
                        entries: batch.len() as u32,
                    },
                );
                return true;
            }
            drop(vhot);
            s.steal_failures.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
            tc.emit(b as u32, lane, EventKind::StealFail { victim: v % wpb });
        }
    }

    // --- Inter-block (Algorithm 4): leader warp of an idle block ---
    if !cfg.inter_block || cfg.blocks <= 1 || w != first {
        return false;
    }
    if s.block_active[b].load(Ordering::Acquire) != 0 {
        return false;
    }
    let candidate = select_victim_block(s, b as u32, rng);
    let Some(vb) = candidate else { return false };
    // Victim warp: max published cold_rest in the victim block.
    let vfirst = vb * wpb;
    let mut best: Option<(u64, u32)> = None;
    for peer in vfirst..vfirst + wpb {
        let rest = s.warps[peer as usize].cold_len.load(Ordering::Acquire);
        if best.is_none_or(|(br, _)| rest > br) && rest > 0 {
            best = Some((rest, peer));
        }
    }
    let Some((rest, vw)) = best else { return false };
    if rest < cfg.cold_cutoff as u64 {
        return false;
    }
    let vs = &s.warps[vw as usize];
    let mut vcold = vs.cold.lock();
    if vcold.len() < cfg.cold_cutoff as u64 {
        drop(vcold);
        s.steal_failures.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
        tc.emit(b as u32, lane, EventKind::StealFail { victim: vb });
        return false;
    }
    let batch = vcold.take_from_bottom(cfg.cold_steal_batch() as u64);
    vs.cold_len.store(vcold.len(), Ordering::Release);
    drop(vcold);
    let k = batch.len() as i64;
    // relaxed-ok: advisory victim-selection estimates; a stale value only
    // costs one misdirected steal probe
    s.pending[vb as usize].fetch_sub(k, Ordering::Relaxed);
    s.pending[b].fetch_add(k, Ordering::Relaxed);
    deposit(s, w, &batch);
    s.steals_inter.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
    tc.emit(
        b as u32,
        lane,
        EventKind::StealInter {
            victim_block: vb,
            entries: batch.len() as u32,
        },
    );
    true
}

/// Power-of-two-choices (or uniform random) victim-block selection.
fn select_victim_block(s: &Shared<'_>, my_block: u32, rng: &mut SmallRng) -> Option<u32> {
    let nb = s.cfg.blocks;
    match s.cfg.victim_policy {
        crate::config::VictimPolicy::Random => {
            // Blind single sample — the Fig. 9 baseline has no load info.
            let c = rng.gen_range(0..nb);
            if c == my_block {
                None
            } else {
                Some(c)
            }
        }
        crate::config::VictimPolicy::TwoChoice => {
            let mut best: Option<(i64, u32)> = None;
            let mut found = 0;
            for _ in 0..8 {
                let c = rng.gen_range(0..nb);
                if c == my_block || s.block_active[c as usize].load(Ordering::Acquire) == 0 {
                    continue;
                }
                // relaxed-ok: advisory estimate; staleness is tolerated
                let load = s.pending[c as usize].load(Ordering::Relaxed);
                if best.is_none_or(|(bl, _)| load > bl) {
                    best = Some((load, c));
                }
                found += 1;
                if found == 2 {
                    break;
                }
            }
            best.map(|(_, c)| c)
        }
    }
}

/// Places stolen entries into the thief's (empty) HotRing.
fn deposit(s: &Shared<'_>, w: u32, batch: &[Entry]) {
    let ws = &s.warps[w as usize];
    let mut hot = ws.hot.lock();
    hot.push_batch(batch);
    ws.hot_len.store(hot.len(), Ordering::Release);
    s.hot_hw.fetch_max(hot.len(), Ordering::Relaxed); // relaxed-ok: stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::validate::{check_reachability, check_spanning_tree};
    use db_graph::GraphBuilder;

    fn grid(w: u32, h: u32) -> CsrGraph {
        let mut b = GraphBuilder::undirected(w * h);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.edge(y * w + x, y * w + x + 1);
                }
                if y + 1 < h {
                    b.edge(y * w + x, (y + 1) * w + x);
                }
            }
        }
        b.build()
    }

    fn small_cfg() -> NativeConfig {
        NativeConfig {
            algo: DiggerBeesConfig {
                blocks: 2,
                warps_per_block: 2,
                hot_size: 16,
                hot_cutoff: 4,
                cold_cutoff: 8,
                flush_batch: 8,
                ..Default::default()
            },
        }
    }

    #[test]
    fn traverses_figure1() {
        let g = GraphBuilder::undirected(6)
            .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4), (2, 5)])
            .build();
        let out = NativeEngine::new(small_cfg()).run(&g, 0);
        check_reachability(&g, 0, &out.visited).unwrap();
        check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
        assert_eq!(out.stats.vertices_visited, 6);
    }

    #[test]
    fn grid_traversal_valid() {
        let g = grid(50, 50);
        let out = NativeEngine::new(small_cfg()).run(&g, 17);
        check_reachability(&g, 17, &out.visited).unwrap();
        check_spanning_tree(&g, 17, &out.visited, &out.parent).unwrap();
        assert_eq!(out.stats.edges_traversed, g.num_arcs() as u64);
    }

    #[test]
    fn deep_path_exercises_flush_refill() {
        // Single warp so thieves cannot drain the ring before it fills.
        let n = 5000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let cfg = NativeConfig {
            algo: DiggerBeesConfig {
                blocks: 1,
                warps_per_block: 1,
                inter_block: false,
                ..small_cfg().algo
            },
        };
        let out = NativeEngine::new(cfg).run(&g, 0);
        check_reachability(&g, 0, &out.visited).unwrap();
        assert!(out.stats.flushes > 0);
        assert!(out.stats.refills > 0);
    }

    #[test]
    fn disconnected_graph_partial_visit() {
        let mut b = GraphBuilder::undirected(10);
        b.edge(0, 1);
        b.edge(5, 6);
        let g = b.build();
        let out = NativeEngine::new(small_cfg()).run(&g, 0);
        assert!(out.visited[0] && out.visited[1]);
        assert!(!out.visited[5] && !out.visited[6]);
    }

    #[test]
    fn default_config_runs() {
        // Defaults use 8 threads; make sure they terminate on a small graph.
        let g = grid(20, 20);
        let out = NativeEngine::new(NativeConfig::default()).run(&g, 0);
        check_reachability(&g, 0, &out.visited).unwrap();
    }

    #[test]
    fn stress_repeat_runs_agree_on_reachability() {
        let g = grid(30, 30);
        for _ in 0..5 {
            let out = NativeEngine::new(small_cfg()).run(&g, 0);
            check_reachability(&g, 0, &out.visited).unwrap();
            check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
        }
    }

    #[test]
    fn mteps_is_positive() {
        let g = grid(40, 40);
        let out = NativeEngine::new(small_cfg()).run(&g, 0);
        assert!(out.mteps() > 0.0);
        assert!(out.wall > Duration::ZERO);
    }

    #[test]
    fn precancelled_token_stops_immediately() {
        let g = grid(60, 60);
        let token = CancelToken::new();
        token.cancel();
        let out = NativeEngine::new(small_cfg()).run_cancellable(&g, 0, &token);
        assert!(!out.completed);
        // Workers poll before their first step, so (at most) the
        // pre-seeded root is marked.
        assert!(out.visited.iter().filter(|&&v| v).count() < g.num_vertices());
    }

    #[test]
    fn uncancelled_token_runs_to_completion() {
        let g = grid(30, 30);
        let token = CancelToken::new();
        let out = NativeEngine::new(small_cfg()).run_cancellable(&g, 0, &token);
        assert!(out.completed);
        check_reachability(&g, 0, &out.visited).unwrap();
        check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
    }

    #[test]
    fn expired_deadline_yields_partial_but_consistent_prefix() {
        // A long path forces a serial frontier, so the traversal cannot
        // finish before the (already expired) deadline is observed at
        // the first poll point.
        let n = 200_000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let token = CancelToken::with_deadline(std::time::Instant::now());
        let out = NativeEngine::new(small_cfg()).run_cancellable(&g, 0, &token);
        assert!(!out.completed);
        // The visited prefix must still be parent-consistent: every
        // visited non-root vertex has a visited parent.
        for v in 1..n as usize {
            if out.visited[v] {
                let p = out.parent[v];
                assert!(p != NO_PARENT && out.visited[p as usize]);
            }
        }
    }

    #[test]
    fn run_records_into_global_registry() {
        let runs = db_metrics::global().counter(
            "db_engine_runs_total",
            "Completed traversal runs per engine",
            &[("engine", "native")],
        );
        let before = runs.get();
        let out = NativeEngine::new(small_cfg()).run(&grid(20, 20), 0);
        assert!(out.stats.hot_high_water >= 1);
        assert!(runs.get() > before, "run must bump the global run counter");
    }

    #[test]
    fn run_store_matches_run() {
        let g = grid(12, 12);
        let store: &dyn db_graph::GraphStore = &g;
        let direct = NativeEngine::new(small_cfg()).run(&g, 0);
        let stored = NativeEngine::new(small_cfg()).run_store(store, 0);
        assert_eq!(stored.visited, direct.visited);
        let token = CancelToken::new();
        let cancellable = NativeEngine::new(small_cfg()).run_store_cancellable(store, 0, &token);
        assert!(cancellable.completed);
        assert_eq!(cancellable.visited, direct.visited);
    }

    #[test]
    fn single_thread_config() {
        let g = grid(15, 15);
        let cfg = NativeConfig {
            algo: DiggerBeesConfig {
                blocks: 1,
                warps_per_block: 1,
                inter_block: false,
                ..small_cfg().algo
            },
        };
        let out = NativeEngine::new(cfg).run(&g, 0);
        check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
        assert_eq!(out.stats.steals_intra + out.stats.steals_inter, 0);
    }
}
