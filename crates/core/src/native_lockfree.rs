//! Lock-free variant of the native engine.
//!
//! Same algorithm as [`crate::native`] — two-level stacks, intra-block
//! and inter-block stealing — but the HotRing uses the GPU-faithful
//! lock-free CAS protocol ([`crate::lockfree::StampedRing`]) instead of
//! a mutex: victim scans read the packed control word, intra-block
//! thieves reserve batches with a CAS at `tail`, and the owner claims
//! entries at `head`. The ColdSeg stays behind a mutex (inter-block
//! steals are rare by design — that is what `cold_cutoff` is for).
//!
//! The owner uses pop-process-push instead of in-place `updateTop`
//! (see the protocol note in [`crate::lockfree`]); entry liveness
//! accounting is unchanged: an entry in the owner's hand is still live,
//! and `live == 0` terminates.

use crate::cancel::CancelToken;
use crate::config::DiggerBeesConfig;
use crate::lockfree::StampedRing;
use crate::native::{NativeResult, TraceCtx};
use crate::stack::{ColdSeg, Entry};
use db_gpu_sim::SimStats;
use db_graph::{CsrGraph, VertexId, NO_PARENT};
use db_trace::{EventKind, NullTracer, PhaseKind, Tracer};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

struct WarpShared {
    hot: StampedRing,
    cold: Mutex<ColdSeg>,
    cold_len: AtomicU64,
}

struct Shared<'g> {
    g: &'g CsrGraph,
    cfg: DiggerBeesConfig,
    visited: Vec<AtomicU8>,
    parent: Vec<AtomicU32>,
    warps: Vec<WarpShared>,
    live: AtomicI64,
    done: AtomicBool,
    cancelled: AtomicBool,
    pending: Vec<AtomicI64>,
    block_active: Vec<AtomicU32>,
    tasks_per_block: Vec<AtomicU64>,
    steals_intra: AtomicU64,
    steals_inter: AtomicU64,
    steal_failures: AtomicU64,
    flushes: AtomicU64,
    refills: AtomicU64,
    cas_failures: AtomicU64,
    edges: AtomicU64,
    vertices: AtomicU64,
    hot_hw: AtomicU64,
    cold_hw: AtomicU64,
}

/// Lock-free-HotRing DiggerBees engine (same API as
/// [`crate::native::NativeEngine`]).
#[derive(Debug, Clone, Default)]
pub struct LockFreeEngine {
    cfg: crate::native::NativeConfig,
}

impl LockFreeEngine {
    /// Creates an engine.
    pub fn new(cfg: crate::native::NativeConfig) -> Self {
        Self { cfg }
    }

    /// Runs parallel DFS on `g` from `root`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range or the configuration is invalid.
    pub fn run(&self, g: &CsrGraph, root: VertexId) -> NativeResult {
        self.run_traced(g, root, &NullTracer)
    }

    /// Runs on any [`db_graph::GraphStore`]-backed graph (same contract
    /// as [`crate::native::NativeEngine::run_store`]).
    pub fn run_store(&self, store: &dyn db_graph::GraphStore, root: VertexId) -> NativeResult {
        self.run(store.graph(), root)
    }

    /// [`LockFreeEngine::run_cancellable`] over a stored graph.
    pub fn run_store_cancellable(
        &self,
        store: &dyn db_graph::GraphStore,
        root: VertexId,
        token: &CancelToken,
    ) -> NativeResult {
        self.run_cancellable(store.graph(), root, token)
    }

    /// Like [`LockFreeEngine::run`], polling `token` at every worker
    /// step (same contract as
    /// [`crate::native::NativeEngine::run_cancellable`]).
    pub fn run_cancellable(
        &self,
        g: &CsrGraph,
        root: VertexId,
        token: &CancelToken,
    ) -> NativeResult {
        self.run_inner(g, root, &NullTracer, Some(token))
    }

    /// Like [`LockFreeEngine::run`], recording events into `tracer`
    /// (same provenance scheme as
    /// [`crate::native::NativeEngine::run_traced`]).
    pub fn run_traced<T: Tracer>(&self, g: &CsrGraph, root: VertexId, tracer: &T) -> NativeResult {
        self.run_inner(g, root, tracer, None)
    }

    fn run_inner<T: Tracer>(
        &self,
        g: &CsrGraph,
        root: VertexId,
        tracer: &T,
        cancel: Option<&CancelToken>,
    ) -> NativeResult {
        let cfg = self.cfg.algo;
        cfg.validate();
        crate::graph_check::assert_valid_input(g, root);
        let n = g.num_vertices();
        let nw = cfg.total_warps();
        let cold_cap = ((n as u32) / nw.max(1)).max(4 * cfg.cold_cutoff);

        let shared = Shared {
            g,
            cfg,
            visited: (0..n).map(|_| AtomicU8::new(0)).collect(),
            parent: (0..n).map(|_| AtomicU32::new(NO_PARENT)).collect(),
            warps: (0..nw)
                .map(|_| WarpShared {
                    hot: StampedRing::new(cfg.hot_size),
                    cold: Mutex::new(ColdSeg::new(cold_cap)),
                    cold_len: AtomicU64::new(0),
                })
                .collect(),
            live: AtomicI64::new(0),
            done: AtomicBool::new(false),
            cancelled: AtomicBool::new(false),
            pending: (0..cfg.blocks).map(|_| AtomicI64::new(0)).collect(),
            block_active: (0..cfg.blocks).map(|_| AtomicU32::new(0)).collect(),
            tasks_per_block: (0..cfg.blocks).map(|_| AtomicU64::new(0)).collect(),
            steals_intra: AtomicU64::new(0),
            steals_inter: AtomicU64::new(0),
            steal_failures: AtomicU64::new(0),
            flushes: AtomicU64::new(0),
            refills: AtomicU64::new(0),
            cas_failures: AtomicU64::new(0),
            edges: AtomicU64::new(0),
            vertices: AtomicU64::new(0),
            hot_hw: AtomicU64::new(1), // the seeded root
            cold_hw: AtomicU64::new(0),
        };

        shared.visited[root as usize].store(1, Ordering::Release);
        // relaxed-ok: stats counters seeded before any worker spawns
        shared.vertices.store(1, Ordering::Relaxed);
        shared.tasks_per_block[0].store(1, Ordering::Relaxed);
        shared.live.store(1, Ordering::Release);
        shared.pending[0].store(1, Ordering::Release);
        shared.warps[0].hot.push((root, 0)).expect("fresh ring");
        shared.block_active[0].store(1, Ordering::Release);

        let start = Instant::now();
        let tc = TraceCtx { tracer, t0: start };
        tc.emit(
            0,
            0,
            EventKind::KernelPhase {
                phase: PhaseKind::Start,
            },
        );
        tc.emit(0, 0, EventKind::Push { vertex: root });
        crossbeam::scope(|scope| {
            for w in 0..nw {
                let shared = &shared;
                let tc = &tc;
                let poller = cancel.map(CancelToken::poller);
                scope.spawn(move |_| worker(shared, w, w == 0, tc, poller));
            }
        })
        .expect("worker panicked");
        let wall = start.elapsed();
        tc.emit(
            0,
            0,
            EventKind::KernelPhase {
                phase: PhaseKind::Finish,
            },
        );

        let mut stats = SimStats::new(cfg.blocks as usize);
        // relaxed-ok: stats snapshot; the scope join above synchronizes
        stats.vertices_visited = shared.vertices.load(Ordering::Relaxed);
        stats.edges_traversed = shared.edges.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.steals_intra = shared.steals_intra.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.steals_inter = shared.steals_inter.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.steal_failures = shared.steal_failures.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.flushes = shared.flushes.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.refills = shared.refills.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.visited_cas_failures = shared.cas_failures.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.hot_high_water = shared.hot_hw.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.cold_high_water = shared.cold_hw.load(Ordering::Relaxed); // relaxed-ok: after join
        stats.tasks_per_block = shared
            .tasks_per_block
            .iter()
            .map(|a| a.load(Ordering::Relaxed)) // relaxed-ok: after join
            .collect();
        stats.record_to(db_metrics::global(), "lockfree");
        NativeResult {
            visited: shared
                .visited
                .iter()
                .map(|a| a.load(Ordering::Acquire) != 0)
                .collect(),
            parent: shared
                .parent
                .iter()
                .map(|a| a.load(Ordering::Acquire))
                .collect(),
            stats,
            wall,
            completed: !shared.cancelled.load(Ordering::Acquire),
        }
    }
}

fn worker<T: Tracer>(
    s: &Shared<'_>,
    w: u32,
    initially_active: bool,
    tc: &TraceCtx<'_, T>,
    mut poller: Option<crate::cancel::CancelPoller>,
) {
    let cfg = s.cfg;
    let b = (w / cfg.warps_per_block) as usize;
    let lane = w % cfg.warps_per_block;
    let mut rng =
        SmallRng::seed_from_u64(cfg.seed ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut active = initially_active;
    let mut backoff = 0u32;
    let mut edges = 0u64;
    let mut vertices = 0u64;
    let mut tasks = 0u64;

    loop {
        if s.done.load(Ordering::Acquire) {
            break;
        }
        // Cooperative cancellation poll point: one poll per step.
        if let Some(p) = poller.as_mut() {
            if p.poll() {
                s.cancelled.store(true, Ordering::Release);
                s.done.store(true, Ordering::Release);
                break;
            }
        }
        if active {
            if work_step(s, w, b, &mut edges, &mut vertices, &mut tasks, tc) {
                backoff = 0;
                continue;
            }
            active = false;
            s.block_active[b].fetch_sub(1, Ordering::AcqRel);
            tc.emit(b as u32, lane, EventKind::WarpIdle);
            continue;
        }
        if steal_step(s, w, b, &mut rng, tc) {
            active = true;
            backoff = 0;
            s.block_active[b].fetch_add(1, Ordering::AcqRel);
            continue;
        }
        backoff = (backoff + 1).min(16);
        if backoff < 4 {
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
    // relaxed-ok: stats counters, read only after the scope join
    s.edges.fetch_add(edges, Ordering::Relaxed);
    s.vertices.fetch_add(vertices, Ordering::Relaxed);
    s.tasks_per_block[b].fetch_add(tasks, Ordering::Relaxed);
}

/// One pop-process-push step. Returns false when out of local work.
fn work_step<T: Tracer>(
    s: &Shared<'_>,
    w: u32,
    b: usize,
    edges: &mut u64,
    vertices: &mut u64,
    tasks: &mut u64,
    tc: &TraceCtx<'_, T>,
) -> bool {
    let lane = w % s.cfg.warps_per_block;
    let ws = &s.warps[w as usize];
    let Some((u, off)) = ws.hot.pop() else {
        // Refill from own ColdSeg.
        let mut cold = ws.cold.lock();
        if cold.is_empty() {
            return false;
        }
        let batch = cold.take_from_top(ws.hot.capacity() as u64 / 2);
        ws.cold_len.store(cold.len(), Ordering::Release);
        drop(cold);
        let entries = batch.len() as u32;
        for e in batch {
            ws.hot.push(e).expect("refill fits an empty ring");
        }
        s.hot_hw.fetch_max(ws.hot.len() as u64, Ordering::Relaxed); // relaxed-ok: stats
        s.refills.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
        tc.emit(b as u32, lane, EventKind::Refill { entries });
        return true;
    };

    let row = s.g.neighbors(u);
    let deg = row.len() as u32;
    let mut i = off;
    let mut child: Option<Entry> = None;
    while i < deg {
        let v = row[i as usize];
        i += 1;
        // relaxed-ok: optimistic pre-check; the CAS below decides
        if s.visited[v as usize].load(Ordering::Relaxed) != 0 {
            continue;
        }
        // relaxed-ok: CAS failure means another worker won the claim; we
        // read nothing it published, so no acquire is needed
        if s.visited[v as usize]
            .compare_exchange(0, 1, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            s.parent[v as usize].store(u, Ordering::Release);
            child = Some((v, 0));
            break;
        }
        s.cas_failures.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
    }
    *edges += (i - off) as u64;
    match child {
        Some((v, _)) => {
            *vertices += 1;
            *tasks += 1;
            // Count the new entry BEFORE publishing it (a thief may
            // consume the child instantly; the live counter must never
            // under-count while the parent continuation exists).
            s.live.fetch_add(1, Ordering::AcqRel);
            // relaxed-ok: pending is an advisory load estimate read only by
            // two-choice victim selection; nothing is published under it
            s.pending[b].fetch_add(1, Ordering::Relaxed);
            // Push the continuation then the child (child on top).
            push_with_flush(s, w, (u, i), tc);
            push_with_flush(s, w, (v, 0), tc);
            tc.emit(b as u32, lane, EventKind::Push { vertex: v });
        }
        None => {
            tc.emit(b as u32, lane, EventKind::Pop { vertex: u });
            // relaxed-ok: advisory victim-selection estimate (see above)
            s.pending[b].fetch_sub(1, Ordering::Relaxed);
            if s.live.fetch_sub(1, Ordering::AcqRel) == 1 {
                s.done.store(true, Ordering::Release);
            }
        }
    }
    true
}

/// Push, flushing the oldest entries to the ColdSeg when the ring is
/// full (the flush consumes from `tail` through the same steal path a
/// thief uses, so it composes with concurrent steals).
fn push_with_flush<T: Tracer>(s: &Shared<'_>, w: u32, e: Entry, tc: &TraceCtx<'_, T>) {
    let ws = &s.warps[w as usize];
    loop {
        match ws.hot.push(e) {
            Ok(()) => {
                // relaxed-ok: stats high-water mark
                s.hot_hw.fetch_max(ws.hot.len() as u64, Ordering::Relaxed);
                return;
            }
            Err(_) => {
                let batch = ws.hot.take_from_tail(s.cfg.flush_batch, 1, 4);
                if batch.is_empty() {
                    // Thieves are draining the ring; retry the push.
                    std::hint::spin_loop();
                    continue;
                }
                let mut cold = ws.cold.lock();
                cold.push_top(&batch);
                ws.cold_len.store(cold.len(), Ordering::Release);
                s.cold_hw.fetch_max(cold.len(), Ordering::Relaxed); // relaxed-ok: stats
                drop(cold);
                s.flushes.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
                tc.emit(
                    w / s.cfg.warps_per_block,
                    w % s.cfg.warps_per_block,
                    EventKind::Flush {
                        entries: batch.len() as u32,
                    },
                );
            }
        }
    }
}

fn steal_step<T: Tracer>(
    s: &Shared<'_>,
    w: u32,
    b: usize,
    rng: &mut SmallRng,
    tc: &TraceCtx<'_, T>,
) -> bool {
    let cfg = s.cfg;
    let wpb = cfg.warps_per_block;
    let first = b as u32 * wpb;
    let lane = w % wpb;

    // Intra-block: CAS reservation straight on the victim's ring.
    let mut max_rest = 0u32;
    let mut victim = None;
    for peer in first..first + wpb {
        if peer == w {
            continue;
        }
        let rest = s.warps[peer as usize].hot.len();
        if rest > max_rest {
            max_rest = rest;
            victim = Some(peer);
        }
    }
    if let Some(v) = victim {
        if max_rest >= cfg.hot_cutoff {
            let batch =
                s.warps[v as usize]
                    .hot
                    .take_from_tail(cfg.hot_steal_batch(), cfg.hot_cutoff, 2);
            if batch.is_empty() {
                s.steal_failures.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
                tc.emit(b as u32, lane, EventKind::StealFail { victim: v % wpb });
            } else {
                let entries = batch.len() as u32;
                for e in batch {
                    push_with_flush(s, w, e, tc);
                }
                s.steals_intra.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
                tc.emit(
                    b as u32,
                    lane,
                    EventKind::StealIntra {
                        victim_warp: v % wpb,
                        entries,
                    },
                );
                return true;
            }
        }
    }

    // Inter-block: leader warp of an idle block; ColdSeg under its lock.
    if !cfg.inter_block || cfg.blocks <= 1 || w != first {
        return false;
    }
    if s.block_active[b].load(Ordering::Acquire) != 0 {
        return false;
    }
    let vb = match cfg.victim_policy {
        crate::config::VictimPolicy::Random => {
            let c = rng.gen_range(0..cfg.blocks);
            if c == b as u32 {
                return false;
            }
            c
        }
        crate::config::VictimPolicy::TwoChoice => {
            let mut best: Option<(i64, u32)> = None;
            let mut found = 0;
            for _ in 0..8 {
                let c = rng.gen_range(0..cfg.blocks);
                if c == b as u32 || s.block_active[c as usize].load(Ordering::Acquire) == 0 {
                    continue;
                }
                // relaxed-ok: advisory estimate; staleness is tolerated
                let load = s.pending[c as usize].load(Ordering::Relaxed);
                if best.is_none_or(|(bl, _)| load > bl) {
                    best = Some((load, c));
                }
                found += 1;
                if found == 2 {
                    break;
                }
            }
            match best {
                Some((_, c)) => c,
                None => return false,
            }
        }
    };
    let vfirst = vb * wpb;
    let mut best: Option<(u64, u32)> = None;
    for peer in vfirst..vfirst + wpb {
        let rest = s.warps[peer as usize].cold_len.load(Ordering::Acquire);
        if rest > 0 && best.is_none_or(|(br, _)| rest > br) {
            best = Some((rest, peer));
        }
    }
    let Some((rest, vw)) = best else { return false };
    if rest < cfg.cold_cutoff as u64 {
        return false;
    }
    let vs = &s.warps[vw as usize];
    let mut vcold = vs.cold.lock();
    if vcold.len() < cfg.cold_cutoff as u64 {
        drop(vcold);
        s.steal_failures.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
        tc.emit(b as u32, lane, EventKind::StealFail { victim: vb });
        return false;
    }
    let batch = vcold.take_from_bottom(cfg.cold_steal_batch() as u64);
    vs.cold_len.store(vcold.len(), Ordering::Release);
    drop(vcold);
    let k = batch.len() as i64;
    // relaxed-ok: advisory victim-selection estimates; a stale value only
    // costs one misdirected steal probe
    s.pending[vb as usize].fetch_sub(k, Ordering::Relaxed);
    s.pending[b].fetch_add(k, Ordering::Relaxed);
    let entries = batch.len() as u32;
    for e in batch {
        push_with_flush(s, w, e, tc);
    }
    s.steals_inter.fetch_add(1, Ordering::Relaxed); // relaxed-ok: stats
    tc.emit(
        b as u32,
        lane,
        EventKind::StealInter {
            victim_block: vb,
            entries,
        },
    );
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::native::NativeConfig;
    use db_graph::validate::{check_reachability, check_spanning_tree};
    use db_graph::GraphBuilder;

    fn grid(w: u32, h: u32) -> CsrGraph {
        let mut b = GraphBuilder::undirected(w * h);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.edge(y * w + x, y * w + x + 1);
                }
                if y + 1 < h {
                    b.edge(y * w + x, (y + 1) * w + x);
                }
            }
        }
        b.build()
    }

    fn small_cfg() -> NativeConfig {
        NativeConfig {
            algo: DiggerBeesConfig {
                blocks: 2,
                warps_per_block: 2,
                hot_size: 16,
                hot_cutoff: 4,
                cold_cutoff: 8,
                flush_batch: 8,
                ..Default::default()
            },
        }
    }

    #[test]
    fn lockfree_traverses_grid() {
        let g = grid(40, 40);
        let out = LockFreeEngine::new(small_cfg()).run(&g, 0);
        check_reachability(&g, 0, &out.visited).unwrap();
        check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
        assert_eq!(out.stats.edges_traversed, g.num_arcs() as u64);
    }

    #[test]
    fn lockfree_deep_path_flushes() {
        let n = 5000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let cfg = NativeConfig {
            algo: DiggerBeesConfig {
                blocks: 1,
                warps_per_block: 1,
                inter_block: false,
                ..small_cfg().algo
            },
        };
        let out = LockFreeEngine::new(cfg).run(&g, 0);
        check_reachability(&g, 0, &out.visited).unwrap();
        assert!(out.stats.flushes > 0);
    }

    #[test]
    fn lockfree_repeat_stress() {
        let g = grid(30, 30);
        for _ in 0..8 {
            let out = LockFreeEngine::new(small_cfg()).run(&g, 0);
            check_reachability(&g, 0, &out.visited).unwrap();
            check_spanning_tree(&g, 0, &out.visited, &out.parent).unwrap();
        }
    }

    #[test]
    fn lockfree_matches_locked_engine() {
        let g = grid(35, 35);
        let locked = crate::native::NativeEngine::new(small_cfg()).run(&g, 3);
        let lockfree = LockFreeEngine::new(small_cfg()).run(&g, 3);
        assert_eq!(locked.visited, lockfree.visited);
        assert_eq!(
            locked.stats.vertices_visited,
            lockfree.stats.vertices_visited
        );
    }

    #[test]
    fn lockfree_disconnected() {
        let mut b = GraphBuilder::undirected(10);
        b.edge(0, 1);
        b.edge(5, 6);
        let g = b.build();
        let out = LockFreeEngine::new(small_cfg()).run(&g, 0);
        assert!(out.visited[1] && !out.visited[5]);
    }
}
