//! The simulated DiggerBees engine.
//!
//! Executes the full §3 algorithm — warp-level DFS on two-level stacks
//! with intra-block and inter-block stealing — as per-warp state
//! machines driven by the deterministic discrete-event scheduler of
//! `db-gpu-sim`. Every warp is an agent; each event performs one atomic
//! protocol step (a 32-edge scan, a flush, a victim scan, a steal
//! reservation, …) and charges the machine model's cycle cost for it.
//!
//! Faithfulness notes:
//!
//! * Steal operations are split into *selection* and *reservation*
//!   events, so a thief's reservation can fail because another thief got
//!   there first — Warp2's failed `atomicCAS` in Figure 3(a) happens
//!   here for real.
//! * Flushes take the *oldest* entries from `tail` (§3.3's locality and
//!   steal-candidate argument); refills take the newest from `top`.
//! * Inter-block stealing is performed by the leader warp of a fully
//!   idle block only, with power-of-two-choices load-aware victim
//!   selection (Algorithm 4), or uniformly random victim selection when
//!   configured as the Fig. 9 baseline.
//! * The v1 breakdown variant keeps the whole stack in global memory:
//!   same protocol, global-memory costs, no flush/refill.

use crate::config::{DiggerBeesConfig, StackLevels, VictimPolicy};
use crate::stack::{ColdSeg, HotRing};
use db_fault::{FaultKind, Injector, Site};
use db_gpu_sim::{Des, MachineModel, MemPipeline, NoProfiler, Profiler, SimPhase, SimStats};
use db_graph::{CsrGraph, VertexId, NO_PARENT};
use db_trace::{EventKind, NullTracer, PhaseKind, TraceEvent, Tracer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Result of a simulated traversal.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Reachability flags (Table 2 `visited` output).
    pub visited: Vec<bool>,
    /// DFS-tree parents (Table 2 `DFS Tree` output).
    pub parent: Vec<u32>,
    /// Execution counters, including the simulated makespan in cycles.
    pub stats: SimStats,
    /// Million traversed edges per second under the machine model.
    pub mteps: f64,
    /// Sampled `(cycle, active_warps)` trace (one sample per 16 Ki
    /// cycles) — used by the harness to inspect ramp-up and tail
    /// behaviour, and by the engine's own diagnostics.
    pub trace: Vec<(u64, u32)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Has local work (or needs a refill).
    Working,
    /// Idle: next event scans for a victim.
    IdleScan,
    /// Selected an intra-block victim; next event reserves and copies.
    IntraReserve { victim: u32 },
    /// Selected an inter-block victim warp; next event reserves/copies.
    InterReserve { victim_warp: u32 },
}

struct Warp {
    hot: HotRing,
    cold: ColdSeg,
    phase: Phase,
    active: bool,
    backoff: u64,
}

/// Outcome of the steal-copy fault check (see [`Engine::fault_steal`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StealFault {
    None,
    /// The steal loses its reservation race: entries stay with the victim.
    Drop,
    /// The copied entries arrive with corrupted offsets (reset to 0),
    /// forcing the thief to re-scan their rows.
    Corrupt,
}

/// Dense code carried by [`EventKind::Fault`] trace events.
fn fault_code(kind: &FaultKind) -> u32 {
    match kind {
        FaultKind::Kill => 0,
        FaultKind::Stall { .. } => 1,
        FaultKind::SlowDown { .. } => 2,
        FaultKind::CorruptResult => 3,
        FaultKind::DropSteal => 4,
        // Storage kinds never strike sim sites; the code is carried only
        // if a future site wires them through.
        FaultKind::Torn => 5,
        FaultKind::ShortWrite => 6,
        FaultKind::FsyncLie => 7,
        FaultKind::Crash => 8,
    }
}

struct Engine<'g, 't, 'p, 'f, T: Tracer, P: Profiler> {
    g: &'g CsrGraph,
    tracer: &'t T,
    profiler: &'p P,
    cfg: DiggerBeesConfig,
    m: MachineModel,
    warps: Vec<Warp>,
    visited: Vec<bool>,
    parent: Vec<u32>,
    /// Entries logically present across all stacks. Zero ⇒ traversal done.
    live: u64,
    /// Pending entries per block (the "cumulative workload" of Alg. 4).
    pending: Vec<u64>,
    /// Active warps per block (the §3.4 mask, as a count).
    block_active: Vec<u32>,
    stats: SimStats,
    finish: Option<u64>,
    rng: SmallRng,
    /// Device-wide random-transaction pipeline (see `db_gpu_sim::pipeline`).
    mem: MemPipeline,
    active_total: u32,
    trace: Vec<(u64, u32)>,
    trace_next: u64,
    /// Fault injector, when running under a chaos plan. `None` keeps the
    /// fault-free fast path: every check site is a single `is_some` test.
    injector: Option<&'f Injector>,
    /// Per-block kill flags — a dead SM never dispatches again.
    dead: Vec<bool>,
    /// True once any block died; gates all recovery bookkeeping.
    any_dead: bool,
}

const BACKOFF_START: u64 = 64;
const BACKOFF_MAX: u64 = 4096;

impl<'g, 't, 'p, 'f, T: Tracer, P: Profiler> Engine<'g, 't, 'p, 'f, T, P> {
    fn new(
        g: &'g CsrGraph,
        root: VertexId,
        cfg: DiggerBeesConfig,
        m: MachineModel,
        tracer: &'t T,
        profiler: &'p P,
        injector: Option<&'f Injector>,
    ) -> Self {
        cfg.validate();
        let n = g.num_vertices();
        assert!((root as usize) < n, "root out of range");
        let nw = cfg.total_warps();
        let hot_cap = match cfg.stack {
            StackLevels::Two => cfg.hot_size,
            // v1: one big global-memory stack per warp; sized generously
            // so it never needs a second level.
            StackLevels::One => (n as u32).max(cfg.hot_size),
        };
        // cold_size = nv / nw (§3.2), clamped to something useful.
        let cold_cap = ((n as u32) / nw.max(1)).max(4 * cfg.cold_cutoff);
        let warps = (0..nw)
            .map(|_| Warp {
                hot: HotRing::new(hot_cap),
                cold: ColdSeg::new(cold_cap),
                phase: Phase::IdleScan,
                active: false,
                backoff: BACKOFF_START,
            })
            .collect();
        let mem = MemPipeline::new(m.costs.random_trans_per_cycle);
        let mut eng = Self {
            g,
            tracer,
            profiler,
            cfg,
            m,
            warps,
            visited: vec![false; n],
            parent: vec![NO_PARENT; n],
            live: 0,
            pending: vec![0; cfg.blocks as usize],
            block_active: vec![0; cfg.blocks as usize],
            stats: SimStats::new(cfg.blocks as usize),
            finish: None,
            rng: SmallRng::seed_from_u64(cfg.seed),
            mem,
            active_total: 0,
            trace: Vec::new(),
            trace_next: 0,
            injector,
            dead: vec![false; cfg.blocks as usize],
            any_dead: false,
        };
        // Initialization (§3.6): root into warp 0's HotRing.
        eng.visited[root as usize] = true;
        eng.stats.vertices_visited = 1;
        eng.stats.tasks_per_block[0] += 1;
        eng.prof_task(0);
        eng.stats.hot_high_water = 1;
        eng.warps[0].hot.push((root, 0)).expect("fresh ring");
        eng.live = 1;
        eng.pending[0] = 1;
        eng.set_active(0, true);
        eng.warps[0].phase = Phase::Working;
        eng.emit(0, 0, EventKind::Push { vertex: root });
        eng
    }

    /// Records a trace event with (block, lane) provenance derived from
    /// the global warp id. The `T::ENABLED` guard is a compile-time
    /// constant: with `NullTracer` this entire function folds away.
    #[inline(always)]
    fn emit(&self, w: u32, now: u64, kind: EventKind) {
        if T::ENABLED {
            self.tracer.record(TraceEvent {
                cycle: now,
                block: self.block_of(w),
                warp: w % self.cfg.warps_per_block,
                kind,
            });
        }
    }

    /// Charges `cycles` to `phase` on warp `w`'s SM. Like `emit`, the
    /// `P::ENABLED` guard is compile-time: with `NoProfiler` every
    /// charge site folds away.
    #[inline(always)]
    fn prof(&self, w: u32, phase: SimPhase, cycles: u64) {
        if P::ENABLED {
            self.profiler.charge(self.block_of(w), phase, cycles);
        }
    }

    /// Counts one claimed vertex on warp `w`'s SM (Fig. 9 numerator).
    #[inline(always)]
    fn prof_task(&self, w: u32) {
        if P::ENABLED {
            self.profiler.count_task(self.block_of(w));
        }
    }

    /// Updates the stack high-water marks after warp `w`'s stacks grew.
    #[inline]
    fn note_high_water(&mut self, w: u32) {
        let wp = &self.warps[w as usize];
        self.stats.hot_high_water = self.stats.hot_high_water.max(wp.hot.len());
        self.stats.cold_high_water = self.stats.cold_high_water.max(wp.cold.len());
    }

    #[inline]
    fn block_of(&self, w: u32) -> u32 {
        w / self.cfg.warps_per_block
    }

    #[inline]
    fn is_leader(&self, w: u32) -> bool {
        w.is_multiple_of(self.cfg.warps_per_block)
    }

    fn set_active(&mut self, w: u32, active: bool) {
        let b = self.block_of(w) as usize;
        if self.warps[w as usize].active != active {
            self.warps[w as usize].active = active;
            if active {
                self.block_active[b] += 1;
                self.active_total += 1;
            } else {
                self.block_active[b] -= 1;
                self.active_total -= 1;
            }
        }
    }

    /// Cost of a local stack operation under the configured stack level.
    #[inline]
    fn stack_op_cost(&self) -> u64 {
        match self.cfg.stack {
            StackLevels::Two => self.m.costs.smem_op,
            StackLevels::One => self.m.costs.gmem_latency,
        }
    }

    /// Random memory transactions issued by one local stack operation
    /// (zero for shared-memory HotRing ops, one for the v1 global stack).
    #[inline]
    fn stack_op_trans(&self) -> u64 {
        match self.cfg.stack {
            StackLevels::Two => 0,
            StackLevels::One => 1,
        }
    }

    /// Transactions for a contiguous batch transfer of `k` entries.
    #[inline]
    fn batch_trans(k: u64) -> u64 {
        1 + k / 16
    }

    /// Evaluates the fault plan at `site` for warp `w`'s SM.
    #[inline]
    fn fault(&self, site: Site, w: u32, now: u64) -> Option<FaultKind> {
        self.injector?.check(site, self.block_of(w), now)
    }

    /// Records a strike on the trace timeline.
    fn emit_fault(&self, w: u32, now: u64, kind: FaultKind) {
        self.emit(
            w,
            now,
            EventKind::Fault {
                code: fault_code(&kind),
            },
        );
    }

    /// Ring-site fault check (push/pop): only `Stall` applies there; the
    /// returned extra cycles are added to the step's cost.
    fn ring_fault(&self, site: Site, w: u32, now: u64) -> u64 {
        match self.fault(site, w, now) {
            Some(k @ FaultKind::Stall { cycles }) => {
                self.emit_fault(w, now, k);
                cycles
            }
            _ => 0,
        }
    }

    /// Steal-copy fault check, shared by the intra and inter reserve steps.
    fn fault_steal(&self, w: u32, now: u64) -> StealFault {
        match self.fault(Site::StealCopy, w, now) {
            Some(k @ FaultKind::DropSteal) => {
                self.emit_fault(w, now, k);
                StealFault::Drop
            }
            Some(k @ FaultKind::CorruptResult) => {
                self.emit_fault(w, now, k);
                StealFault::Corrupt
            }
            _ => StealFault::None,
        }
    }

    /// An injected kill: warp `w`'s whole SM stops dispatching forever.
    /// Each warp's HotRing is spilled into its ColdSeg (the global-memory
    /// level survives the SM) so survivors can re-steal the stranded work
    /// through the recovery path (`select_dead_victim`).
    fn kill_block(&mut self, w: u32, now: u64) {
        let b = self.block_of(w);
        let wpb = self.cfg.warps_per_block;
        for peer in b * wpb..(b + 1) * wpb {
            let n = self.warps[peer as usize].hot.len();
            if n > 0 {
                let spilled = self.warps[peer as usize].hot.take_from_tail(n);
                self.warps[peer as usize].cold.push_top(&spilled);
                self.note_high_water(peer);
            }
            self.set_active(peer, false);
        }
        self.dead[b as usize] = true;
        self.any_dead = true;
        self.stats.sms_killed += 1;
        self.emit_fault(w, now, FaultKind::Kill);
    }

    /// One protocol step for warp `w`. Returns the cycle cost, or `None`
    /// to park the warp (traversal finished, SM killed, or stranded work
    /// that can never be recovered).
    fn step(&mut self, w: u32, now: u64) -> Option<u64> {
        let mut scale = 1.0f64;
        if self.injector.is_some() {
            if self.dead[self.block_of(w) as usize] {
                return None;
            }
            match self.fault(Site::Dispatch, w, now) {
                Some(FaultKind::Kill) => {
                    self.kill_block(w, now);
                    return None;
                }
                Some(k @ FaultKind::Stall { cycles }) => {
                    self.emit_fault(w, now, k);
                    let cost = cycles.max(1);
                    self.prof(w, SimPhase::Idle, cost);
                    return Some(cost);
                }
                Some(k @ FaultKind::SlowDown { factor }) => {
                    self.emit_fault(w, now, k);
                    scale = factor;
                }
                _ => {}
            }
        }
        let cost = match self.warps[w as usize].phase {
            Phase::Working => Some(self.step_working(w, now)),
            Phase::IdleScan => self.step_idle_scan(w),
            Phase::IntraReserve { victim } => Some(self.step_intra_reserve(w, victim, now)),
            Phase::InterReserve { victim_warp } => {
                Some(self.step_inter_reserve(w, victim_warp, now))
            }
        }?;
        Some(if scale > 1.0 {
            (cost as f64 * scale).ceil() as u64
        } else {
            cost
        })
    }

    fn step_working(&mut self, w: u32, now: u64) -> u64 {
        let wi = w as usize;
        let b = self.block_of(w) as usize;
        if self.warps[wi].hot.is_empty() {
            // Refill from own ColdSeg (Figure 2(f)) or go idle.
            if !self.warps[wi].cold.is_empty() {
                let batch = (self.cfg.hot_size as u64 / 2).max(1);
                let entries = self.warps[wi].cold.take_from_top(batch);
                let k = entries.len() as u64;
                self.warps[wi].hot.push_batch(&entries);
                self.note_high_water(w);
                self.stats.refills += 1;
                self.emit(w, now, EventKind::Refill { entries: k as u32 });
                let cost = self.m.transfer_cost(k) + self.mem.charge(now, Self::batch_trans(k));
                self.prof(w, SimPhase::TmaWait, cost);
                return cost;
            }
            self.set_active(w, false);
            self.warps[wi].phase = Phase::IdleScan;
            self.warps[wi].backoff = BACKOFF_START;
            self.emit(w, now, EventKind::WarpIdle);
            self.prof(w, SimPhase::Idle, self.m.costs.smem_op);
            return self.m.costs.smem_op;
        }

        let (u, off) = self.warps[wi].hot.top().expect("nonempty");
        let deg = self.g.degree(u) as u32;
        if off >= deg {
            // Vertex exhausted: fast pop (Figure 2(d)).
            self.warps[wi].hot.pop();
            self.live -= 1;
            self.pending[b] -= 1;
            self.emit(w, now, EventKind::Pop { vertex: u });
            if self.live == 0 && self.finish.is_none() {
                self.finish = Some(now + self.stack_op_cost());
            }
            let cost = self.stack_op_cost()
                + self.mem.charge(now, self.stack_op_trans())
                + self.ring_fault(Site::RingPop, w, now);
            self.prof(w, SimPhase::RingPop, cost);
            return cost;
        }

        // Scan one warp-wide chunk of u's row for an unvisited neighbor.
        let row = self.g.neighbors(u);
        let chunk_end = (off + self.m.warp_width).min(deg);
        let mut found: Option<(u32, u32)> = None; // (neighbor, index)
        for i in off..chunk_end {
            let v = row[i as usize];
            if !self.visited[v as usize] {
                found = Some((v, i));
                break;
            }
        }
        match found {
            Some((v, i)) => {
                // Claim v (the global atomicCAS of §3.3 — serialized by
                // the DES, so the claim always succeeds here).
                self.visited[v as usize] = true;
                self.parent[v as usize] = u;
                self.stats.vertices_visited += 1;
                self.stats.edges_traversed += (i + 1 - off) as u64;
                self.stats.tasks_per_block[b] += 1;
                self.prof_task(w);
                self.warps[wi].hot.update_top((u, i + 1));
                // row_ptr + contiguous columns (2 transactions), one
                // scattered visited probe per examined edge, CAS + parent
                // write (2), plus v1's global stack traffic.
                let trans = 2 + (i + 1 - off) as u64 + 2 + 2 * self.stack_op_trans();
                let expand_cost = self.m.costs.edge_chunk
                    + self.m.costs.atomic_global
                    + self.mem.charge(now, trans);
                let push_cost = 2 * self.stack_op_cost();
                self.prof(w, SimPhase::Expand, expand_cost);
                self.prof(w, SimPhase::RingPush, push_cost);
                let mut cost = expand_cost + push_cost + self.ring_fault(Site::RingPush, w, now);
                if self.warps[wi].hot.is_full() {
                    cost += self.flush(w, now);
                }
                self.warps[wi]
                    .hot
                    .push((v, 0))
                    .expect("flush guarantees space");
                self.note_high_water(w);
                self.live += 1;
                self.pending[b] += 1;
                self.emit(w, now, EventKind::Push { vertex: v });
                cost
            }
            None => {
                // Whole chunk visited: advance the offset.
                self.stats.edges_traversed += (chunk_end - off) as u64;
                self.warps[wi].hot.update_top((u, chunk_end));
                let trans = 2 + (chunk_end - off) as u64 + self.stack_op_trans();
                let cost =
                    self.m.costs.edge_chunk + self.stack_op_cost() + self.mem.charge(now, trans);
                self.prof(w, SimPhase::Expand, cost);
                cost
            }
        }
    }

    /// Flush (Figure 2(e)): move the oldest `flush_batch` entries to the
    /// ColdSeg. Only meaningful for the two-level stack; the one-level
    /// variant sizes its ring to the graph and never fills.
    fn flush(&mut self, w: u32, now: u64) -> u64 {
        debug_assert_eq!(self.cfg.stack, StackLevels::Two);
        let wi = w as usize;
        let batch = self.warps[wi]
            .hot
            .take_from_tail(self.cfg.flush_batch as u64);
        let k = batch.len() as u64;
        self.warps[wi].cold.push_top(&batch);
        self.note_high_water(w);
        self.stats.flushes += 1;
        self.emit(w, now, EventKind::Flush { entries: k as u32 });
        let cost = self.m.transfer_cost(k) + self.mem.charge(now, Self::batch_trans(k));
        self.prof(w, SimPhase::TmaWait, cost);
        cost
    }

    fn step_idle_scan(&mut self, w: u32) -> Option<u64> {
        if self.live == 0 {
            return None; // traversal complete — park
        }
        if self.any_dead {
            // Stranded-work guard: if every remaining live entry sits on
            // a killed SM and no recovery path exists (no inter-block
            // stealing), idle warps would spin on `live > 0` forever.
            // Park instead; the DES drains and the run terminates with
            // the stranded vertices unvisited.
            let stranded: u64 = (0..self.cfg.blocks as usize)
                .filter(|&db| self.dead[db])
                .map(|db| self.pending[db])
                .sum();
            if stranded == self.live && !(self.cfg.inter_block && self.cfg.blocks > 1) {
                return None;
            }
        }
        let b = self.block_of(w);
        let wpb = self.cfg.warps_per_block;
        let first = b * wpb;

        // Step 1 of Algorithm 3: scan peers for the max hot_rest.
        let mut max_rest = 0u64;
        let mut victim = None;
        for peer in first..first + wpb {
            if peer == w {
                continue;
            }
            let rest = self.warps[peer as usize].hot.len();
            if rest > max_rest {
                max_rest = rest;
                victim = Some(peer);
            }
        }
        let scan_cost = self.m.costs.steal_scan * wpb as u64;
        if let Some(v) = victim {
            if max_rest >= self.cfg.hot_cutoff as u64 {
                self.warps[w as usize].phase = Phase::IntraReserve { victim: v };
                self.prof(w, SimPhase::StealSearch, scan_cost);
                return Some(scan_cost);
            }
        }

        // Inter-block stealing (Algorithm 4): leader warp of an idle block.
        if self.cfg.inter_block
            && self.cfg.blocks > 1
            && self.is_leader(w)
            && self.block_active[b as usize] == 0
        {
            if let Some(vw) = self.select_inter_victim(b) {
                self.warps[w as usize].phase = Phase::InterReserve { victim_warp: vw };
                // two sampled blocks + a warp scan inside the victim
                let cost = scan_cost + (2 + wpb as u64) * self.m.costs.steal_scan;
                self.prof(w, SimPhase::StealSearch, cost);
                return Some(cost);
            }
        }

        // Nothing stealable: exponential backoff poll.
        self.prof(w, SimPhase::StealSearch, scan_cost);
        self.prof(w, SimPhase::Idle, self.warps[w as usize].backoff);
        let cost = scan_cost + self.warps[w as usize].backoff;
        let bo = &mut self.warps[w as usize].backoff;
        *bo = (*bo * 2).min(BACKOFF_MAX);
        Some(cost)
    }

    /// Recovery pre-pass: a killed SM never re-activates, so its stacks
    /// are drained outside the normal victim discipline — the active
    /// mask (dead blocks are inactive by definition) and the cold cutoff
    /// (every stranded entry matters) are both ignored. Returns the
    /// dead-block warp holding the most stranded entries.
    fn select_dead_victim(&self, my_block: u32) -> Option<u32> {
        let wpb = self.cfg.warps_per_block;
        let mut best: Option<(u64, u32)> = None;
        for b in 0..self.cfg.blocks {
            if b == my_block || !self.dead[b as usize] {
                continue;
            }
            for peer in b * wpb..(b + 1) * wpb {
                let rest = self.warps[peer as usize].cold.len();
                if rest > 0 && best.is_none_or(|(br, _)| rest > br) {
                    best = Some((rest, peer));
                }
            }
        }
        best.map(|(_, vw)| vw)
    }

    /// Steps 1–2 of Algorithm 4: pick a victim block (two-choice or
    /// random), then the warp with max `cold_rest` inside it.
    fn select_inter_victim(&mut self, my_block: u32) -> Option<u32> {
        if self.any_dead {
            if let Some(vw) = self.select_dead_victim(my_block) {
                return Some(vw);
            }
        }
        let nb = self.cfg.blocks;
        let sample = |rng: &mut SmallRng| -> u32 { rng.gen_range(0..nb) };
        let candidate = match self.cfg.victim_policy {
            VictimPolicy::Random => {
                // Fig. 9 baseline: one *blind* sample — no load
                // information at all. If the sampled block has nothing
                // stealable, this attempt simply fails.
                let c = sample(&mut self.rng);
                if c == my_block {
                    None
                } else {
                    Some(c)
                }
            }
            VictimPolicy::TwoChoice => {
                // Sample two candidate *active* blocks (activity is
                // cheap shared state — the §3.4 mask), keep the
                // heavier-loaded one (power of two choices, §3.5).
                let mut best: Option<(u64, u32)> = None;
                let mut found = 0;
                for _ in 0..8 {
                    let c = sample(&mut self.rng);
                    if c == my_block || self.block_active[c as usize] == 0 {
                        continue;
                    }
                    let load = self.pending[c as usize];
                    if best.is_none_or(|(bl, _)| load > bl) {
                        best = Some((load, c));
                    }
                    found += 1;
                    if found == 2 {
                        break;
                    }
                }
                best.map(|(_, c)| c)
            }
        }?;
        // Step 2: warp with max cold_rest in the victim block.
        let wpb = self.cfg.warps_per_block;
        let first = candidate * wpb;
        let mut best: Option<(u64, u32)> = None;
        for peer in first..first + wpb {
            let rest = self.warps[peer as usize].cold.len();
            if rest > 0 && best.is_none_or(|(br, _)| rest > br) {
                best = Some((rest, peer));
            }
        }
        match best {
            Some((rest, vw)) if rest >= self.cfg.cold_cutoff as u64 => Some(vw),
            _ => None,
        }
    }

    /// Steps 2–3 of Algorithm 3: re-validate, reserve with the CAS, copy.
    fn step_intra_reserve(&mut self, w: u32, victim: u32, now: u64) -> u64 {
        let cas_cost = match self.cfg.stack {
            StackLevels::Two => self.m.costs.atomic_shared,
            StackLevels::One => self.m.costs.atomic_global,
        };
        // Re-validation: another thief may have emptied the victim since
        // our selection event (Warp2's failure in Figure 3(a)).
        if self.warps[victim as usize].hot.len() < self.cfg.hot_cutoff as u64 {
            self.stats.steal_failures += 1;
            self.warps[w as usize].phase = Phase::IdleScan;
            self.emit(
                w,
                now,
                EventKind::StealFail {
                    victim: victim % self.cfg.warps_per_block,
                },
            );
            self.prof(w, SimPhase::StealSearch, cas_cost);
            return cas_cost;
        }
        let steal_fault = self.fault_steal(w, now);
        if steal_fault == StealFault::Drop {
            // The reservation is lost exactly as a CAS race would lose it.
            self.stats.steal_failures += 1;
            self.warps[w as usize].phase = Phase::IdleScan;
            self.emit(
                w,
                now,
                EventKind::StealFail {
                    victim: victim % self.cfg.warps_per_block,
                },
            );
            self.prof(w, SimPhase::StealSearch, cas_cost);
            return cas_cost;
        }
        let h_s = self.cfg.hot_steal_batch() as u64;
        let mut entries = self.warps[victim as usize].hot.take_from_tail(h_s);
        if steal_fault == StealFault::Corrupt {
            // Corrupted copy: offsets reset to 0, so the thief re-scans
            // each row from the start. Progress is preserved (visited
            // checks absorb the re-scan); only cycles are lost.
            for e in entries.iter_mut() {
                e.1 = 0;
            }
        }
        let k = entries.len() as u64;
        self.warps[w as usize].hot.push_batch(&entries);
        self.note_high_water(w);
        self.stats.steals_intra += 1;
        self.emit(
            w,
            now,
            EventKind::StealIntra {
                victim_warp: victim % self.cfg.warps_per_block,
                entries: k as u32,
            },
        );
        self.set_active(w, true);
        self.warps[w as usize].phase = Phase::Working;
        self.warps[w as usize].backoff = BACKOFF_START;
        // CAS + threadfence_block + local transfer (shared→shared for
        // the two-level stack; global traffic for the v1 variant).
        let trans = 2 * self.stack_op_trans() * Self::batch_trans(k);
        let cost = cas_cost
            + self.stack_op_cost()
            + k * self.m.costs.copy_per_entry
            + self.mem.charge(now, trans);
        self.prof(w, SimPhase::StealCopy, cost);
        cost
    }

    /// Steps 3–4 of Algorithm 4: re-validate, reserve via global CAS,
    /// remote transfer into the thief's HotRing.
    fn step_inter_reserve(&mut self, w: u32, victim_warp: u32, now: u64) -> u64 {
        let vb = self.block_of(victim_warp) as usize;
        let dead_victim = self.any_dead && self.dead[vb];
        // Recovery steals from killed SMs relax the cutoff to a single
        // entry: stranded work must drain completely, not just while it
        // is plentiful.
        let threshold = if dead_victim {
            1
        } else {
            self.cfg.cold_cutoff as u64
        };
        if self.warps[victim_warp as usize].cold.len() < threshold {
            self.stats.steal_failures += 1;
            self.warps[w as usize].phase = Phase::IdleScan;
            self.emit(
                w,
                now,
                EventKind::StealFail {
                    victim: self.block_of(victim_warp),
                },
            );
            self.prof(w, SimPhase::StealSearch, self.m.costs.atomic_global);
            return self.m.costs.atomic_global;
        }
        // The recovery path is the resilience mechanism itself and is
        // exempt from steal-site faults — otherwise an `always` DropSteal
        // rule could strand killed work forever.
        let steal_fault = if dead_victim {
            StealFault::None
        } else {
            self.fault_steal(w, now)
        };
        if steal_fault == StealFault::Drop {
            self.stats.steal_failures += 1;
            self.warps[w as usize].phase = Phase::IdleScan;
            self.emit(w, now, EventKind::StealFail { victim: vb as u32 });
            self.prof(w, SimPhase::StealSearch, self.m.costs.atomic_global);
            return self.m.costs.atomic_global;
        }
        let c_s = self.cfg.cold_steal_batch() as u64;
        let mut entries = self.warps[victim_warp as usize].cold.take_from_bottom(c_s);
        if steal_fault == StealFault::Corrupt {
            for e in entries.iter_mut() {
                e.1 = 0;
            }
        }
        let k = entries.len() as u64;
        self.warps[w as usize].hot.push_batch(&entries);
        self.note_high_water(w);
        let mb = self.block_of(w) as usize;
        self.pending[vb] -= k;
        self.pending[mb] += k;
        self.stats.steals_inter += 1;
        self.emit(
            w,
            now,
            EventKind::StealInter {
                victim_block: vb as u32,
                entries: k as u32,
            },
        );
        if dead_victim {
            self.stats.entries_recovered += k;
            self.emit(
                w,
                now,
                EventKind::Recover {
                    victim_block: vb as u32,
                    entries: k as u32,
                },
            );
        }
        self.set_active(w, true);
        self.warps[w as usize].phase = Phase::Working;
        self.warps[w as usize].backoff = BACKOFF_START;
        // global CAS + threadfence + async copy from global memory.
        let cost = self.m.costs.atomic_global
            + self.m.transfer_cost(k)
            + self.mem.charge(now, Self::batch_trans(k));
        self.prof(w, SimPhase::StealCopy, cost);
        cost
    }
}

/// Runs the simulated DiggerBees traversal of `g` from `root` under
/// `cfg` on machine `m`.
///
/// Deterministic: identical inputs produce identical results, including
/// all statistics.
pub fn run_sim(
    g: &CsrGraph,
    root: VertexId,
    cfg: &DiggerBeesConfig,
    m: &MachineModel,
) -> SimResult {
    run_sim_traced(g, root, cfg, m, &NullTracer)
}

/// [`run_sim`] over any [`db_graph::GraphStore`]-backed graph — packed,
/// mmap-loaded, or in-RAM — traversed in place without copying.
pub fn run_sim_store(
    store: &dyn db_graph::GraphStore,
    root: VertexId,
    cfg: &DiggerBeesConfig,
    m: &MachineModel,
) -> SimResult {
    run_sim(store.graph(), root, cfg, m)
}

/// [`run_sim`] with a [`Tracer`] attached. Tracing is observational
/// only: for any tracer the traversal result and statistics are
/// identical to the untraced run (the DES never consults the tracer),
/// and with [`NullTracer`] the instrumentation compiles out entirely.
pub fn run_sim_traced<T: Tracer>(
    g: &CsrGraph,
    root: VertexId,
    cfg: &DiggerBeesConfig,
    m: &MachineModel,
    tracer: &T,
) -> SimResult {
    run_sim_profiled(g, root, cfg, m, tracer, &NoProfiler)
}

/// [`run_sim_traced`] with a cycle-attribution [`Profiler`] attached:
/// every simulated cycle a warp spends is charged to a
/// [`SimPhase`] on its SM, and claimed vertices are counted per SM.
/// Profiling is observational only, like tracing — the traversal
/// result and statistics are identical for any profiler, and with
/// [`NoProfiler`] the charge sites compile out.
///
/// After the run, [`Profiler::finalize`] is invoked with the makespan
/// so the implementation can top up [`db_gpu_sim::SimPhase::Idle`]
/// with the unattributed remainder; a
/// [`db_gpu_sim::CycleProfiler`] then partitions the full
/// `makespan × warps` cycle budget across the seven phases.
pub fn run_sim_profiled<T: Tracer, P: Profiler>(
    g: &CsrGraph,
    root: VertexId,
    cfg: &DiggerBeesConfig,
    m: &MachineModel,
    tracer: &T,
    profiler: &P,
) -> SimResult {
    run_impl(g, root, cfg, m, tracer, profiler, None)
}

/// [`run_sim_traced`] under a deterministic fault [`Injector`].
///
/// The plan's SM-domain rules strike the simulated machine at four
/// sites: **dispatch** (`kill` halts the whole SM and spills its
/// HotRings to the ColdSegs; `stall` parks the warp for N cycles;
/// `slow` scales the step's cost), **ring push / ring pop** (`stall`
/// adds latency), and **steal copy** (`dropsteal` loses the
/// reservation race; `corrupt` resets the stolen offsets, forcing a
/// harmless re-scan). A killed SM's stranded work is re-stolen by
/// surviving blocks through a recovery path that ignores the active
/// mask and cold cutoff — when inter-block stealing is enabled the
/// traversal still completes, bit-identical to the fault-free run.
/// When it is disabled, idle warps park once every live entry is
/// stranded, so the run terminates (with unvisited vertices) instead
/// of spinning.
///
/// Determinism: faults are pure functions of the plan and per-site
/// draw counters (see `db-fault`), so same plan + same inputs ⇒ same
/// injection log, same result, same cycle count. The injector's log
/// and counters accumulate; [`SimStats::faults_injected`] records only
/// this run's strikes.
pub fn run_sim_faulted<T: Tracer>(
    g: &CsrGraph,
    root: VertexId,
    cfg: &DiggerBeesConfig,
    m: &MachineModel,
    tracer: &T,
    injector: &Injector,
) -> SimResult {
    run_impl(g, root, cfg, m, tracer, &NoProfiler, Some(injector))
}

fn run_impl<T: Tracer, P: Profiler>(
    g: &CsrGraph,
    root: VertexId,
    cfg: &DiggerBeesConfig,
    m: &MachineModel,
    tracer: &T,
    profiler: &P,
    injector: Option<&Injector>,
) -> SimResult {
    crate::graph_check::assert_valid_input(g, root);
    let faults_before = injector.map_or(0, Injector::injected);
    let mut eng = Engine::new(g, root, *cfg, m.clone(), tracer, profiler, injector);
    eng.emit(
        0,
        0,
        EventKind::KernelPhase {
            phase: PhaseKind::Start,
        },
    );
    let mut des = Des::new(cfg.total_warps());
    while let Some((now, w)) = des.next() {
        if now >= eng.trace_next {
            eng.trace.push((now, eng.active_total));
            if P::ENABLED {
                eng.profiler.sample(now, eng.active_total);
            }
            eng.trace_next = now + (1 << 14);
        }
        if let Some(cost) = eng.step(w, now) {
            des.yield_for(w, cost);
        } // else: parked
    }
    let cycles = eng.finish.unwrap_or_else(|| des.horizon());
    eng.stats.cycles = cycles;
    if P::ENABLED {
        eng.profiler.finalize(cycles, cfg.warps_per_block);
    }
    eng.emit(
        0,
        cycles,
        EventKind::KernelPhase {
            phase: PhaseKind::Finish,
        },
    );
    if let Some(inj) = injector {
        eng.stats.faults_injected = inj.injected() - faults_before;
        eng.stats.blocks_recovered = (0..cfg.blocks as usize)
            .filter(|&b| eng.dead[b] && eng.pending[b] == 0)
            .count() as u64;
    }
    eng.stats.record_to(db_metrics::global(), "sim");
    let mteps = eng.m.mteps(eng.stats.edges_traversed, cycles);
    SimResult {
        visited: eng.visited,
        parent: eng.parent,
        stats: eng.stats,
        mteps,
        trace: eng.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use db_graph::validate::{check_reachability, check_spanning_tree};
    use db_graph::GraphBuilder;

    fn h100() -> MachineModel {
        MachineModel::h100()
    }

    fn small_cfg() -> DiggerBeesConfig {
        DiggerBeesConfig {
            blocks: 4,
            warps_per_block: 4,
            hot_size: 16,
            hot_cutoff: 4,
            cold_cutoff: 8,
            flush_batch: 8,
            ..Default::default()
        }
    }

    fn figure1() -> CsrGraph {
        GraphBuilder::undirected(6)
            .edges([(0, 1), (0, 2), (1, 3), (2, 4), (3, 4), (2, 5)])
            .build()
    }

    #[test]
    fn traverses_figure1() {
        let g = figure1();
        let r = run_sim(&g, 0, &small_cfg(), &h100());
        check_reachability(&g, 0, &r.visited).unwrap();
        check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
        assert_eq!(r.stats.vertices_visited, 6);
        assert_eq!(r.stats.edges_traversed, g.num_arcs() as u64);
        assert!(r.stats.cycles > 0);
        assert!(r.mteps > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = db_gen_grid(40, 40);
        let a = run_sim(&g, 0, &small_cfg(), &h100());
        let b = run_sim(&g, 0, &small_cfg(), &h100());
        assert_eq!(a.visited, b.visited);
        assert_eq!(a.parent, b.parent);
        assert_eq!(a.stats.cycles, b.stats.cycles);
        assert_eq!(a.stats.steals_intra, b.stats.steals_intra);
        assert_eq!(a.stats.steals_inter, b.stats.steals_inter);
    }

    /// Local helper: small grid without depending on db-gen (dev-dep
    /// cycles are fine, but unit tests stay self-contained).
    fn db_gen_grid(w: u32, h: u32) -> CsrGraph {
        let mut b = GraphBuilder::undirected(w * h);
        for y in 0..h {
            for x in 0..w {
                if x + 1 < w {
                    b.edge(y * w + x, y * w + x + 1);
                }
                if y + 1 < h {
                    b.edge(y * w + x, (y + 1) * w + x);
                }
            }
        }
        b.build()
    }

    #[test]
    fn all_variants_produce_valid_output() {
        let g = db_gen_grid(30, 30);
        for cfg in [
            DiggerBeesConfig {
                blocks: 1,
                inter_block: false,
                stack: StackLevels::One,
                ..small_cfg()
            },
            DiggerBeesConfig {
                blocks: 1,
                inter_block: false,
                ..small_cfg()
            },
            DiggerBeesConfig {
                blocks: 3,
                ..small_cfg()
            },
            small_cfg(),
        ] {
            let r = run_sim(&g, 0, &cfg, &h100());
            check_reachability(&g, 0, &r.visited).unwrap();
            check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
        }
    }

    #[test]
    fn stealing_actually_happens() {
        let g = db_gen_grid(60, 60);
        let r = run_sim(&g, 0, &small_cfg(), &h100());
        assert!(r.stats.steals_intra > 0, "expected intra-block steals");
        assert!(r.stats.steals_inter > 0, "expected inter-block steals");
        // More than one block ended up doing work.
        let busy = r.stats.tasks_per_block.iter().filter(|&&t| t > 0).count();
        assert!(busy > 1, "work never left block 0");
    }

    #[test]
    fn two_level_flushes_on_deep_graphs() {
        // A path forces stack depth = n >> hot_size. A single warp so
        // thieves cannot drain the ring before it fills.
        let n = 2000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let cfg = DiggerBeesConfig {
            blocks: 1,
            warps_per_block: 1,
            inter_block: false,
            ..small_cfg()
        };
        let r = run_sim(&g, 0, &cfg, &h100());
        check_reachability(&g, 0, &r.visited).unwrap();
        assert!(r.stats.flushes > 0, "deep path must flush");
        assert!(r.stats.refills > 0, "backtracking must refill");
    }

    #[test]
    fn one_level_never_flushes() {
        let n = 1000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let cfg = DiggerBeesConfig {
            stack: StackLevels::One,
            blocks: 1,
            inter_block: false,
            ..small_cfg()
        };
        let r = run_sim(&g, 0, &cfg, &h100());
        assert_eq!(r.stats.flushes, 0);
        assert_eq!(r.stats.refills, 0);
        check_reachability(&g, 0, &r.visited).unwrap();
    }

    #[test]
    fn respects_reachability_on_disconnected_graph() {
        let mut b = GraphBuilder::undirected(20);
        for i in 0..9 {
            b.edge(i, i + 1);
        }
        b.edge(15, 16);
        let g = b.build();
        let r = run_sim(&g, 0, &small_cfg(), &h100());
        check_reachability(&g, 0, &r.visited).unwrap();
        assert!(!r.visited[15] && !r.visited[16]);
    }

    #[test]
    fn single_warp_config_works() {
        let g = figure1();
        let cfg = DiggerBeesConfig {
            blocks: 1,
            warps_per_block: 1,
            inter_block: false,
            ..small_cfg()
        };
        let r = run_sim(&g, 0, &cfg, &h100());
        check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
        assert_eq!(r.stats.steals_intra + r.stats.steals_inter, 0);
    }

    #[test]
    fn random_policy_also_valid() {
        let g = db_gen_grid(40, 40);
        let cfg = DiggerBeesConfig {
            victim_policy: VictimPolicy::Random,
            ..small_cfg()
        };
        let r = run_sim(&g, 0, &cfg, &h100());
        check_reachability(&g, 0, &r.visited).unwrap();
    }

    #[test]
    fn finish_time_below_horizon() {
        // Idle warps may still be backing off after the last entry dies;
        // MTEPS must be computed from the finish time, not the horizon.
        let g = figure1();
        let r = run_sim(&g, 0, &small_cfg(), &h100());
        assert!(r.stats.cycles > 0);
    }

    #[test]
    fn profiler_is_observational_and_partitions_cycles() {
        use db_gpu_sim::{CycleProfiler, SimPhase};
        let g = db_gen_grid(40, 40);
        let cfg = small_cfg();
        let plain = run_sim(&g, 0, &cfg, &h100());
        let prof = CycleProfiler::new(cfg.blocks as usize);
        let profiled = run_sim_profiled(&g, 0, &cfg, &h100(), &NullTracer, &prof);

        // Observational: identical results and statistics.
        assert_eq!(plain.visited, profiled.visited);
        assert_eq!(plain.stats.cycles, profiled.stats.cycles);
        assert_eq!(plain.stats.steals_intra, profiled.stats.steals_intra);

        // The live task gauges reproduce Fig. 9's distribution exactly.
        assert_eq!(prof.tasks_per_sm(), profiled.stats.tasks_per_block);

        // Real work was attributed.
        assert!(prof.total_cycles(SimPhase::Expand) > 0);
        assert!(prof.total_cycles(SimPhase::StealSearch) > 0);

        // Each SM's phase total covers at least the makespan budget
        // (finalize tops idle up to it; explicit charges past the
        // finish time can only push it over).
        let budget = profiled.stats.cycles * cfg.warps_per_block as u64;
        for sm in 0..cfg.blocks {
            let total: u64 = SimPhase::ALL
                .iter()
                .map(|p| prof.phase_cycles(sm, *p))
                .sum();
            assert!(
                total >= budget,
                "sm{sm}: attributed {total} < budget {budget}"
            );
        }

        // Occupancy timeline mirrors the result's sampled trace.
        assert_eq!(prof.occupancy_timeline(), profiled.trace);
    }

    #[test]
    fn stack_high_water_marks_are_tracked() {
        let n = 2000u32;
        let g = GraphBuilder::undirected(n)
            .edges((0..n - 1).map(|i| (i, i + 1)))
            .build();
        let cfg = DiggerBeesConfig {
            blocks: 1,
            warps_per_block: 1,
            inter_block: false,
            ..small_cfg()
        };
        let r = run_sim(&g, 0, &cfg, &h100());
        // A deep path fills the ring (flushes happen at hot_size) and
        // pushes most of the path into the ColdSeg.
        assert_eq!(r.stats.hot_high_water, cfg.hot_size as u64);
        assert!(r.stats.cold_high_water > n as u64 / 2);
    }

    #[test]
    fn more_blocks_speed_up_big_graphs() {
        let g = db_gen_grid(90, 90);
        let one = run_sim(
            &g,
            0,
            &DiggerBeesConfig {
                blocks: 1,
                inter_block: false,
                ..small_cfg()
            },
            &h100(),
        );
        let many = run_sim(
            &g,
            0,
            &DiggerBeesConfig {
                blocks: 16,
                ..small_cfg()
            },
            &h100(),
        );
        assert!(
            many.stats.cycles < one.stats.cycles,
            "16 blocks ({}) should beat 1 block ({})",
            many.stats.cycles,
            one.stats.cycles
        );
    }
}
