//! Cooperative cancellation for engine runs.
//!
//! The engines' worker loops are long-running and, once launched, own
//! their OS threads until the traversal drains. A service layer that
//! enforces per-request deadlines needs a way to stop a traversal
//! mid-flight without killing threads: every worker polls a shared
//! [`CancelToken`] at the top of its loop (one poll per vertex-expansion
//! step — the "poll point"), and the first worker that observes a
//! cancelled token raises the engine's global `done` flag so the whole
//! thread group exits within one step.
//!
//! Cancellation is *cooperative and partial*: a cancelled run returns a
//! [`crate::native::NativeResult`] with `completed == false` whose
//! `visited`/`parent` arrays describe the prefix of the traversal that
//! finished before the stop. The prefix is still internally consistent
//! (every visited vertex has a valid tree parent chain to the root).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Deadline polls are amortized: the wall clock is read once every
/// `DEADLINE_STRIDE` polls, so a poll point costs one atomic load on
/// the fast path.
const DEADLINE_STRIDE: u32 = 64;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle shared between a controller (the
/// service layer) and the engine workers polling it.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels when [`CancelToken::cancel`] is called.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that auto-cancels once `deadline` passes (and can still
    /// be cancelled earlier by hand).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// Requests cancellation; idempotent, visible to all pollers.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token is cancelled, checking the deadline eagerly.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => {
                self.inner.cancelled.store(true, Ordering::Release);
                true
            }
            _ => false,
        }
    }

    /// The deadline this token auto-cancels at, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Creates a per-worker poller (each worker owns its stride counter).
    pub fn poller(&self) -> CancelPoller {
        CancelPoller {
            token: self.clone(),
            countdown: 0,
        }
    }
}

/// Per-worker amortized poll state for a [`CancelToken`].
#[derive(Debug)]
pub struct CancelPoller {
    token: CancelToken,
    countdown: u32,
}

impl CancelPoller {
    /// One poll point. Cheap path: a single atomic load; the deadline
    /// clock is consulted every `DEADLINE_STRIDE` calls.
    #[inline]
    pub fn poll(&mut self) -> bool {
        if self.token.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        if self.token.inner.deadline.is_none() {
            return false;
        }
        if self.countdown == 0 {
            self.countdown = DEADLINE_STRIDE;
            return self.token.is_cancelled();
        }
        self.countdown -= 1;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn manual_cancel_is_seen() {
        let t = CancelToken::new();
        let mut p = t.poller();
        assert!(!p.poll());
        t.cancel();
        assert!(p.poll());
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_expires() {
        let t = CancelToken::with_deadline(Instant::now());
        // The deadline is already past; within one stride the poller
        // must observe it.
        let mut p = t.poller();
        let mut seen = false;
        for _ in 0..=super::DEADLINE_STRIDE {
            if p.poll() {
                seen = true;
                break;
            }
        }
        assert!(seen);
    }

    #[test]
    fn future_deadline_not_yet_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(!t.poller().poll());
    }

    #[test]
    fn clones_share_state() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }
}
