//! Lock-free HotRing: the GPU's `atomicCAS` ring protocol, verbatim in
//! spirit.
//!
//! The paper's kernel coordinates the ring ends with atomics: the owner
//! operates at `head`, thieves reserve batches at `tail` with
//! `atomicCAS` (§3.4). [`StampedRing`] is the CPU-correct form of that
//! protocol:
//!
//! * **Control word** — `head` and `tail` packed into one `AtomicU64`;
//!   every push / pop / batch-steal is a single CAS on it, so claims are
//!   linearizable exactly like the GPU's CAS on `tail` (and the packed
//!   form also covers the owner-pop vs. thief race the modulo-`u32`
//!   GPU code leaves to fences).
//! * **Slot stamps** — claiming a position and transferring its payload
//!   are separate steps, so each slot carries a stamp (à la Vyukov's
//!   bounded queue) encoding *which position may write/read it next*.
//!   A thief that claimed positions `[t, t+k)` spins (bounded by the
//!   writer's store) until each stamp turns readable, reads, and
//!   releases the slot for the next lap.
//!
//! The owner consumes entries by *popping* them into hand and pushing
//! continuations back (the locked engine updates the top in place under
//! its mutex; in-place updates are not safe once thieves can claim the
//! top slot, so the lock-free engine uses pop-process-push — same
//! semantics, one extra CAS).
//!
//! Positions are wrapping `u32`s; stamp values are unique per position
//! per lap within a `2^32`-operation window (far beyond any traversal
//! here; a production deployment at that scale would widen the packed
//! word to `u128`).

use crate::stack::Entry;
use std::sync::atomic::{AtomicU64, Ordering};

#[inline]
fn pack(head: u32, tail: u32) -> u64 {
    ((head as u64) << 32) | tail as u64
}

#[inline]
fn unpack(c: u64) -> (u32, u32) {
    ((c >> 32) as u32, c as u32)
}

#[inline]
fn pack_entry(e: Entry) -> u64 {
    ((e.0 as u64) << 32) | e.1 as u64
}

#[inline]
fn unpack_entry(d: u64) -> Entry {
    ((d >> 32) as u32, d as u32)
}

/// Stamp value meaning "position `p` may be written".
#[inline]
fn writable(p: u32) -> u64 {
    (p as u64) << 1
}

/// Stamp value meaning "position `p` holds a readable entry".
#[inline]
fn readable(p: u32) -> u64 {
    ((p as u64) << 1) | 1
}

struct Slot {
    stamp: AtomicU64,
    data: AtomicU64,
}

/// Lock-free bounded work-stealing ring (owner at `head`, thieves at
/// `tail`).
pub struct StampedRing {
    control: AtomicU64,
    slots: Box<[Slot]>,
    cap: u32,
}

impl std::fmt::Debug for StampedRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (h, t) = unpack(self.control.load(Ordering::Relaxed)); // relaxed-ok: debug snapshot
        f.debug_struct("StampedRing")
            .field("cap", &self.cap)
            .field("head", &h)
            .field("tail", &t)
            .finish_non_exhaustive()
    }
}

impl StampedRing {
    /// Creates a ring with `cap` slots.
    pub fn new(cap: u32) -> Self {
        assert!(cap >= 1, "capacity must be positive");
        let slots = (0..cap)
            .map(|i| Slot {
                stamp: AtomicU64::new(writable(i)),
                data: AtomicU64::new(0),
            })
            .collect();
        Self {
            control: AtomicU64::new(0),
            slots,
            cap,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> u32 {
        self.cap
    }

    /// Live entries (`hot_rest`), racy snapshot — exactly what the GPU's
    /// victim scan reads.
    pub fn len(&self) -> u32 {
        let (h, t) = unpack(self.control.load(Ordering::Acquire));
        h.wrapping_sub(t)
    }

    /// Whether the ring is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn slot(&self, p: u32) -> &Slot {
        &self.slots[(p % self.cap) as usize]
    }

    #[inline]
    fn spin_until(&self, p: u32, want: u64) {
        let s = self.slot(p);
        while s.stamp.load(Ordering::Acquire) != want {
            std::hint::spin_loop();
        }
    }

    /// Owner push at `head`. Fails when full (the engine flushes first).
    pub fn push(&self, e: Entry) -> Result<(), Entry> {
        loop {
            let c = self.control.load(Ordering::Acquire);
            let (h, t) = unpack(c);
            if h.wrapping_sub(t) >= self.cap {
                return Err(e);
            }
            if self
                .control
                .compare_exchange_weak(
                    c,
                    pack(h.wrapping_add(1), t),
                    Ordering::AcqRel,
                    // relaxed-ok: failure retries from a fresh Acquire load
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                // Position h is ours; wait for the slot's previous
                // occupant to be fully consumed, then publish.
                self.spin_until(h, writable(h));
                let s = self.slot(h);
                // relaxed-ok: publication is ordered by the stamp Release below
                s.data.store(pack_entry(e), Ordering::Relaxed);
                s.stamp.store(readable(h), Ordering::Release);
                return Ok(());
            }
        }
    }

    /// Owner pop at `head`.
    pub fn pop(&self) -> Option<Entry> {
        loop {
            let c = self.control.load(Ordering::Acquire);
            let (h, t) = unpack(c);
            if h == t {
                return None;
            }
            let p = h.wrapping_sub(1);
            if self
                .control
                // relaxed-ok: failure retries from a fresh Acquire load
                .compare_exchange_weak(c, pack(p, t), Ordering::AcqRel, Ordering::Relaxed)
                .is_ok()
            {
                self.spin_until(p, readable(p));
                let s = self.slot(p);
                // relaxed-ok: spin_until's Acquire on the stamp orders this read
                let e = unpack_entry(s.data.load(Ordering::Relaxed));
                // Release the slot for position p again (the owner may
                // push back to the same position next).
                s.stamp.store(writable(p), Ordering::Release);
                return Some(e);
            }
        }
    }

    /// Reserves up to `k` of the oldest entries from `tail` — the §3.4
    /// steal (and the owner-side flush source). Returns the reserved
    /// batch oldest-first, or an empty vector if fewer than `min`
    /// entries were available or the CAS raced out after `attempts`
    /// tries (the paper's thief simply re-selects a victim).
    pub fn take_from_tail(&self, k: u32, min: u32, attempts: u32) -> Vec<Entry> {
        for _ in 0..attempts.max(1) {
            let c = self.control.load(Ordering::Acquire);
            let (h, t) = unpack(c);
            let avail = h.wrapping_sub(t);
            if avail < min {
                return Vec::new();
            }
            let take = k.min(avail);
            if self
                .control
                .compare_exchange(
                    c,
                    pack(h, t.wrapping_add(take)),
                    Ordering::AcqRel,
                    // relaxed-ok: failure re-selects a victim or retries fresh
                    Ordering::Relaxed,
                )
                .is_ok()
            {
                let mut out = Vec::with_capacity(take as usize);
                for i in 0..take {
                    let p = t.wrapping_add(i);
                    self.spin_until(p, readable(p));
                    let s = self.slot(p);
                    // relaxed-ok: spin_until's Acquire on the stamp orders this read
                    out.push(unpack_entry(s.data.load(Ordering::Relaxed)));
                    // Release the slot for the *next lap* of this slot.
                    s.stamp
                        .store(writable(p.wrapping_add(self.cap)), Ordering::Release);
                }
                return out;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as Counter;
    use std::sync::Arc;

    #[test]
    fn single_threaded_lifo() {
        let r = StampedRing::new(8);
        for i in 0..5u32 {
            r.push((i, i)).unwrap();
        }
        assert_eq!(r.len(), 5);
        for i in (0..5u32).rev() {
            assert_eq!(r.pop(), Some((i, i)));
        }
        assert!(r.pop().is_none());
    }

    #[test]
    fn full_ring_rejects() {
        let r = StampedRing::new(2);
        r.push((1, 0)).unwrap();
        r.push((2, 0)).unwrap();
        assert_eq!(r.push((3, 0)), Err((3, 0)));
    }

    #[test]
    fn steal_takes_oldest() {
        let r = StampedRing::new(8);
        for i in 0..6u32 {
            r.push((i, 0)).unwrap();
        }
        let stolen = r.take_from_tail(2, 4, 1);
        assert_eq!(stolen, vec![(0, 0), (1, 0)]);
        assert_eq!(r.pop(), Some((5, 0)));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn steal_respects_min() {
        let r = StampedRing::new(8);
        r.push((1, 0)).unwrap();
        assert!(r.take_from_tail(1, 4, 3).is_empty());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn wrap_around_many_laps() {
        let r = StampedRing::new(4);
        for lap in 0..1000u32 {
            r.push((lap, 0)).unwrap();
            r.push((lap, 1)).unwrap();
            assert_eq!(r.take_from_tail(2, 1, 1).len(), 2);
        }
        assert!(r.is_empty());
    }

    /// Concurrency stress: one owner pushing/popping, several thieves
    /// stealing; every pushed entry must be consumed exactly once.
    #[test]
    fn concurrent_no_loss_no_duplication() {
        let ring = Arc::new(StampedRing::new(64));
        let total: u32 = 20_000;
        let consumed = Arc::new(Counter::new(0));
        let sum = Arc::new(Counter::new(0));

        let mut handles = Vec::new();
        for _ in 0..3 {
            let ring = Arc::clone(&ring);
            let consumed = Arc::clone(&consumed);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || {
                while consumed.load(Ordering::Acquire) < total as u64 {
                    let batch = ring.take_from_tail(4, 2, 2);
                    if batch.is_empty() {
                        std::thread::yield_now();
                        continue;
                    }
                    for (v, _) in batch {
                        sum.fetch_add(v as u64, Ordering::Relaxed);
                        consumed.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }));
        }

        // Owner: push everything, popping occasionally like real DFS.
        let mut pushed = 0u32;
        let mut owner_rng = 0x9e3779b9u32;
        while pushed < total {
            match ring.push((pushed, 0)) {
                Ok(()) => pushed += 1,
                Err(_) => {
                    // ring full: consume one ourselves
                    if let Some((v, _)) = ring.pop() {
                        sum.fetch_add(v as u64, Ordering::Relaxed);
                        consumed.fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
            owner_rng = owner_rng.wrapping_mul(1664525).wrapping_add(1013904223);
            if owner_rng.is_multiple_of(7) {
                if let Some((v, _)) = ring.pop() {
                    sum.fetch_add(v as u64, Ordering::Relaxed);
                    consumed.fetch_add(1, Ordering::AcqRel);
                }
            }
        }
        // Drain the rest as the owner.
        while consumed.load(Ordering::Acquire) < total as u64 {
            if let Some((v, _)) = ring.pop() {
                sum.fetch_add(v as u64, Ordering::Relaxed);
                consumed.fetch_add(1, Ordering::AcqRel);
            } else {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), total as u64);
        let expect: u64 = (0..total as u64).sum();
        assert_eq!(
            sum.load(Ordering::Relaxed),
            expect,
            "entries lost or duplicated"
        );
        assert!(ring.is_empty());
    }
}
