//! The two-level stack of §3.2: HotRing + ColdSeg.
//!
//! Entries are `⟨vertex | offset⟩` pairs where `offset` is the index of
//! the next neighbor to visit *within the vertex's CSR row* (relative
//! offsets keep entries at 8 bytes even for multi-billion-edge graphs).
//!
//! Deviation from the paper (documented in DESIGN.md §1): `head`/`tail`
//! and `top`/`bottom` are unbounded `u64` counters, indexed modulo the
//! capacity, instead of wrapped `u32` pointers. `hot_rest = head - tail`
//! without the `% hot_size` dance, and the ABA problem disappears. The
//! ColdSeg is stored circularly for the same reason (the paper draws it
//! linear; the `top`/`bottom` semantics are identical), and overflow
//! beyond `cold_size` goes to a spill vector — the paper sizes ColdSeg at
//! `nv / nw` and never discusses overflow, which adversarially skewed
//! graphs can trigger.
//!
//! These structures are *plain data*: the simulated engine owns them
//! outright (the DES serializes all access), and the native engine wraps
//! them in per-warp locks (`native` module). The stealing *protocol* —
//! who may touch which end, cutoffs, reservation — lives in the engines.

/// A stack entry: `(vertex, next-neighbor offset within the row)`.
pub type Entry = (u32, u32);

/// Fixed-capacity circular stack with owner ops at `head` and
/// thief/flush ops at `tail` (Figure 2(a), (c), (d)).
#[derive(Debug, Clone)]
pub struct HotRing {
    buf: Box<[Entry]>,
    cap: u64,
    /// Next free slot (owner side). Monotonically increasing.
    head: u64,
    /// Oldest live entry (thief side). Monotonically increasing.
    tail: u64,
}

impl HotRing {
    /// Creates a ring with `cap` slots (paper: `hot_size = 128`).
    pub fn new(cap: u32) -> Self {
        assert!(cap >= 1, "HotRing capacity must be positive");
        Self {
            buf: vec![(0, 0); cap as usize].into_boxed_slice(),
            cap: cap as u64,
            head: 0,
            tail: 0,
        }
    }

    /// `hot_rest`: live entries (§3.4).
    #[inline]
    pub fn len(&self) -> u64 {
        self.head - self.tail
    }

    /// Empty iff `head == tail` (Figure 2(a)).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head == self.tail
    }

    /// Full when every slot is live.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.cap
    }

    /// Capacity in entries.
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.cap
    }

    #[inline]
    fn slot(&self, counter: u64) -> usize {
        (counter % self.cap) as usize
    }

    /// Fast push at `head` (Figure 2(c)). Fails when full — the engine
    /// must flush first.
    pub fn push(&mut self, e: Entry) -> Result<(), Entry> {
        if self.is_full() {
            return Err(e);
        }
        let s = self.slot(self.head);
        self.buf[s] = e;
        self.head += 1;
        Ok(())
    }

    /// Fast pop at `head` (Figure 2(d)).
    pub fn pop(&mut self) -> Option<Entry> {
        if self.is_empty() {
            return None;
        }
        self.head -= 1;
        Some(self.buf[self.slot(self.head)])
    }

    /// The top entry (the one the owner warp is working on).
    pub fn top(&self) -> Option<Entry> {
        if self.is_empty() {
            None
        } else {
            Some(self.buf[self.slot(self.head - 1)])
        }
    }

    /// `updateTop` from Algorithm 1: advance the top entry's offset.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn update_top(&mut self, e: Entry) {
        assert!(!self.is_empty(), "update_top on empty HotRing");
        let s = self.slot(self.head - 1);
        self.buf[s] = e;
    }

    /// Removes up to `k` of the *oldest* entries from `tail` — the flush
    /// source (Figure 2(e)) and the intra-block steal reservation
    /// (Algorithm 3 steps 2–3). Returns them oldest-first.
    pub fn take_from_tail(&mut self, k: u64) -> Vec<Entry> {
        let k = k.min(self.len());
        let mut out = Vec::with_capacity(k as usize);
        for i in 0..k {
            out.push(self.buf[self.slot(self.tail + i)]);
        }
        self.tail += k;
        out
    }

    /// Pushes a batch at `head` (steal transfer / refill destination).
    /// The batch must fit.
    ///
    /// # Panics
    ///
    /// Panics if the batch does not fit — engines check capacity before
    /// reserving work.
    pub fn push_batch(&mut self, entries: &[Entry]) {
        assert!(
            self.len() + entries.len() as u64 <= self.cap,
            "push_batch overflow: {} live + {} new > {}",
            self.len(),
            entries.len(),
            self.cap
        );
        for &e in entries {
            let s = self.slot(self.head);
            self.buf[s] = e;
            self.head += 1;
        }
    }

    /// Raw `head` counter (diagnostics).
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Raw `tail` counter (diagnostics).
    pub fn tail(&self) -> u64 {
        self.tail
    }
}

/// Large-capacity overflow stack: owner pushes/pops at `top`, remote
/// thieves take from `bottom` (Figure 2(b), (e), (f); Algorithm 4).
#[derive(Debug, Clone)]
pub struct ColdSeg {
    buf: Box<[Entry]>,
    cap: u64,
    /// One past the newest entry. Monotonic counter.
    top: u64,
    /// Oldest live entry. Monotonic counter.
    bottom: u64,
    /// Overflow beyond `cap` (newest entries; LIFO above the ring).
    spill: Vec<Entry>,
}

impl ColdSeg {
    /// Creates a segment with `cap` slots (paper: `cold_size = nv / nw`).
    pub fn new(cap: u32) -> Self {
        let cap = cap.max(1);
        Self {
            buf: vec![(0, 0); cap as usize].into_boxed_slice(),
            cap: cap as u64,
            top: 0,
            bottom: 0,
            spill: Vec::new(),
        }
    }

    /// `cold_rest = top - bottom` (§3.5) — not counting spill.
    #[inline]
    pub fn len(&self) -> u64 {
        self.top - self.bottom
    }

    /// Whether both the ring and the spill are empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0 && self.spill.is_empty()
    }

    /// Entries currently in the spill vector.
    pub fn spilled(&self) -> usize {
        self.spill.len()
    }

    #[inline]
    fn slot(&self, counter: u64) -> usize {
        (counter % self.cap) as usize
    }

    /// Receives a flush batch at `top` (Figure 2(e)); overflow goes to
    /// the spill. Entries arrive oldest-first and keep that order.
    pub fn push_top(&mut self, entries: &[Entry]) {
        for &e in entries {
            if !self.spill.is_empty() || self.len() == self.cap {
                self.spill.push(e);
            } else {
                let s = self.slot(self.top);
                self.buf[s] = e;
                self.top += 1;
            }
        }
    }

    /// Refill source (Figure 2(f)): removes up to `k` of the *newest*
    /// entries from `top` (or the spill, which sits above `top`).
    /// Returns them oldest-first so `HotRing::push_batch` preserves
    /// stack order.
    pub fn take_from_top(&mut self, k: u64) -> Vec<Entry> {
        let mut out = Vec::new();
        let from_spill = (k as usize).min(self.spill.len());
        // Newest first overall: spill entries are newest.
        let spill_start = self.spill.len() - from_spill;
        let spill_part: Vec<Entry> = self.spill.drain(spill_start..).collect();
        let remaining = k - from_spill as u64;
        let from_ring = remaining.min(self.len());
        for i in 0..from_ring {
            // oldest-first among the taken range [top - from_ring, top)
            out.push(self.buf[self.slot(self.top - from_ring + i)]);
        }
        self.top -= from_ring;
        out.extend(spill_part);
        out
    }

    /// Inter-block steal reservation (Algorithm 4 steps 3–4): removes up
    /// to `k` of the *oldest* entries from `bottom`, oldest-first. The
    /// spill is never stolen from (it is private overflow).
    pub fn take_from_bottom(&mut self, k: u64) -> Vec<Entry> {
        let k = k.min(self.len());
        let mut out = Vec::with_capacity(k as usize);
        for i in 0..k {
            out.push(self.buf[self.slot(self.bottom + i)]);
        }
        self.bottom += k;
        out
    }

    /// Raw `top` counter (diagnostics).
    pub fn top_counter(&self) -> u64 {
        self.top
    }

    /// Raw `bottom` counter (diagnostics).
    pub fn bottom_counter(&self) -> u64 {
        self.bottom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_push_pop_example() {
        // Size-4 ring; push ⟨a|i⟩ at head 0; head -> 1 (Figure 2(c)).
        let mut r = HotRing::new(4);
        r.push((0xa, 1)).unwrap();
        assert_eq!(r.head(), 1);
        assert_eq!(r.top(), Some((0xa, 1)));
        // Pop it back (Figure 2(d)).
        assert_eq!(r.pop(), Some((0xa, 1)));
        assert!(r.is_empty());
    }

    #[test]
    fn ring_lifo_order() {
        let mut r = HotRing::new(8);
        for i in 0..5 {
            r.push((i, 0)).unwrap();
        }
        for i in (0..5).rev() {
            assert_eq!(r.pop(), Some((i, 0)));
        }
    }

    #[test]
    fn ring_rejects_push_when_full() {
        let mut r = HotRing::new(2);
        r.push((1, 0)).unwrap();
        r.push((2, 0)).unwrap();
        assert!(r.is_full());
        assert_eq!(r.push((3, 0)), Err((3, 0)));
    }

    #[test]
    fn ring_wraps_around() {
        // The tail counter grows monotonically via take_from_tail, so
        // slots are reused modulo the capacity without ambiguity.
        let mut r = HotRing::new(4);
        for round in 0..10u32 {
            r.push((round, round)).unwrap();
            assert_eq!(r.take_from_tail(1), vec![(round, round)]);
        }
        assert_eq!(r.head(), 10);
        assert_eq!(r.tail(), 10);
        assert!(r.is_empty());
    }

    #[test]
    fn take_from_tail_returns_oldest_first() {
        let mut r = HotRing::new(8);
        for i in 0..6 {
            r.push((i, 0)).unwrap();
        }
        let stolen = r.take_from_tail(3);
        assert_eq!(stolen, vec![(0, 0), (1, 0), (2, 0)]);
        assert_eq!(r.len(), 3);
        // owner still pops newest
        assert_eq!(r.pop(), Some((5, 0)));
    }

    #[test]
    fn take_from_tail_caps_at_len() {
        let mut r = HotRing::new(8);
        r.push((1, 0)).unwrap();
        assert_eq!(r.take_from_tail(100).len(), 1);
        assert!(r.is_empty());
    }

    #[test]
    fn update_top_changes_offset() {
        let mut r = HotRing::new(4);
        r.push((7, 0)).unwrap();
        r.update_top((7, 3));
        assert_eq!(r.pop(), Some((7, 3)));
    }

    #[test]
    #[should_panic(expected = "update_top on empty")]
    fn update_top_empty_panics() {
        HotRing::new(4).update_top((0, 0));
    }

    #[test]
    fn push_batch_preserves_order() {
        let mut r = HotRing::new(8);
        r.push_batch(&[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(r.pop(), Some((3, 0))); // newest on top
    }

    #[test]
    #[should_panic(expected = "push_batch overflow")]
    fn push_batch_overflow_panics() {
        let mut r = HotRing::new(2);
        r.push_batch(&[(1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn figure2_flush_refill_round_trip() {
        // Flush moves oldest ring entries to ColdSeg top (Figure 2(e));
        // refill brings the newest ColdSeg entries back (Figure 2(f)).
        let mut r = HotRing::new(4);
        let mut c = ColdSeg::new(8);
        for i in 0..4 {
            r.push((i, 0)).unwrap();
        }
        let batch = r.take_from_tail(2);
        c.push_top(&batch);
        assert_eq!(c.len(), 2);
        assert_eq!(r.len(), 2);
        let refill = c.take_from_top(2);
        assert_eq!(refill, vec![(0, 0), (1, 0)]); // oldest-first
        r.push_batch(&refill);
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn cold_take_from_bottom_oldest_first() {
        let mut c = ColdSeg::new(8);
        c.push_top(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let stolen = c.take_from_bottom(2);
        assert_eq!(stolen, vec![(1, 0), (2, 0)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.bottom_counter(), 2);
    }

    #[test]
    fn cold_spill_on_overflow() {
        let mut c = ColdSeg::new(2);
        c.push_top(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.spilled(), 2);
        assert!(!c.is_empty());
        // take_from_top drains the spill (newest) first, oldest-first
        // within the returned batch.
        let taken = c.take_from_top(3);
        assert_eq!(taken, vec![(2, 0), (3, 0), (4, 0)]);
        assert_eq!(c.spilled(), 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn cold_steal_never_touches_spill() {
        let mut c = ColdSeg::new(2);
        c.push_top(&[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(c.spilled(), 1);
        let stolen = c.take_from_bottom(10);
        assert_eq!(stolen, vec![(1, 0), (2, 0)]);
        assert_eq!(c.spilled(), 1);
        assert_eq!(c.take_from_top(10), vec![(3, 0)]);
    }

    #[test]
    fn cold_wraps_circularly() {
        let mut c = ColdSeg::new(4);
        for round in 0..20u32 {
            c.push_top(&[(round, 0)]);
            assert_eq!(c.take_from_bottom(1), vec![(round, 0)]);
        }
        assert_eq!(c.bottom_counter(), 20);
    }
}
