//! DiggerBees configuration: stack shape, stealing cutoffs, victim
//! policy, and the v1–v4 variant presets of the §4.5 breakdown.

/// How the per-warp stack is organized (§3.2 / §4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StackLevels {
    /// Single stack resident in global memory (the paper's breakdown
    /// version v1). No HotRing, no flush/refill; every stack operation
    /// pays global-memory cost.
    One,
    /// Two-level stack: shared-memory HotRing + global-memory ColdSeg
    /// (the paper's design, §3.2).
    Two,
}

/// Victim-block selection policy for inter-block stealing (§3.5, Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VictimPolicy {
    /// Uniformly random victim block — the Fig. 9 "Baseline".
    Random,
    /// Power-of-two-choices, load-aware: sample two blocks, steal from
    /// the heavier one (the paper's design, after Mitzenmacher).
    TwoChoice,
}

/// Full algorithm configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiggerBeesConfig {
    /// HotRing capacity in entries. Paper: 128 (§3.2).
    pub hot_size: u32,
    /// Intra-block steal threshold on `hot_rest`. Paper: 32 (§3.4).
    pub hot_cutoff: u32,
    /// Inter-block steal threshold on `cold_rest`. Paper: 64 (§3.5).
    pub cold_cutoff: u32,
    /// Entries moved per flush when the HotRing fills (oldest first,
    /// from `tail` — §3.3's locality/steal-candidate argument).
    pub flush_batch: u32,
    /// Thread blocks to launch. The paper's full version uses one block
    /// per SM (v4: 132 on H100).
    pub blocks: u32,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Stack organization.
    pub stack: StackLevels,
    /// Whether inter-block stealing is enabled (v1/v2 disable it).
    pub inter_block: bool,
    /// Victim-block selection policy.
    pub victim_policy: VictimPolicy,
    /// Seed for victim sampling.
    pub seed: u64,
}

impl Default for DiggerBeesConfig {
    /// The paper's default configuration (hot_size 128, hot_cutoff 32,
    /// cold_cutoff 64, two-level stack, two-choice inter-block stealing).
    /// Block count defaults to the H100's 132 SMs; engines typically
    /// override it from their machine model.
    fn default() -> Self {
        Self {
            hot_size: 128,
            hot_cutoff: 32,
            cold_cutoff: 64,
            flush_batch: 64,
            blocks: 132,
            warps_per_block: 8,
            stack: StackLevels::Two,
            inter_block: true,
            victim_policy: VictimPolicy::TwoChoice,
            seed: 0x5eed_d166e4,
        }
    }
}

impl DiggerBeesConfig {
    /// Breakdown version v1: one-level (global) stack, a single block,
    /// intra-block stealing only (§4.5).
    pub fn v1() -> Self {
        Self {
            stack: StackLevels::One,
            blocks: 1,
            inter_block: false,
            ..Self::default()
        }
    }

    /// Breakdown version v2: two-level stack, a single block, intra-block
    /// stealing only.
    pub fn v2() -> Self {
        Self {
            blocks: 1,
            inter_block: false,
            ..Self::default()
        }
    }

    /// Breakdown version v3: two-level stack, 66 blocks, intra- and
    /// inter-block stealing.
    pub fn v3() -> Self {
        Self {
            blocks: 66,
            ..Self::default()
        }
    }

    /// Breakdown version v4 (the full implementation): one block per SM.
    pub fn v4(sm_count: u32) -> Self {
        Self {
            blocks: sm_count,
            ..Self::default()
        }
    }

    /// Total number of warps.
    pub fn total_warps(&self) -> u32 {
        self.blocks * self.warps_per_block
    }

    /// Entries an intra-block thief reserves (`hot_cutoff / 2`, Alg. 3).
    pub fn hot_steal_batch(&self) -> u32 {
        (self.hot_cutoff / 2).max(1)
    }

    /// Entries an inter-block thief reserves (`cold_cutoff / 2`, Alg. 4).
    pub fn cold_steal_batch(&self) -> u32 {
        (self.cold_cutoff / 2).max(1)
    }

    /// Validates internal consistency; engines call this on entry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent parameters (zero sizes, cutoff larger than
    /// the ring, steal batch that cannot fit).
    pub fn validate(&self) {
        assert!(self.hot_size >= 4, "hot_size must be at least 4");
        assert!(self.hot_cutoff >= 2, "hot_cutoff must be at least 2");
        assert!(
            self.hot_cutoff <= self.hot_size,
            "hot_cutoff {} exceeds hot_size {}",
            self.hot_cutoff,
            self.hot_size
        );
        assert!(self.cold_cutoff >= 2, "cold_cutoff must be at least 2");
        assert!(self.flush_batch >= 1 && self.flush_batch <= self.hot_size);
        assert!(self.blocks >= 1 && self.warps_per_block >= 1);
        assert!(
            self.hot_steal_batch() < self.hot_size,
            "steal batch must fit in the thief's ring"
        );
        assert!(
            self.cold_steal_batch() <= self.hot_size,
            "inter-block steal batch ({}) must fit in the thief's HotRing ({})",
            self.cold_steal_batch(),
            self.hot_size
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = DiggerBeesConfig::default();
        assert_eq!(c.hot_size, 128);
        assert_eq!(c.hot_cutoff, 32);
        assert_eq!(c.cold_cutoff, 64);
        assert_eq!(c.stack, StackLevels::Two);
        assert_eq!(c.victim_policy, VictimPolicy::TwoChoice);
        c.validate();
    }

    #[test]
    fn breakdown_variants() {
        assert_eq!(DiggerBeesConfig::v1().stack, StackLevels::One);
        assert_eq!(DiggerBeesConfig::v1().blocks, 1);
        assert!(!DiggerBeesConfig::v2().inter_block);
        assert_eq!(DiggerBeesConfig::v3().blocks, 66);
        assert_eq!(DiggerBeesConfig::v4(132).blocks, 132);
        for c in [
            DiggerBeesConfig::v1(),
            DiggerBeesConfig::v2(),
            DiggerBeesConfig::v3(),
            DiggerBeesConfig::v4(132),
        ] {
            c.validate();
        }
    }

    #[test]
    fn steal_batches_are_half_cutoffs() {
        let c = DiggerBeesConfig::default();
        assert_eq!(c.hot_steal_batch(), 16);
        assert_eq!(c.cold_steal_batch(), 32);
    }

    #[test]
    #[should_panic(expected = "hot_cutoff")]
    fn rejects_cutoff_above_ring() {
        DiggerBeesConfig {
            hot_cutoff: 256,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn total_warps_product() {
        let c = DiggerBeesConfig {
            blocks: 66,
            warps_per_block: 8,
            ..Default::default()
        };
        assert_eq!(c.total_warps(), 528);
    }
}
