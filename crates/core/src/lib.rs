//! # db-core — the DiggerBees algorithm
//!
//! Implements the paper's contribution (§3): parallel unordered DFS with
//! a **two-level stack** (shared-memory HotRing + global-memory ColdSeg)
//! and **hierarchical block-level work stealing** (warp-level DFS,
//! intra-block stealing via `tail` reservation, inter-block stealing via
//! power-of-two-choices victim blocks and `bottom` reservation).
//!
//! Two engines execute the same algorithm:
//!
//! * [`sim`] — the deterministic GPU-simulated engine used for every
//!   figure in the paper's evaluation (the hardware substitute; see
//!   DESIGN.md §1). Warps are state machines scheduled by the
//!   discrete-event core of `db-gpu-sim`, and performance is reported in
//!   simulated cycles / MTEPS under a machine model (A100/H100 presets).
//! * [`native`] — a real multithreaded engine for library users: the
//!   same two-level structure and stealing hierarchy mapped onto OS
//!   threads ("warps") grouped into thread groups ("blocks"), with
//!   per-ring locks standing in for the GPU's `atomicCAS` ring protocol.
//! * [`native_lockfree`] — the same engine on the GPU-faithful lock-free
//!   ring protocol ([`lockfree::StampedRing`]): packed head/tail CAS
//!   claims plus per-slot stamps for safe payload transfer.
//!
//! Shared pieces:
//!
//! * [`config`] — `hot_size` / `hot_cutoff` / `cold_cutoff`, block
//!   geometry, victim policy, and the §4.5 breakdown presets
//!   ([`config::DiggerBeesConfig::v1`] … `v4`).
//! * [`stack`] — the HotRing / ColdSeg data structures of §3.2 with the
//!   four core operations (fast push, fast pop, flush, refill).
//! * [`cancel`] — cooperative cancellation tokens polled by the native
//!   engines' worker loops, so a service layer can enforce per-request
//!   deadlines without killing threads.

#![warn(missing_docs)]

pub mod cancel;
pub mod config;
pub mod graph_check;
pub mod lockfree;
pub mod native;
pub mod native_lockfree;
pub mod sim;
pub mod stack;

pub use cancel::CancelToken;
pub use config::{DiggerBeesConfig, StackLevels, VictimPolicy};
pub use graph_check::{validate_graph, validate_input, GraphError};
pub use sim::{
    run_sim, run_sim_faulted, run_sim_profiled, run_sim_store, run_sim_traced, SimResult,
};
