//! Chaos tests for the simulated engine: killed SMs must have their
//! stranded work re-stolen by survivors, and fault injection must be
//! deterministic end to end (property (b) of the fault-plan suite:
//! same seed + plan ⇒ identical injection logs across two runs).

use db_core::{run_sim, run_sim_faulted, DiggerBeesConfig};
use db_fault::{FaultPlan, Injector};
use db_gpu_sim::MachineModel;
use db_graph::validate::{check_reachability, check_spanning_tree};
use db_graph::{CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn grid(w: u32, h: u32) -> CsrGraph {
    let mut b = GraphBuilder::undirected(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.edge(y * w + x, y * w + x + 1);
            }
            if y + 1 < h {
                b.edge(y * w + x, (y + 1) * w + x);
            }
        }
    }
    b.build()
}

fn cfg() -> DiggerBeesConfig {
    DiggerBeesConfig {
        blocks: 4,
        warps_per_block: 4,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        ..Default::default()
    }
}

fn injector(spec: &str) -> Injector {
    Injector::new(FaultPlan::parse(spec).unwrap())
}

#[test]
fn killed_sm_work_is_recovered_by_survivors() {
    let g = grid(50, 50);
    let m = MachineModel::h100();
    let baseline = run_sim(&g, 0, &cfg(), &m);

    let inj = injector("kill:sm=0@cycle=2000");
    let r = run_sim_faulted(&g, 0, &cfg(), &m, &db_trace::NullTracer, &inj);

    // The kill actually struck the SM that owned the root's work.
    assert_eq!(r.stats.sms_killed, 1, "SM 0 must die");
    assert!(r.stats.faults_injected >= 1);
    assert!(
        r.stats.entries_recovered > 0,
        "survivors must re-steal stranded entries"
    );
    assert_eq!(r.stats.blocks_recovered, 1, "SM 0 must drain completely");

    // Despite losing an SM mid-run, the traversal is complete and the
    // reachable set is bit-identical to the fault-free run.
    assert_eq!(r.visited, baseline.visited);
    check_reachability(&g, 0, &r.visited).unwrap();
    check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
}

#[test]
fn recovery_shows_up_in_the_trace() {
    use db_trace::{EventKind, RingBufferTracer};
    let g = grid(50, 50);
    let tracer = RingBufferTracer::new(1 << 18);
    let inj = injector("kill:sm=0@cycle=2000");
    let r = run_sim_faulted(&g, 0, &cfg(), &MachineModel::h100(), &tracer, &inj);
    assert!(r.stats.entries_recovered > 0);

    let events = tracer.snapshot();
    let faults = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Fault { .. }))
        .count();
    let recovered: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Recover {
                victim_block: 0,
                entries,
            } => Some(entries as u64),
            _ => None,
        })
        .sum();
    assert!(faults >= 1, "kill must appear on the trace timeline");
    assert_eq!(
        recovered, r.stats.entries_recovered,
        "trace recovery events must account for every recovered entry"
    );
}

#[test]
fn kill_without_inter_block_terminates_with_stranded_work() {
    let g = grid(50, 50);
    let m = MachineModel::h100();
    let baseline = run_sim(&g, 0, &cfg(), &m);
    let no_inter = DiggerBeesConfig {
        inter_block: false,
        ..cfg()
    };
    let inj = injector("kill:sm=0@cycle=2000");
    // Must terminate (stranded-work guard parks the idle survivors)
    // rather than spin on live > 0 forever.
    let r = run_sim_faulted(&g, 0, &no_inter, &m, &db_trace::NullTracer, &inj);
    assert_eq!(r.stats.sms_killed, 1);
    assert_eq!(r.stats.blocks_recovered, 0, "nobody can reach SM 0's work");
    let visited = r.visited.iter().filter(|&&v| v).count();
    let full = baseline.visited.iter().filter(|&&v| v).count();
    assert!(
        visited < full,
        "stranded work must be missing ({visited} vs {full})"
    );
}

#[test]
fn empty_plan_is_bit_identical_to_fault_free() {
    let g = grid(40, 40);
    let m = MachineModel::h100();
    let baseline = run_sim(&g, 0, &cfg(), &m);
    let inj = injector("");
    let r = run_sim_faulted(&g, 0, &cfg(), &m, &db_trace::NullTracer, &inj);
    assert_eq!(r.visited, baseline.visited);
    assert_eq!(r.parent, baseline.parent);
    assert_eq!(r.stats.cycles, baseline.stats.cycles);
    assert_eq!(r.stats.steals_intra, baseline.stats.steals_intra);
    assert_eq!(r.stats.steals_inter, baseline.stats.steals_inter);
    assert_eq!(r.stats.faults_injected, 0);
    assert_eq!(inj.injected(), 0);
}

#[test]
fn dropsteal_and_corrupt_preserve_correctness() {
    let g = grid(40, 40);
    let inj = injector("seed=1;dropsteal:sm=*@p=0.5;corrupt:sm=*@p=0.5");
    let r = run_sim_faulted(
        &g,
        0,
        &cfg(),
        &MachineModel::h100(),
        &db_trace::NullTracer,
        &inj,
    );
    assert!(r.stats.faults_injected > 0, "the plan must actually strike");
    check_reachability(&g, 0, &r.visited).unwrap();
    check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
}

#[test]
fn stalls_and_slowdowns_cost_cycles() {
    let g = grid(30, 30);
    let m = MachineModel::h100();
    let baseline = run_sim(&g, 0, &cfg(), &m);

    let stall = injector("seed=2;stall=500:sm=*@p=0.5");
    let rs = run_sim_faulted(&g, 0, &cfg(), &m, &db_trace::NullTracer, &stall);
    assert!(rs.stats.faults_injected > 0);
    assert!(
        rs.stats.cycles > baseline.stats.cycles,
        "stalls must slow the run ({} vs {})",
        rs.stats.cycles,
        baseline.stats.cycles
    );

    let slow = injector("slow=4:sm=*@always");
    let rw = run_sim_faulted(&g, 0, &cfg(), &m, &db_trace::NullTracer, &slow);
    assert!(
        rw.stats.cycles > baseline.stats.cycles,
        "a 4x slowdown must slow the run ({} vs {})",
        rw.stats.cycles,
        baseline.stats.cycles
    );
    check_reachability(&g, 0, &rs.visited).unwrap();
    check_reachability(&g, 0, &rw.visited).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Property (b): same seed + plan ⇒ identical injection site/cycle
    /// logs and identical results across two sim runs.
    #[test]
    fn same_seed_and_plan_replay_identically(seed in 0u64..1_000_000) {
        let g = grid(30, 30);
        let m = MachineModel::h100();
        let spec = format!(
            "seed={seed};dropsteal:sm=*@p=0.3;stall=50:sm=*@p=0.05;corrupt:sm=*@p=0.1"
        );
        let ia = injector(&spec);
        let ib = injector(&spec);
        let a = run_sim_faulted(&g, 0, &cfg(), &m, &db_trace::NullTracer, &ia);
        let b = run_sim_faulted(&g, 0, &cfg(), &m, &db_trace::NullTracer, &ib);
        prop_assert_eq!(ia.log_lines(), ib.log_lines());
        prop_assert_eq!(a.visited, b.visited);
        prop_assert_eq!(a.parent, b.parent);
        prop_assert_eq!(a.stats.cycles, b.stats.cycles);
        prop_assert_eq!(a.stats.faults_injected, b.stats.faults_injected);
    }
}
