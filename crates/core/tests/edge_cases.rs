//! Edge-case and stress tests for both DiggerBees engines: ColdSeg
//! overflow (spill), extreme degrees, self loops, directed inputs,
//! adversarial cutoff settings, and the execution example of §3.6.

use db_core::native::{NativeConfig, NativeEngine};
use db_core::{run_sim, DiggerBeesConfig, StackLevels};
use db_gpu_sim::MachineModel;
use db_graph::validate::{check_reachability, check_spanning_tree};
use db_graph::GraphBuilder;

fn h100() -> MachineModel {
    MachineModel::h100()
}

/// Tiny rings + tiny cold capacity force the spill path: `cold_size`
/// is computed as nv/nw but clamped, so to overflow we need one warp
/// holding nearly the whole graph while nobody steals.
#[test]
fn cold_spill_on_single_warp_deep_graph() {
    let n = 40_000u32;
    let g = GraphBuilder::undirected(n)
        .edges((0..n - 1).map(|i| (i, i + 1)))
        .build();
    let cfg = DiggerBeesConfig {
        blocks: 1,
        warps_per_block: 1,
        inter_block: false,
        hot_size: 8,
        hot_cutoff: 4,
        cold_cutoff: 4,
        flush_batch: 4,
        ..Default::default()
    };
    // cold capacity = max(nv/1, 16) = nv — never spills with one warp.
    // Force spill with many warps on one block so each ColdSeg is small
    // but the first warp still owns the whole path.
    let spill_cfg = DiggerBeesConfig {
        warps_per_block: 64,
        ..cfg
    };
    for c in [cfg, spill_cfg] {
        let r = run_sim(&g, 0, &c, &h100());
        check_reachability(&g, 0, &r.visited).unwrap();
        check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
    }
}

#[test]
fn star_graph_with_huge_degree() {
    // One vertex with degree 50k: exercises long chunk-scans of a single
    // row and CAS-heavy claiming.
    let n = 50_000u32;
    let g = GraphBuilder::undirected(n)
        .edges((1..n).map(|i| (0, i)))
        .build();
    let cfg = DiggerBeesConfig {
        blocks: 8,
        warps_per_block: 4,
        ..Default::default()
    };
    let r = run_sim(&g, 0, &cfg, &h100());
    assert_eq!(r.stats.vertices_visited, n as u64);
    check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
    // Everyone hangs off the hub.
    assert!(r.parent.iter().skip(1).all(|&p| p == 0));
}

#[test]
fn self_loops_are_harmless() {
    let g = GraphBuilder::undirected(5)
        .edges([(0, 0), (0, 1), (1, 1), (1, 2), (2, 2), (3, 3)])
        .build();
    let r = run_sim(&g, 0, &DiggerBeesConfig::v2(), &h100());
    check_reachability(&g, 0, &r.visited).unwrap();
    check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
    assert!(!r.visited[3], "self-looped isolated vertex is unreachable");
}

#[test]
fn directed_cycle_traversal() {
    let n = 1000u32;
    let g = GraphBuilder::directed(n)
        .edges((0..n).map(|i| (i, (i + 1) % n)))
        .build();
    let r = run_sim(&g, 17, &DiggerBeesConfig::v2(), &h100());
    assert_eq!(r.stats.vertices_visited, n as u64);
    check_spanning_tree(&g, 17, &r.visited, &r.parent).unwrap();
}

/// The §3.6 execution example: 2 blocks × 3 warps. We check the
/// collaboration machinery engages (intra steals in block 0, an inter
/// steal activating block 1) on a graph with enough branching.
#[test]
fn section36_two_blocks_three_warps() {
    let g = db_gen_like_tree();
    let cfg = DiggerBeesConfig {
        blocks: 2,
        warps_per_block: 3,
        hot_size: 8,
        hot_cutoff: 2,
        cold_cutoff: 2,
        flush_batch: 4,
        ..Default::default()
    };
    let r = run_sim(&g, 0, &cfg, &h100());
    check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
    assert!(
        r.stats.steals_intra > 0,
        "intra-block stealing should engage"
    );
    assert!(
        r.stats.steals_inter > 0,
        "inter-block stealing should engage"
    );
    assert!(
        r.stats.tasks_per_block.iter().all(|&t| t > 0),
        "both blocks should work"
    );
}

fn db_gen_like_tree() -> db_graph::CsrGraph {
    // Dense binary tree + extra cross edges: lots of stealable branches.
    let depth = 13u32;
    let n: u32 = (1 << depth) - 1;
    let mut b = GraphBuilder::undirected(n);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                b.edge(i, c);
            }
        }
    }
    b.build()
}

#[test]
fn one_level_stack_handles_every_graph_shape() {
    for g in [
        GraphBuilder::undirected(1).build(),
        GraphBuilder::undirected(2).edges([(0, 1)]).build(),
        db_gen_like_tree(),
    ] {
        let cfg = DiggerBeesConfig {
            stack: StackLevels::One,
            blocks: 1,
            warps_per_block: 4,
            inter_block: false,
            hot_cutoff: 4,
            cold_cutoff: 4,
            ..Default::default()
        };
        let r = run_sim(&g, 0, &cfg, &h100());
        check_reachability(&g, 0, &r.visited).unwrap();
    }
}

#[test]
fn native_star_and_path_stress() {
    let star = GraphBuilder::undirected(5000)
        .edges((1..5000).map(|i| (0, i)))
        .build();
    let path = GraphBuilder::undirected(5000)
        .edges((0..4999).map(|i| (i, i + 1)))
        .build();
    let engine = NativeEngine::new(NativeConfig::default());
    for g in [star, path] {
        let r = engine.run(&g, 0);
        check_reachability(&g, 0, &r.visited).unwrap();
        check_spanning_tree(&g, 0, &r.visited, &r.parent).unwrap();
        assert_eq!(r.stats.vertices_visited, 5000);
    }
}

#[test]
fn adversarial_cutoffs_still_correct() {
    let g = db_gen_like_tree();
    for (hot, cold) in [(2u32, 2u32), (127, 126), (4, 128)] {
        let cfg = DiggerBeesConfig {
            blocks: 3,
            warps_per_block: 3,
            hot_cutoff: hot,
            cold_cutoff: cold,
            ..Default::default()
        };
        cfg.validate();
        let r = run_sim(&g, 0, &cfg, &h100());
        check_reachability(&g, 0, &r.visited).unwrap();
    }
}

#[test]
fn zero_degree_root() {
    let g = GraphBuilder::undirected(3).edges([(1, 2)]).build();
    let r = run_sim(&g, 0, &DiggerBeesConfig::v2(), &h100());
    assert_eq!(r.stats.vertices_visited, 1);
    assert!(r.visited[0] && !r.visited[1]);
    let native = NativeEngine::new(NativeConfig::default()).run(&g, 0);
    assert_eq!(native.visited, r.visited);
}
