//! The deterministic fault injector: evaluates a [`FaultPlan`] at named
//! injection sites and records every strike in an injection log.
//!
//! Determinism contract: probability draws come from a counter-free
//! splitmix64 hash over `(seed, rule index, site, key)`, where the key
//! is the sim's per-site check counter (the DES makes check order
//! reproducible) or serve's `(request id, attempt)` pair (so thread
//! interleaving cannot change which requests are struck). Two runs
//! under the same plan therefore produce the same injection decisions;
//! the sim's log is identical line-for-line, serve's is identical as a
//! sorted multiset (worker indices are scheduling-dependent and are
//! excluded from serve log lines).

use crate::plan::{CkptPhaseKind, Domain, FaultKind, FaultPlan, Trigger};
use std::collections::HashSet;
use std::fmt;
use std::sync::Mutex;

/// An injection site — where in the pipeline a fault check happens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Sim: an SM dispatches a warp step.
    Dispatch,
    /// Sim: a HotRing push.
    RingPush,
    /// Sim: a HotRing pop.
    RingPop,
    /// Sim: a steal reservation/copy (intra- or inter-block).
    StealCopy,
    /// Serve: a worker is about to execute a request attempt.
    Request,
    /// Store: a pack file is about to be loaded for a `store:` corpus
    /// key (a strike flips one loaded byte; checksums must catch it).
    StoreLoad,
    /// Delta: a worker is about to run a delta-graph compaction merge
    /// (a strike aborts the merge mid-flight, modelling a crash; the
    /// epoch lifecycle must survive with no layer lost).
    Compaction,
    /// Wal: a record is about to be appended (a strike tears the frame,
    /// fails the syscall, or crashes after a durable append).
    WalAppend,
    /// Wal: an fsync is about to be issued (a strike makes it lie —
    /// report success without persisting).
    WalFsync,
    /// Wal: a checkpoint phase boundary (a strike hard-exits the
    /// process mid-protocol).
    WalCheckpoint,
}

impl Site {
    /// Stable lowercase name used in log lines.
    pub fn name(&self) -> &'static str {
        match self {
            Site::Dispatch => "dispatch",
            Site::RingPush => "ring_push",
            Site::RingPop => "ring_pop",
            Site::StealCopy => "steal_copy",
            Site::Request => "request",
            Site::StoreLoad => "store_load",
            Site::Compaction => "compaction",
            Site::WalAppend => "wal_append",
            Site::WalFsync => "wal_fsync",
            Site::WalCheckpoint => "wal_checkpoint",
        }
    }

    fn index(&self) -> u64 {
        match self {
            Site::Dispatch => 0,
            Site::RingPush => 1,
            Site::RingPop => 2,
            Site::StealCopy => 3,
            Site::Request => 4,
            Site::StoreLoad => 5,
            Site::Compaction => 6,
            Site::WalAppend => 7,
            Site::WalFsync => 8,
            Site::WalCheckpoint => 9,
        }
    }

    fn domain(&self) -> Domain {
        match self {
            Site::Request | Site::Compaction => Domain::Worker,
            Site::StoreLoad => Domain::Store,
            Site::WalAppend | Site::WalFsync | Site::WalCheckpoint => Domain::Wal,
            _ => Domain::Sm,
        }
    }
}

/// Which kinds may strike at which site — rules outside their layer
/// simply never fire (a `dropsteal:worker=…` rule is inert, not an
/// error, so one spec string can drive sim and serve together).
fn applies_at(kind: &FaultKind, site: Site) -> bool {
    match kind {
        FaultKind::Kill => {
            matches!(site, Site::Dispatch | Site::Request | Site::Compaction)
        }
        FaultKind::SlowDown { .. } => {
            matches!(site, Site::Dispatch | Site::Request)
        }
        FaultKind::Stall { .. } => matches!(
            site,
            Site::Dispatch | Site::RingPush | Site::RingPop | Site::Request
        ),
        FaultKind::CorruptResult => {
            matches!(site, Site::StealCopy | Site::Request | Site::StoreLoad)
        }
        FaultKind::DropSteal => matches!(site, Site::StealCopy),
        FaultKind::Torn | FaultKind::ShortWrite => matches!(site, Site::WalAppend),
        FaultKind::FsyncLie => matches!(site, Site::WalFsync),
        FaultKind::Crash => matches!(site, Site::WalAppend | Site::WalCheckpoint),
    }
}

/// One recorded strike.
#[derive(Debug, Clone, PartialEq)]
pub struct Injection {
    /// The site that was struck.
    pub site: Site,
    /// SM index (sim sites) or worker index (serve). Worker indices are
    /// scheduling-dependent and excluded from [`Injection::line`].
    pub unit: u32,
    /// Simulated cycle (sim sites) or request id (serve).
    pub at: u64,
    /// What struck.
    pub kind: FaultKind,
}

impl Injection {
    /// Canonical log line. Sim lines carry the SM and cycle; serve
    /// lines carry the request id only, so same-seed double runs
    /// compare equal as sorted multisets regardless of which worker
    /// picked the request up.
    pub fn line(&self) -> String {
        match self.site {
            Site::Request => format!("{} req={} {}", self.site.name(), self.at, self.kind),
            // Store and compaction strikes are keyed on the corpus-key
            // hash (worker and arrival order excluded), so double runs
            // compare equal.
            Site::StoreLoad | Site::Compaction => {
                format!("{} key={:#x} {}", self.site.name(), self.at, self.kind)
            }
            // Wal strikes are keyed on the LSN (appends) or the phase
            // index (checkpoints); there is one log per process, so no
            // unit appears and double runs compare equal verbatim.
            Site::WalAppend => format!("{} lsn={} {}", self.site.name(), self.at, self.kind),
            Site::WalFsync => format!("{} n={} {}", self.site.name(), self.at, self.kind),
            Site::WalCheckpoint => {
                let phase = match self.at {
                    0 => "pack",
                    1 => "manifest",
                    _ => "truncate",
                };
                format!("{} phase={} {}", self.site.name(), phase, self.kind)
            }
            _ => format!(
                "{} sm={} cycle={} {}",
                self.site.name(),
                self.unit,
                self.at,
                self.kind
            ),
        }
    }
}

impl fmt::Display for Injection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.line())
    }
}

#[derive(Debug, Default)]
struct InjectState {
    /// `(rule index, unit)` pairs whose one-shot `cycle=` trigger fired.
    /// Also reused (with unit 0) by the one-shot `lsn=` wal trigger.
    fired: HashSet<(usize, u32)>,
    /// Per-site deterministic draw counters (sim sites only).
    draws: [u64; 5],
    /// Deterministic draw counter for probabilistic wal-fsync strikes.
    wal_fsync_draws: u64,
    log: Vec<Injection>,
}

/// Evaluates a [`FaultPlan`] and keeps the injection log.
///
/// Thread-safe: serve workers share one injector behind an `Arc`; the
/// sim owns one per run. All decisions are pure functions of the plan,
/// the seed, and deterministic keys — never of wall-clock time.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    state: Mutex<InjectState>,
}

impl Injector {
    /// Wraps a plan. An empty plan yields an injector that never fires.
    pub fn new(plan: FaultPlan) -> Injector {
        Injector {
            plan,
            state: Mutex::new(InjectState::default()),
        }
    }

    /// The wrapped plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Sim-side check: should a fault strike `site` on SM `sm` at
    /// simulated cycle `cycle`? The first matching rule wins. Strikes
    /// are appended to the log.
    pub fn check(&self, site: Site, sm: u32, cycle: u64) -> Option<FaultKind> {
        debug_assert_ne!(site, Site::Request, "use check_request for serve");
        debug_assert_ne!(site, Site::StoreLoad, "use check_store for pack loads");
        if self.plan.rules.is_empty() {
            return None;
        }
        let mut st = self.lock();
        // Every check at a probabilistic site consumes one draw even if
        // no rule fires, so rule ordering cannot alias streams.
        let draw_key = st.draws[site.index() as usize];
        st.draws[site.index() as usize] += 1;
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.target.domain != site.domain() || !applies_at(&rule.kind, site) {
                continue;
            }
            if let Some(u) = rule.target.unit {
                if u != sm {
                    continue;
                }
            }
            let fires = match rule.trigger {
                Trigger::AtCycle(c) => cycle >= c && st.fired.insert((i, sm)),
                Trigger::OnRequest(_)
                | Trigger::OnCompaction
                | Trigger::AtLsn(_)
                | Trigger::AtCkpt(_) => false,
                Trigger::Prob(p) => self.bernoulli(i, site, draw_key, p),
                Trigger::Always => true,
            };
            if fires {
                let inj = Injection {
                    site,
                    unit: sm,
                    at: cycle,
                    kind: rule.kind,
                };
                st.log.push(inj);
                return Some(rule.kind);
            }
        }
        None
    }

    /// Serve-side check: should a fault strike the execution of request
    /// `req_id` (attempt `attempt`, 0-based) on worker `worker`?
    /// Decisions are keyed on `(req_id, attempt)`, never on the worker
    /// or on arrival order, so they are identical across double runs.
    /// `req=` triggers spare retries (attempt > 0): a request killed on
    /// first execution demonstrably recovers through the retry path.
    pub fn check_request(&self, worker: u32, req_id: u64, attempt: u32) -> Option<FaultKind> {
        if self.plan.rules.is_empty() {
            return None;
        }
        let mut st = self.lock();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.target.domain != Domain::Worker || !applies_at(&rule.kind, Site::Request) {
                continue;
            }
            if let Some(u) = rule.target.unit {
                if u != worker {
                    continue;
                }
            }
            let fires = match rule.trigger {
                Trigger::AtCycle(_)
                | Trigger::OnCompaction
                | Trigger::AtLsn(_)
                | Trigger::AtCkpt(_) => false,
                Trigger::OnRequest(id) => req_id == id && attempt == 0,
                Trigger::Prob(p) => {
                    self.bernoulli(i, Site::Request, (req_id << 8) | attempt as u64, p)
                }
                Trigger::Always => true,
            };
            if fires {
                let inj = Injection {
                    site: Site::Request,
                    unit: worker,
                    at: req_id,
                    kind: rule.kind,
                };
                st.log.push(inj);
                return Some(rule.kind);
            }
        }
        None
    }

    /// Store-side check: should the pack load for corpus key `key`
    /// (attempt `attempt` — loads are re-tried when a cached store is
    /// evicted and rebuilt) be corrupted? Decisions are keyed on the
    /// key's hash, never on worker or arrival order, so double runs
    /// strike the same loads. On a strike, returns the deterministic
    /// corruption seed to feed `db-store`'s corrupt-load path.
    pub fn check_store(&self, key: &str, attempt: u64) -> Option<u64> {
        if self.plan.rules.is_empty() {
            return None;
        }
        let key_hash = fnv1a(key) ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut st = self.lock();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.target.domain != Domain::Store || !applies_at(&rule.kind, Site::StoreLoad) {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::AtCycle(_)
                | Trigger::OnRequest(_)
                | Trigger::OnCompaction
                | Trigger::AtLsn(_)
                | Trigger::AtCkpt(_) => false,
                Trigger::Prob(p) => self.bernoulli(i, Site::StoreLoad, key_hash, p),
                Trigger::Always => true,
            };
            if fires {
                st.log.push(Injection {
                    site: Site::StoreLoad,
                    unit: 0,
                    at: key_hash,
                    kind: rule.kind,
                });
                // The corruption seed is itself deterministic in (plan
                // seed, key, attempt): same strike, same flipped byte.
                return Some(
                    self.plan
                        .seed
                        .wrapping_mul(0x2545_f491_4f6c_dd1d)
                        .wrapping_add(key_hash)
                        | 1,
                );
            }
        }
        None
    }

    /// Delta-side check: should the `count`-th compaction attempt for
    /// delta corpus `key` be struck? Decisions are keyed on
    /// `(key hash, attempt count)`, never on which worker triggered the
    /// compaction or on arrival order, so double runs strike the same
    /// attempts. Only `Kill` rules apply (a strike aborts the merge);
    /// `@compaction`, `@always`, and `@p=` triggers can all fire here.
    pub fn check_compaction(&self, key: &str, count: u64) -> Option<FaultKind> {
        if self.plan.rules.is_empty() {
            return None;
        }
        let key_hash = fnv1a(key) ^ count.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut st = self.lock();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.target.domain != Domain::Worker || !applies_at(&rule.kind, Site::Compaction) {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::AtCycle(_)
                | Trigger::OnRequest(_)
                | Trigger::AtLsn(_)
                | Trigger::AtCkpt(_) => false,
                Trigger::OnCompaction | Trigger::Always => true,
                Trigger::Prob(p) => self.bernoulli(i, Site::Compaction, key_hash, p),
            };
            if fires {
                st.log.push(Injection {
                    site: Site::Compaction,
                    unit: 0,
                    at: key_hash,
                    kind: rule.kind,
                });
                return Some(rule.kind);
            }
        }
        None
    }

    /// Storage-side check: should the WAL append carrying `lsn` be
    /// struck? `lsn=` triggers are one-shot (a rejected-then-retried
    /// append reuses the LSN and must not be struck twice); `p=` draws
    /// are keyed on the LSN itself, so double runs strike the same
    /// records regardless of thread interleaving.
    pub fn check_wal_append(&self, lsn: u64) -> Option<FaultKind> {
        if self.plan.rules.is_empty() {
            return None;
        }
        let mut st = self.lock();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.target.domain != Domain::Wal || !applies_at(&rule.kind, Site::WalAppend) {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::AtLsn(l) => lsn == l && st.fired.insert((i, 0)),
                Trigger::Prob(p) => self.bernoulli(i, Site::WalAppend, lsn, p),
                Trigger::Always => true,
                Trigger::AtCycle(_)
                | Trigger::OnRequest(_)
                | Trigger::OnCompaction
                | Trigger::AtCkpt(_) => false,
            };
            if fires {
                st.log.push(Injection {
                    site: Site::WalAppend,
                    unit: 0,
                    at: lsn,
                    kind: rule.kind,
                });
                return Some(rule.kind);
            }
        }
        None
    }

    /// Storage-side check: should this fsync lie (report success while
    /// persisting nothing)? Draws are keyed on a per-injector fsync
    /// counter — fsync order is deterministic under a held write gate.
    pub fn check_wal_fsync(&self) -> bool {
        if self.plan.rules.is_empty() {
            return false;
        }
        let mut st = self.lock();
        let draw_key = st.wal_fsync_draws;
        st.wal_fsync_draws += 1;
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.target.domain != Domain::Wal || !applies_at(&rule.kind, Site::WalFsync) {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::Prob(p) => self.bernoulli(i, Site::WalFsync, draw_key, p),
                Trigger::Always => true,
                Trigger::AtCycle(_)
                | Trigger::OnRequest(_)
                | Trigger::OnCompaction
                | Trigger::AtLsn(_)
                | Trigger::AtCkpt(_) => false,
            };
            if fires {
                st.log.push(Injection {
                    site: Site::WalFsync,
                    unit: 0,
                    at: draw_key,
                    kind: rule.kind,
                });
                return true;
            }
        }
        false
    }

    /// Storage-side check: should the process crash at checkpoint phase
    /// `phase`? Only `crash` rules apply; the strike is logged before
    /// returning (the caller exits the process, but the log write keeps
    /// the in-memory record consistent for tests that stub the exit).
    pub fn check_wal_ckpt(&self, phase: CkptPhaseKind) -> bool {
        if self.plan.rules.is_empty() {
            return false;
        }
        let phase_idx = match phase {
            CkptPhaseKind::Pack => 0,
            CkptPhaseKind::Manifest => 1,
            CkptPhaseKind::Truncate => 2,
        };
        let mut st = self.lock();
        for (i, rule) in self.plan.rules.iter().enumerate() {
            if rule.target.domain != Domain::Wal || !applies_at(&rule.kind, Site::WalCheckpoint) {
                continue;
            }
            let fires = match rule.trigger {
                Trigger::AtCkpt(p) => p == phase,
                Trigger::Prob(p) => self.bernoulli(i, Site::WalCheckpoint, phase_idx, p),
                Trigger::Always => true,
                Trigger::AtCycle(_)
                | Trigger::OnRequest(_)
                | Trigger::OnCompaction
                | Trigger::AtLsn(_) => false,
            };
            if fires {
                st.log.push(Injection {
                    site: Site::WalCheckpoint,
                    unit: 0,
                    at: phase_idx,
                    kind: rule.kind,
                });
                return true;
            }
        }
        false
    }

    /// Deterministic Bernoulli draw for rule `i` at `site` with `key`.
    fn bernoulli(&self, i: usize, site: Site, key: u64, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let mut x = self
            .plan
            .seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((i as u64) << 32)
            .wrapping_add(site.index().wrapping_mul(0x1000_0000_01b3))
            .wrapping_add(key.wrapping_mul(0x2545_f491_4f6c_dd1d));
        // splitmix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^= x >> 31;
        // Top 53 bits → uniform in [0, 1).
        let u = (x >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Total strikes so far.
    pub fn injected(&self) -> u64 {
        self.lock().log.len() as u64
    }

    /// Snapshot of the injection log, in strike order.
    pub fn log(&self) -> Vec<Injection> {
        self.lock().log.clone()
    }

    /// The log as canonical lines (see [`Injection::line`]). Compare
    /// verbatim for sim runs; sort first for serve runs.
    pub fn log_lines(&self) -> Vec<String> {
        self.lock().log.iter().map(Injection::line).collect()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, InjectState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// FNV-1a over the key string — the stable, order-free identity store
/// strikes are keyed on.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultRule, Target};

    fn plan(spec: &str) -> FaultPlan {
        FaultPlan::parse(spec).unwrap()
    }

    #[test]
    fn cycle_trigger_fires_once_per_unit() {
        let inj = Injector::new(plan("kill:sm=*@cycle=100"));
        assert_eq!(inj.check(Site::Dispatch, 0, 50), None);
        assert_eq!(inj.check(Site::Dispatch, 0, 100), Some(FaultKind::Kill));
        assert_eq!(inj.check(Site::Dispatch, 0, 200), None); // already fired
        assert_eq!(inj.check(Site::Dispatch, 1, 150), Some(FaultKind::Kill));
        assert_eq!(inj.injected(), 2);
    }

    #[test]
    fn targets_filter_units_and_domains() {
        let inj = Injector::new(plan("kill:sm=3@always;corrupt:worker=*@always"));
        assert_eq!(inj.check(Site::Dispatch, 2, 0), None);
        assert_eq!(inj.check(Site::Dispatch, 3, 0), Some(FaultKind::Kill));
        // Worker rules never strike sim sites, and vice versa.
        assert_eq!(inj.check(Site::StealCopy, 3, 0), None);
        assert_eq!(
            inj.check_request(0, 7, 0),
            Some(FaultKind::CorruptResult),
            "worker wildcard strikes any worker"
        );
    }

    #[test]
    fn req_trigger_spares_retries() {
        let inj = Injector::new(plan("kill:worker=*@req=5"));
        assert_eq!(inj.check_request(1, 4, 0), None);
        assert_eq!(inj.check_request(1, 5, 0), Some(FaultKind::Kill));
        assert_eq!(inj.check_request(2, 5, 1), None, "retry is spared");
    }

    #[test]
    fn prob_draws_are_deterministic_and_roughly_calibrated() {
        let a = Injector::new(plan("seed=7;corrupt:worker=*@p=0.25"));
        let b = Injector::new(plan("seed=7;corrupt:worker=*@p=0.25"));
        let mut hits = 0;
        for id in 0..4000u64 {
            let x = a.check_request(0, id, 0);
            let y = b.check_request(9, id, 0); // different worker, same decision
            assert_eq!(x.is_some(), y.is_some(), "id {id}");
            hits += x.is_some() as u32;
        }
        assert!((800..1200).contains(&hits), "p=0.25 hit {hits}/4000");
        // Different seed ⇒ a different decision set.
        let c = Injector::new(plan("seed=8;corrupt:worker=*@p=0.25"));
        for id in 0..4000u64 {
            c.check_request(0, id, 0);
        }
        assert_ne!(
            c.log_lines(),
            a.log_lines(),
            "seeds 7 and 8 made identical decisions"
        );
    }

    #[test]
    fn sim_prob_stream_is_reproducible() {
        let mk = || Injector::new(plan("seed=3;dropsteal:sm=*@p=0.5"));
        let a = mk();
        let b = mk();
        for i in 0..200 {
            let cycle = i * 17;
            assert_eq!(
                a.check(Site::StealCopy, (i % 4) as u32, cycle),
                b.check(Site::StealCopy, (i % 4) as u32, cycle)
            );
        }
        assert_eq!(a.log_lines(), b.log_lines());
        assert!(a.injected() > 0);
    }

    #[test]
    fn serve_log_lines_exclude_the_worker() {
        let inj = Injector::new(plan("kill:worker=*@req=1"));
        inj.check_request(3, 1, 0);
        assert_eq!(inj.log_lines(), vec!["request req=1 kill".to_string()]);
    }

    #[test]
    fn kinds_gate_on_their_sites() {
        // DropSteal only strikes the steal-copy site.
        let inj = Injector::new(plan("dropsteal:sm=*@always"));
        assert_eq!(inj.check(Site::Dispatch, 0, 0), None);
        assert_eq!(inj.check(Site::RingPush, 0, 0), None);
        assert_eq!(inj.check(Site::StealCopy, 0, 0), Some(FaultKind::DropSteal));
        // Stall strikes ring sites too.
        let inj = Injector::new(plan("stall=9:sm=*@always"));
        assert_eq!(
            inj.check(Site::RingPop, 0, 0),
            Some(FaultKind::Stall { cycles: 9 })
        );
    }

    #[test]
    fn store_checks_fire_deterministically_per_key() {
        let mk = || Injector::new(plan("seed=11;corrupt:store@p=0.5"));
        let a = mk();
        let b = mk();
        let mut hits = 0u32;
        for i in 0..400 {
            let key = format!("store:/data/g{i}.dbsg");
            let x = a.check_store(&key, 0);
            let y = b.check_store(&key, 0);
            assert_eq!(x, y, "key {key}");
            hits += x.is_some() as u32;
        }
        assert!((120..280).contains(&hits), "p=0.5 hit {hits}/400");
        assert_eq!(a.log_lines(), b.log_lines());
        // Same key, different attempt → independent decision stream.
        let c = mk();
        let d0 = c.check_store("store:/x.dbsg", 0);
        let d1 = c.check_store("store:/x.dbsg", 1);
        if let (Some(s0), Some(s1)) = (d0, d1) {
            assert_ne!(s0, s1, "attempts must corrupt different bytes");
        }
        // Store rules never strike other layers, and vice versa.
        let e = Injector::new(plan("corrupt:store@always;kill:worker=*@always"));
        assert_eq!(e.check(Site::Dispatch, 0, 0), None);
        assert!(e.check_store("k", 0).is_some());
        assert_eq!(e.check_request(0, 1, 0), Some(FaultKind::Kill));
        // Non-corrupt kinds are inert at the store site.
        let f = Injector::new(plan("kill:store@always"));
        assert_eq!(f.check_store("k", 0), None);
    }

    #[test]
    fn compaction_checks_fire_deterministically() {
        let mk = || Injector::new(plan("seed=5;kill:worker=*@compaction"));
        let a = mk();
        let b = mk();
        for count in 0..8u64 {
            let x = a.check_compaction("delta:path:100", count);
            assert_eq!(x, b.check_compaction("delta:path:100", count));
            assert_eq!(x, Some(FaultKind::Kill));
        }
        assert_eq!(a.log_lines(), b.log_lines());
        // The compaction trigger never strikes sim, request, or store
        // sites — writes keep flowing while compactions are killed.
        assert_eq!(a.check(Site::Dispatch, 0, 0), None);
        assert_eq!(a.check_request(0, 1, 0), None);
        assert_eq!(a.check_store("k", 0), None);
        // Probabilistic compaction strikes are keyed on (key, count).
        let c = Injector::new(plan("seed=5;kill:worker=*@p=0.5"));
        let d = Injector::new(plan("seed=5;kill:worker=*@p=0.5"));
        let mut hits = 0u32;
        for count in 0..400u64 {
            let x = c.check_compaction("delta:grid:8:8", count);
            assert_eq!(x, d.check_compaction("delta:grid:8:8", count));
            hits += x.is_some() as u32;
        }
        assert!((120..280).contains(&hits), "p=0.5 hit {hits}/400");
        // Non-kill kinds are inert at the compaction site.
        let e = Injector::new(plan("corrupt:worker=*@compaction"));
        assert_eq!(e.check_compaction("k", 0), None);
    }

    #[test]
    fn wal_append_lsn_trigger_is_one_shot() {
        let inj = Injector::new(plan("torn:wal@lsn=6"));
        assert_eq!(inj.check_wal_append(5), None);
        assert_eq!(inj.check_wal_append(6), Some(FaultKind::Torn));
        assert_eq!(
            inj.check_wal_append(6),
            None,
            "a retried append at the same LSN is spared"
        );
        assert_eq!(inj.check_wal_append(7), None);
        assert_eq!(inj.log_lines(), vec!["wal_append lsn=6 torn".to_string()]);
    }

    #[test]
    fn wal_sites_gate_kinds_and_domains() {
        // Crash applies at append and checkpoint; torn only at append.
        let inj = Injector::new(plan("crash:wal@lsn=3"));
        assert_eq!(inj.check_wal_append(3), Some(FaultKind::Crash));
        assert!(!inj.check_wal_fsync());
        // Wal rules never strike other layers, and vice versa.
        let e = Injector::new(plan("torn:wal@always;kill:worker=*@always"));
        assert_eq!(e.check(Site::Dispatch, 0, 0), None);
        assert_eq!(e.check_request(0, 1, 0), Some(FaultKind::Kill));
        assert_eq!(e.check_store("k", 0), None);
        assert_eq!(e.check_wal_append(0), Some(FaultKind::Torn));
        // A non-wal kind targeting wal is inert.
        let f = Injector::new(plan("kill:wal@always"));
        assert_eq!(f.check_wal_append(0), None);
        assert!(!f.check_wal_ckpt(CkptPhaseKind::Pack));
    }

    #[test]
    fn wal_ckpt_trigger_matches_its_phase_only() {
        let inj = Injector::new(plan("crash:wal@ckpt=manifest"));
        assert!(!inj.check_wal_ckpt(CkptPhaseKind::Pack));
        assert!(inj.check_wal_ckpt(CkptPhaseKind::Manifest));
        assert!(!inj.check_wal_ckpt(CkptPhaseKind::Truncate));
        assert_eq!(
            inj.log_lines(),
            vec!["wal_checkpoint phase=manifest crash".to_string()]
        );
        // ckpt= rules never strike the append or fsync sites.
        assert_eq!(inj.check_wal_append(0), None);
        assert!(!inj.check_wal_fsync());
    }

    #[test]
    fn wal_fsync_lies_are_deterministic() {
        let mk = || Injector::new(plan("seed=13;fsynclie:wal@p=0.5"));
        let a = mk();
        let b = mk();
        let mut hits = 0u32;
        for _ in 0..400 {
            let x = a.check_wal_fsync();
            assert_eq!(x, b.check_wal_fsync());
            hits += x as u32;
        }
        assert!((120..280).contains(&hits), "p=0.5 hit {hits}/400");
        assert_eq!(a.log_lines(), b.log_lines());
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = FaultPlan {
            seed: 0,
            rules: vec![
                FaultRule {
                    kind: FaultKind::Stall { cycles: 1 },
                    target: Target {
                        domain: Domain::Sm,
                        unit: None,
                    },
                    trigger: Trigger::Always,
                },
                FaultRule {
                    kind: FaultKind::Kill,
                    target: Target {
                        domain: Domain::Sm,
                        unit: None,
                    },
                    trigger: Trigger::Always,
                },
            ],
        };
        let inj = Injector::new(p);
        assert_eq!(
            inj.check(Site::Dispatch, 0, 0),
            Some(FaultKind::Stall { cycles: 1 })
        );
    }
}
