//! # db-fault — seeded deterministic fault plans
//!
//! Chaos tooling for the DiggerBees workspace, built on one principle:
//! **every fault is a pure function of the plan and a seed**, never of
//! wall-clock time or thread scheduling. That is what lets the chaos
//! suites assert bit-identical results and identical injection logs
//! across double runs — the same property the deterministic DES gives
//! the simulator, extended to failure itself.
//!
//! Two halves:
//!
//! * [`plan`] — the [`FaultPlan`] model (`Kill`, `Stall`, `SlowDown`,
//!   `CorruptResult`, `DropSteal` rules with SM/worker targets and
//!   cycle/request/probability triggers) and its `--faults` spec-string
//!   codec, e.g. `kill:sm=3@cycle=10000` or
//!   `seed=7;corrupt:worker=*@p=0.25`.
//! * [`inject`] — the thread-safe [`Injector`] that evaluates a plan at
//!   named [`Site`]s (sim: SM dispatch, ring push/pop, steal copy;
//!   serve: request execution) and records every strike in an
//!   injection log for cross-run comparison.
//!
//! Consumers: `db_core::sim::run_sim_faulted` (a killed SM's pending
//! work is spilled and re-stolen by survivors), the `db-serve` worker
//! pool (panic isolation, retries, circuit breaker, degradation
//! ladder), and the `diggerbees` / `serve_load` CLIs via `--faults`.

#![warn(missing_docs)]

pub mod inject;
pub mod plan;

pub use inject::{Injection, Injector, Site};
pub use plan::{CkptPhaseKind, Domain, FaultKind, FaultPlan, FaultRule, Target, Trigger};
