//! The fault-plan model and its `--faults` spec-string codec.
//!
//! A plan is a seed plus a list of rules. Each rule names a *kind* of
//! fault, a *target* (which SM or serve worker it may strike), and a
//! *trigger* (when it strikes). The textual grammar, designed to fit on
//! a command line:
//!
//! ```text
//! plan    := entry (';' entry)*
//! entry   := 'seed=' u64 | rule
//! rule    := kind ':' target '@' trigger
//! kind    := 'kill' | 'stall=' u64 | 'slow=' f64 | 'corrupt' | 'dropsteal'
//!          | 'torn' | 'shortwrite' | 'fsynclie' | 'crash'
//! target  := ('sm' | 'worker' | 'store' | 'wal') '=' (u32 | '*')
//!          | 'store' | 'wal'
//! trigger := 'cycle=' u64 | 'req=' u64 | 'p=' f64 | 'always' | 'compaction'
//!          | 'lsn=' u64 | 'ckpt=' ('pack' | 'manifest' | 'truncate')
//! ```
//!
//! Examples: `kill:sm=3@cycle=10000` (kill SM 3 at simulated cycle
//! 10 000), `corrupt:worker=*@p=0.25` (corrupt a quarter of serve
//! request executions), `seed=7;stall=500:sm=*@p=0.1`,
//! `corrupt:store@p=0.5` (flip a byte in half of the pack loads —
//! checksum verification must catch every strike; bare `store` is
//! shorthand for `store=*`). The storage fault domain targets the WAL:
//! `torn:wal@lsn=6` (tear the append of LSN 6 in half and crash),
//! `crash:wal@ckpt=manifest` (hard process exit mid manifest swap),
//! `fsynclie:wal@p=0.5` (half the fsyncs report success without
//! persisting); bare `wal` is shorthand for `wal=*`.
//!
//! [`FaultPlan`] round-trips `parse → Display → parse` exactly; floats
//! use Rust's shortest-round-trip formatting, so the property holds for
//! every representable probability and factor.

use std::fmt;

/// What a fault does when it strikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Permanently disable the target. In the sim the SM's warps stop
    /// dispatching and its pending entries must be re-stolen by
    /// survivors; in serve the worker's request execution panics
    /// (exercising panic isolation and respawn).
    Kill,
    /// Pause the target: the sim charges `cycles` idle cycles to the
    /// SM; serve sleeps `cycles` microseconds before executing.
    Stall {
        /// Stall duration (simulated cycles, or µs at the serve layer).
        cycles: u64,
    },
    /// Multiply the target SM's step costs by `factor` from the trigger
    /// onward; serve sleeps `factor` milliseconds per affected attempt.
    SlowDown {
        /// Cost multiplier (sim) / per-attempt delay in ms (serve).
        factor: f64,
    },
    /// Silent result corruption, made detectable: the sim resets stolen
    /// entry offsets (absorbed by re-scanning, result unaffected);
    /// serve replaces the attempt's response with a retryable
    /// integrity-failure error. Serve's `serial` engine is treated as
    /// the trusted reference path and is never corrupted, which is what
    /// the degradation ladder falls back to.
    CorruptResult,
    /// Drop an otherwise-successful steal at the copy site (the entries
    /// stay with the victim; the thief records a failed attempt).
    DropSteal,
    /// Storage: tear a WAL append in half — flush everything staged,
    /// write half of the struck frame, fsync, and hard-exit the
    /// process. Recovery must truncate the torn tail.
    Torn,
    /// Storage: fail a WAL append at the syscall boundary (modelling
    /// `ENOSPC`/short write) before any byte reaches the file; serve
    /// must reject the write with a typed status, not a panic.
    ShortWrite,
    /// Storage: the fsync reports success but persists nothing — the
    /// bytes stay in the modelled page cache and die with the process.
    FsyncLie,
    /// Storage: hard process exit (power loss) at a seeded point — a
    /// durable append (`@lsn=`) or a checkpoint phase (`@ckpt=`).
    Crash,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Kill => write!(f, "kill"),
            FaultKind::Stall { cycles } => write!(f, "stall={cycles}"),
            FaultKind::SlowDown { factor } => write!(f, "slow={factor}"),
            FaultKind::CorruptResult => write!(f, "corrupt"),
            FaultKind::DropSteal => write!(f, "dropsteal"),
            FaultKind::Torn => write!(f, "torn"),
            FaultKind::ShortWrite => write!(f, "shortwrite"),
            FaultKind::FsyncLie => write!(f, "fsynclie"),
            FaultKind::Crash => write!(f, "crash"),
        }
    }
}

/// Which layer a rule's target lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// A simulated SM (thread block) — sim-side sites.
    Sm,
    /// A serve worker thread — the request-execution site.
    Worker,
    /// The packed-graph store layer — the pack-load site (`db-store`).
    Store,
    /// The write-ahead-log storage layer — append, fsync, and
    /// checkpoint sites (`db-wal`).
    Wal,
}

/// Checkpoint phase names usable in `ckpt=` triggers. Mirrors
/// `db_wal::CkptPhase` without depending on that crate — the serve
/// adapter maps between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CkptPhaseKind {
    /// After the pack snapshot is written.
    Pack,
    /// Mid manifest swap (temp durable, rename pending).
    Manifest,
    /// After the manifest swap, before WAL truncation.
    Truncate,
}

impl CkptPhaseKind {
    /// Stable lowercase name, as written in fault specs.
    pub fn name(self) -> &'static str {
        match self {
            CkptPhaseKind::Pack => "pack",
            CkptPhaseKind::Manifest => "manifest",
            CkptPhaseKind::Truncate => "truncate",
        }
    }
}

/// The unit(s) a rule may strike: one SM/worker index or all of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Target {
    /// Sim SM or serve worker.
    pub domain: Domain,
    /// Specific unit index, or `None` for the `*` wildcard.
    pub unit: Option<u32>,
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = match self.domain {
            Domain::Sm => "sm",
            Domain::Worker => "worker",
            Domain::Store => "store",
            Domain::Wal => "wal",
        };
        match self.unit {
            Some(u) => write!(f, "{d}={u}"),
            None => write!(f, "{d}=*"),
        }
    }
}

/// When a rule strikes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Sim only: once per matching unit, at the first fault check at or
    /// after this simulated cycle.
    AtCycle(u64),
    /// Serve only: on the first execution attempt of the request with
    /// this id (retries of the same request are spared, so a single
    /// `req=` fault demonstrates retry recovery).
    OnRequest(u64),
    /// Bernoulli per check, drawn from a deterministic seeded stream
    /// (the sim keys draws on its event order, which the DES makes
    /// reproducible; serve keys them on `(request id, attempt)` so
    /// thread interleaving cannot change outcomes).
    Prob(f64),
    /// Every check.
    Always,
    /// Serve/delta only: at delta-graph compaction attempts (the
    /// merge hook inside `db-delta`). Never fires at sim or request
    /// sites, so a compaction rule cannot perturb the read path.
    OnCompaction,
    /// Storage only: once, at the WAL append carrying exactly this LSN.
    AtLsn(u64),
    /// Storage only: at the named checkpoint phase.
    AtCkpt(CkptPhaseKind),
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::AtCycle(c) => write!(f, "cycle={c}"),
            Trigger::OnRequest(r) => write!(f, "req={r}"),
            Trigger::Prob(p) => write!(f, "p={p}"),
            Trigger::Always => write!(f, "always"),
            Trigger::OnCompaction => write!(f, "compaction"),
            Trigger::AtLsn(l) => write!(f, "lsn={l}"),
            Trigger::AtCkpt(p) => write!(f, "ckpt={}", p.name()),
        }
    }
}

/// One fault rule: kind + target + trigger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRule {
    /// What happens.
    pub kind: FaultKind,
    /// Where it may happen.
    pub target: Target,
    /// When it happens.
    pub trigger: Trigger,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.kind, self.target, self.trigger)
    }
}

/// A complete, seeded fault plan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed of the deterministic probability streams (`p=` triggers and
    /// serve retry jitter). Two runs under the same plan and seed make
    /// identical injection decisions.
    pub seed: u64,
    /// The rules, checked in order; the first rule that fires at a
    /// given site wins that check.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses the `--faults` spec grammar (see module docs).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for entry in spec.split(';') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            if let Some(seed) = entry.strip_prefix("seed=") {
                plan.seed = seed
                    .parse::<u64>()
                    .map_err(|e| format!("bad seed '{seed}': {e}"))?;
                continue;
            }
            plan.rules.push(parse_rule(entry)?);
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.seed != 0 {
            write!(f, "seed={}", self.seed)?;
            first = false;
        }
        for r in &self.rules {
            if !first {
                write!(f, ";")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        Ok(())
    }
}

fn parse_rule(entry: &str) -> Result<FaultRule, String> {
    let (kind_s, rest) = entry
        .split_once(':')
        .ok_or_else(|| format!("rule '{entry}': expected kind:target@trigger"))?;
    let (target_s, trigger_s) = rest
        .split_once('@')
        .ok_or_else(|| format!("rule '{entry}': expected kind:target@trigger"))?;
    Ok(FaultRule {
        kind: parse_kind(kind_s.trim())?,
        target: parse_target(target_s.trim())?,
        trigger: parse_trigger(trigger_s.trim())?,
    })
}

fn parse_kind(s: &str) -> Result<FaultKind, String> {
    if let Some(c) = s.strip_prefix("stall=") {
        let cycles = c.parse::<u64>().map_err(|e| format!("stall '{c}': {e}"))?;
        return Ok(FaultKind::Stall { cycles });
    }
    if let Some(x) = s.strip_prefix("slow=") {
        let factor = parse_f64(x, "slow factor")?;
        if factor < 1.0 {
            return Err(format!("slow factor '{x}' must be >= 1"));
        }
        return Ok(FaultKind::SlowDown { factor });
    }
    match s {
        "kill" => Ok(FaultKind::Kill),
        "corrupt" => Ok(FaultKind::CorruptResult),
        "dropsteal" => Ok(FaultKind::DropSteal),
        "torn" => Ok(FaultKind::Torn),
        "shortwrite" => Ok(FaultKind::ShortWrite),
        "fsynclie" => Ok(FaultKind::FsyncLie),
        "crash" => Ok(FaultKind::Crash),
        _ => Err(format!("unknown fault kind '{s}'")),
    }
}

fn parse_target(s: &str) -> Result<Target, String> {
    // Bare `store` is shorthand for `store=*` (the store layer has no
    // natural unit index; corruption draws key on the corpus key).
    if s == "store" {
        return Ok(Target {
            domain: Domain::Store,
            unit: None,
        });
    }
    // Bare `wal` likewise: one log per serve process, no unit index.
    if s == "wal" {
        return Ok(Target {
            domain: Domain::Wal,
            unit: None,
        });
    }
    let (d, u) = s
        .split_once('=')
        .ok_or_else(|| format!("target '{s}': expected sm=N|sm=*|worker=N|worker=*|store|wal"))?;
    let domain = match d {
        "sm" => Domain::Sm,
        "worker" => Domain::Worker,
        "store" => Domain::Store,
        "wal" => Domain::Wal,
        _ => return Err(format!("unknown target domain '{d}'")),
    };
    let unit = if u == "*" {
        None
    } else {
        Some(u.parse::<u32>().map_err(|e| format!("target '{s}': {e}"))?)
    };
    Ok(Target { domain, unit })
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    if let Some(c) = s.strip_prefix("cycle=") {
        return Ok(Trigger::AtCycle(
            c.parse::<u64>().map_err(|e| format!("cycle '{c}': {e}"))?,
        ));
    }
    if let Some(r) = s.strip_prefix("req=") {
        return Ok(Trigger::OnRequest(
            r.parse::<u64>().map_err(|e| format!("req '{r}': {e}"))?,
        ));
    }
    if let Some(p) = s.strip_prefix("p=") {
        let p = parse_f64(p, "probability")?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("probability {p} out of [0, 1]"));
        }
        return Ok(Trigger::Prob(p));
    }
    if let Some(l) = s.strip_prefix("lsn=") {
        return Ok(Trigger::AtLsn(
            l.parse::<u64>().map_err(|e| format!("lsn '{l}': {e}"))?,
        ));
    }
    if let Some(p) = s.strip_prefix("ckpt=") {
        let phase = match p {
            "pack" => CkptPhaseKind::Pack,
            "manifest" => CkptPhaseKind::Manifest,
            "truncate" => CkptPhaseKind::Truncate,
            _ => return Err(format!("unknown checkpoint phase '{p}'")),
        };
        return Ok(Trigger::AtCkpt(phase));
    }
    if s == "always" {
        return Ok(Trigger::Always);
    }
    if s == "compaction" {
        return Ok(Trigger::OnCompaction);
    }
    Err(format!("unknown trigger '{s}'"))
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    let v = s
        .parse::<f64>()
        .map_err(|e| format!("bad {what} '{s}': {e}"))?;
    if !v.is_finite() {
        return Err(format!("{what} '{s}' is not finite"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_readme_example() {
        let p = FaultPlan::parse("kill:sm=3@cycle=10000").unwrap();
        assert_eq!(p.seed, 0);
        assert_eq!(
            p.rules,
            vec![FaultRule {
                kind: FaultKind::Kill,
                target: Target {
                    domain: Domain::Sm,
                    unit: Some(3),
                },
                trigger: Trigger::AtCycle(10000),
            }]
        );
    }

    #[test]
    fn parses_every_kind_target_trigger() {
        let spec = "seed=42;kill:sm=*@cycle=5;stall=100:worker=2@req=7;\
                    slow=2.5:sm=0@always;corrupt:worker=*@p=0.25;dropsteal:sm=1@p=1";
        let p = FaultPlan::parse(spec).unwrap();
        assert_eq!(p.seed, 42);
        assert_eq!(p.rules.len(), 5);
        assert_eq!(p.rules[2].kind, FaultKind::SlowDown { factor: 2.5 });
        assert_eq!(p.rules[3].trigger, Trigger::Prob(0.25));
    }

    #[test]
    fn display_round_trips() {
        for spec in [
            "kill:sm=3@cycle=10000",
            "seed=9;corrupt:worker=*@p=0.125;stall=64:sm=*@p=0.5",
            "dropsteal:sm=*@always;slow=4:sm=2@cycle=100",
            "kill:worker=*@compaction",
            "",
        ] {
            let p = FaultPlan::parse(spec).unwrap();
            let shown = p.to_string();
            let back = FaultPlan::parse(&shown).unwrap();
            assert_eq!(back, p, "spec '{spec}' → '{shown}'");
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "kill",
            "kill:sm=3",
            "kill:sm3@cycle=1",
            "explode:sm=1@always",
            "kill:gpu=1@always",
            "kill:sm=1@sometimes",
            "corrupt:sm=1@p=1.5",
            "slow=0.5:sm=1@always",
            "stall=abc:sm=1@always",
            "seed=xyz",
            "kill:sm=-1@always",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn store_target_parses_and_round_trips() {
        let p = FaultPlan::parse("corrupt:store@p=0.5").unwrap();
        assert_eq!(
            p.rules,
            vec![FaultRule {
                kind: FaultKind::CorruptResult,
                target: Target {
                    domain: Domain::Store,
                    unit: None,
                },
                trigger: Trigger::Prob(0.5),
            }]
        );
        // Bare `store` normalizes to `store=*` and round-trips.
        let shown = p.to_string();
        assert_eq!(shown, "corrupt:store=*@p=0.5");
        assert_eq!(FaultPlan::parse(&shown).unwrap(), p);
        assert!(FaultPlan::parse("corrupt:store=2@always").is_ok());
    }

    #[test]
    fn compaction_trigger_parses() {
        let p = FaultPlan::parse("kill:worker=*@compaction").unwrap();
        assert_eq!(p.rules[0].trigger, Trigger::OnCompaction);
        assert_eq!(p.rules[0].kind, FaultKind::Kill);
        assert_eq!(p.to_string(), "kill:worker=*@compaction");
    }

    #[test]
    fn wal_storage_grammar_parses_and_round_trips() {
        let p = FaultPlan::parse(
            "torn:wal@lsn=6;shortwrite:wal@lsn=2;fsynclie:wal@p=0.5;\
             crash:wal@ckpt=manifest;crash:wal@lsn=11",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 5);
        assert_eq!(p.rules[0].kind, FaultKind::Torn);
        assert_eq!(p.rules[0].trigger, Trigger::AtLsn(6));
        assert_eq!(p.rules[0].target.domain, Domain::Wal);
        assert_eq!(p.rules[0].target.unit, None, "bare wal is wal=*");
        assert_eq!(p.rules[1].kind, FaultKind::ShortWrite);
        assert_eq!(p.rules[2].kind, FaultKind::FsyncLie);
        assert_eq!(p.rules[3].trigger, Trigger::AtCkpt(CkptPhaseKind::Manifest));
        assert_eq!(p.rules[4].kind, FaultKind::Crash);
        // Round-trip: bare `wal` normalizes to `wal=*`.
        let shown = p.to_string();
        assert!(shown.contains("torn:wal=*@lsn=6"), "{shown}");
        assert_eq!(FaultPlan::parse(&shown).unwrap(), p);
        for phase in ["pack", "manifest", "truncate"] {
            let spec = format!("crash:wal@ckpt={phase}");
            let plan = FaultPlan::parse(&spec).unwrap();
            assert_eq!(plan.to_string(), format!("crash:wal=*@ckpt={phase}"));
        }
    }

    #[test]
    fn wal_grammar_rejects_bad_specs() {
        for bad in [
            "torn:wal@lsn=abc",
            "crash:wal@ckpt=rename",
            "crash:wal@ckpt=",
            "smash:wal@lsn=1",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn whitespace_and_empty_entries_tolerated() {
        let p = FaultPlan::parse(" kill:sm=1@always ; ;seed=3 ").unwrap();
        assert_eq!(p.seed, 3);
        assert_eq!(p.rules.len(), 1);
    }
}
