//! Property tests for the fault-plan codec and injector determinism.
//!
//! (a) of the ISSUE's property-test satellite: arbitrary plans
//! round-trip parse → Display → parse exactly, including float
//! probabilities/factors (Rust's shortest-round-trip float formatting
//! carries the weight there).

use db_fault::{Domain, FaultKind, FaultPlan, FaultRule, Injector, Site, Target, Trigger};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = FaultKind> {
    (0u8..5, 0u64..1_000_000, 10u32..1000).prop_map(|(sel, cycles, x)| match sel {
        0 => FaultKind::Kill,
        1 => FaultKind::Stall { cycles },
        2 => FaultKind::SlowDown {
            factor: 1.0 + x as f64 / 10.0,
        },
        3 => FaultKind::CorruptResult,
        _ => FaultKind::DropSteal,
    })
}

fn arb_target() -> impl Strategy<Value = Target> {
    (any::<bool>(), 0u32..65).prop_map(|(sm, unit)| Target {
        domain: if sm { Domain::Sm } else { Domain::Worker },
        // 64 stands for the `*` wildcard.
        unit: (unit < 64).then_some(unit),
    })
}

fn arb_trigger() -> impl Strategy<Value = Trigger> {
    (0u8..5, 0u64..10_000_000, 0u32..1001).prop_map(|(sel, n, p)| match sel {
        0 => Trigger::AtCycle(n),
        1 => Trigger::OnRequest(n % 10_000),
        2 => Trigger::Prob(p as f64 / 1000.0),
        3 => Trigger::OnCompaction,
        _ => Trigger::Always,
    })
}

fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        proptest::collection::vec(
            (arb_kind(), arb_target(), arb_trigger()).prop_map(|(kind, target, trigger)| {
                FaultRule {
                    kind,
                    target,
                    trigger,
                }
            }),
            0..6,
        ),
    )
        .prop_map(|(seed, rules)| FaultPlan { seed, rules })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// (a) Spec strings round-trip parse → Display → parse.
    #[test]
    fn plan_round_trips_through_display(plan in arb_plan()) {
        let shown = plan.to_string();
        let back = FaultPlan::parse(&shown)
            .unwrap_or_else(|e| panic!("re-parse of '{shown}' failed: {e}"));
        prop_assert_eq!(back, plan, "spec was '{}'", shown);
    }

    /// Injector decisions depend only on plan + deterministic keys:
    /// replaying the same check sequence reproduces the same log.
    #[test]
    fn injector_replays_identically(plan in arb_plan(), checks in proptest::collection::vec((0u32..8, 0u64..100_000), 0..64)) {
        let a = Injector::new(plan.clone());
        let b = Injector::new(plan);
        for &(unit, at) in &checks {
            let site = match at % 4 {
                0 => Site::Dispatch,
                1 => Site::RingPush,
                2 => Site::RingPop,
                _ => Site::StealCopy,
            };
            prop_assert_eq!(a.check(site, unit, at), b.check(site, unit, at));
            prop_assert_eq!(
                a.check_request(unit, at, (at % 3) as u32),
                b.check_request(unit, at, (at % 3) as u32)
            );
            prop_assert_eq!(
                a.check_compaction("delta:path:10", at),
                b.check_compaction("delta:path:10", at)
            );
        }
        prop_assert_eq!(a.log_lines(), b.log_lines());
    }
}
