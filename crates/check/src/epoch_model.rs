//! Step-level model of `db-delta`'s epoch lifecycle — the
//! pin/publish/compact/reclaim protocol behind epoch-versioned graphs.
//!
//! One writer publishes mutation batches (each bumps the current epoch
//! and appends a delta layer), readers repeatedly pin the current epoch
//! and unpin it, and two compactors race to fold cold layers into the
//! base. The model keeps the protocol's moving parts and abstracts the
//! payloads away: a layer is just its epoch number, a pin is just the
//! epoch it holds.
//!
//! Compaction is transcribed in the implementation's three phases:
//! a locked *decide* (test the `compacting` flag, compute the fold
//! limit as `min(lowest pin, current)`), an unlocked *merge*, and a
//! locked *swap* that re-validates the base before installing (losing
//! the race discards the merge with zero state changes).
//!
//! Oracles:
//!
//! * **no early reclaim** — the base epoch never exceeds any active
//!   pin (a pinned reader's history must stay materializable);
//! * **single merge** — at most one compaction merge is ever in
//!   flight (the `compacting` flag's whole job);
//! * **layer contiguity** — live layers are exactly
//!   `base+1 ..= current` at every state;
//! * **no lost publish** — at quiescence the current epoch equals the
//!   number of publishes, and nothing is left pinned or mid-merge.
//!
//! [`EpochMutation`] seeds the bug classes the protocol exists to
//! prevent: folding past an active pin, dropping a publish, and
//! ignoring the `compacting` flag.

use crate::explore::{ActorId, Model, Violation};

/// A seeded lifecycle bug for the mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMutation {
    /// The compactor computes its fold limit from `current` alone,
    /// ignoring pins — a pinned reader's epoch is reclaimed under it.
    EarlyReclaim,
    /// The writer counts a publish without installing its layer or
    /// bumping the current epoch (the batch vanishes).
    LostPublish,
    /// The compactor skips the `compacting`-flag test, so two merges
    /// can run concurrently.
    DoubleCompact,
}

impl EpochMutation {
    /// Every mutation, for exhaustive mutation tests.
    pub const ALL: [EpochMutation; 3] = [
        EpochMutation::EarlyReclaim,
        EpochMutation::LostPublish,
        EpochMutation::DoubleCompact,
    ];
}

/// Configuration of one epoch-lifecycle check.
#[derive(Debug, Clone)]
pub struct EpochScenario {
    /// Batches the writer publishes.
    pub publishes: u8,
    /// Concurrent readers.
    pub readers: usize,
    /// Pin/unpin rounds per reader.
    pub reader_rounds: u8,
    /// Concurrent compactors (2 exercises the swap race).
    pub compactors: usize,
    /// Compaction attempts per compactor.
    pub compact_attempts: u8,
    /// The seeded bug, or `None` for the faithful protocol.
    pub mutation: Option<EpochMutation>,
}

impl EpochScenario {
    /// The default exhaustive config: 3 publishes, 2 readers × 2
    /// rounds, 2 compactors × 2 attempts — small enough to explore
    /// fully, large enough that pins at distinct epochs, folds, and
    /// the swap race all occur.
    pub fn small() -> Self {
        EpochScenario {
            publishes: 3,
            readers: 2,
            reader_rounds: 2,
            compactors: 2,
            compact_attempts: 2,
            mutation: None,
        }
    }

    /// Same scenario with a seeded bug.
    pub fn with_mutation(mut self, m: EpochMutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

/// Reader program counter.
#[derive(Debug, Clone, Copy, Hash, PartialEq, Eq)]
enum ReaderPc {
    /// Between rounds; next step pins the current epoch.
    Idle {
        remaining: u8,
    },
    /// Holding a pin; next step releases it.
    Pinned {
        remaining: u8,
    },
    Exit,
}

/// Compactor program counter.
#[derive(Debug, Clone, Copy, Hash, PartialEq, Eq)]
enum CompactorPc {
    /// Next step runs the locked decide phase.
    Idle {
        remaining: u8,
    },
    /// Mid-merge (outside the lock); next step runs the locked swap.
    Merging {
        remaining: u8,
        /// Fold limit decided under the lock.
        limit: u8,
        /// Base observed at decide time; the swap re-validates it.
        seen_base: u8,
    },
    Exit,
}

/// Full system state. Epochs fit in `u8` (the scenarios are tiny).
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
pub struct EpochState {
    /// Current (latest published) epoch.
    current: u8,
    /// Epoch the frozen base represents; layers below it are reclaimed.
    base: u8,
    /// Live layer epochs, always sorted ascending.
    layers: Vec<u8>,
    /// Per-reader pinned epoch.
    pins: Vec<Option<u8>>,
    /// Set between decide and swap (the implementation's flag).
    compacting: bool,
    /// Ghost: merges currently in flight (single-merge oracle).
    merges_in_flight: u8,
    /// Ghost: publishes the writer believes it made.
    publishes: u8,
    writer_remaining: u8,
    readers: Vec<ReaderPc>,
    compactors: Vec<CompactorPc>,
}

/// The checkable model. Actor order: writer, then readers, then
/// compactors.
#[derive(Debug, Clone)]
pub struct EpochModel {
    /// The scenario being checked.
    pub scenario: EpochScenario,
}

impl EpochModel {
    /// Creates the model for a scenario.
    pub fn new(scenario: EpochScenario) -> Self {
        EpochModel { scenario }
    }

    fn mutation(&self) -> Option<EpochMutation> {
        self.scenario.mutation
    }

    /// Fold limit as decided under the lock: `min(lowest pin,
    /// current)` — or, mutated, `current` with pins ignored.
    fn fold_limit(&self, s: &EpochState) -> u8 {
        if self.mutation() == Some(EpochMutation::EarlyReclaim) {
            return s.current;
        }
        s.pins
            .iter()
            .flatten()
            .copied()
            .min()
            .map_or(s.current, |p| p.min(s.current))
    }
}

impl Model for EpochModel {
    type State = EpochState;

    fn initial(&self) -> EpochState {
        EpochState {
            current: 0,
            base: 0,
            layers: Vec::new(),
            pins: vec![None; self.scenario.readers],
            compacting: false,
            merges_in_flight: 0,
            publishes: 0,
            writer_remaining: self.scenario.publishes,
            readers: vec![
                ReaderPc::Idle {
                    remaining: self.scenario.reader_rounds,
                };
                self.scenario.readers
            ],
            compactors: vec![
                CompactorPc::Idle {
                    remaining: self.scenario.compact_attempts,
                };
                self.scenario.compactors
            ],
        }
    }

    fn actors(&self) -> usize {
        1 + self.scenario.readers + self.scenario.compactors
    }

    fn done(&self, s: &EpochState, a: ActorId) -> bool {
        if a == 0 {
            return s.writer_remaining == 0;
        }
        let a = a - 1;
        if a < self.scenario.readers {
            return s.readers[a] == ReaderPc::Exit;
        }
        s.compactors[a - self.scenario.readers] == CompactorPc::Exit
    }

    fn enabled(&self, s: &EpochState, a: ActorId) -> bool {
        !self.done(s, a)
    }

    fn is_local(&self, _s: &EpochState, _a: ActorId) -> bool {
        false
    }

    fn step(&self, s: &EpochState, a: ActorId) -> Result<EpochState, Violation> {
        let mut s = s.clone();
        if a == 0 {
            // Writer: one publish per step, transcribing the one-mutex
            // publish in `DeltaGraph::mutate`.
            s.publishes += 1;
            if self.mutation() != Some(EpochMutation::LostPublish) {
                s.current += 1;
                s.layers.push(s.current);
            }
            s.writer_remaining -= 1;
            return Ok(s);
        }
        let idx = a - 1;
        if idx < self.scenario.readers {
            s.readers[idx] = match s.readers[idx] {
                ReaderPc::Idle { remaining } => {
                    s.pins[idx] = Some(s.current);
                    ReaderPc::Pinned { remaining }
                }
                ReaderPc::Pinned { remaining } => {
                    s.pins[idx] = None;
                    if remaining > 1 {
                        ReaderPc::Idle {
                            remaining: remaining - 1,
                        }
                    } else {
                        ReaderPc::Exit
                    }
                }
                ReaderPc::Exit => unreachable!("stepping an exited reader"),
            };
            return Ok(s);
        }
        let c = idx - self.scenario.readers;
        match s.compactors[c] {
            CompactorPc::Idle { remaining } => {
                // Locked decide phase.
                let flag_blocks =
                    s.compacting && self.mutation() != Some(EpochMutation::DoubleCompact);
                let limit = self.fold_limit(&s);
                let foldable = s.layers.iter().any(|&e| e <= limit);
                if flag_blocks || !foldable {
                    // Nothing to do (or another merge owns the flag):
                    // the attempt is consumed with zero state changes.
                    s.compactors[c] = if remaining > 1 {
                        CompactorPc::Idle {
                            remaining: remaining - 1,
                        }
                    } else {
                        CompactorPc::Exit
                    };
                } else {
                    s.compacting = true;
                    s.merges_in_flight += 1;
                    s.compactors[c] = CompactorPc::Merging {
                        remaining,
                        limit,
                        seen_base: s.base,
                    };
                }
            }
            CompactorPc::Merging {
                remaining,
                limit,
                seen_base,
            } => {
                // Locked swap phase: install only if the base is still
                // the one the merge started from.
                s.merges_in_flight -= 1;
                s.compacting = false;
                if s.base == seen_base {
                    s.base = limit;
                    s.layers.retain(|&e| e > limit);
                }
                s.compactors[c] = if remaining > 1 {
                    CompactorPc::Idle {
                        remaining: remaining - 1,
                    }
                } else {
                    CompactorPc::Exit
                };
            }
            CompactorPc::Exit => unreachable!("stepping an exited compactor"),
        }
        Ok(s)
    }

    fn check(&self, s: &EpochState) -> Result<(), Violation> {
        for (r, pin) in s.pins.iter().enumerate() {
            if let Some(p) = pin {
                if s.base > *p {
                    return Err(Violation::new(
                        "early-reclaim",
                        format!("base advanced to {} past reader {r}'s pin at {p}", s.base),
                    ));
                }
            }
        }
        if s.merges_in_flight > 1 {
            return Err(Violation::new(
                "double-compact",
                format!("{} merges in flight", s.merges_in_flight),
            ));
        }
        let expect: Vec<u8> = (s.base + 1..=s.current).collect();
        if s.layers != expect {
            return Err(Violation::new(
                "layer-gap",
                format!(
                    "layers {:?} not contiguous over base {}..current {}",
                    s.layers, s.base, s.current
                ),
            ));
        }
        Ok(())
    }

    fn check_final(&self, s: &EpochState) -> Result<(), Violation> {
        if s.current != s.publishes {
            return Err(Violation::new(
                "lost-publish",
                format!(
                    "writer made {} publishes but the current epoch is {}",
                    s.publishes, s.current
                ),
            ));
        }
        if s.pins.iter().any(Option::is_some) {
            return Err(Violation::new(
                "leaked-pin",
                "a pin outlived its reader".to_string(),
            ));
        }
        if s.compacting || s.merges_in_flight != 0 {
            return Err(Violation::new(
                "stuck-compaction",
                "compaction state leaked past quiescence".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, Outcome};

    #[test]
    fn faithful_lifecycle_has_no_counterexample() {
        let model = EpochModel::new(EpochScenario::small());
        match Explorer::default().run(&model) {
            Outcome::Pass(stats) => {
                assert!(stats.states > 100, "exploration too shallow: {stats:?}");
                assert!(stats.final_states > 0);
            }
            other => panic!("faithful model must pass, got {other:?}"),
        }
    }

    #[test]
    fn every_mutation_is_caught_and_replays() {
        for m in EpochMutation::ALL {
            let model = EpochModel::new(EpochScenario::small().with_mutation(m));
            match Explorer::default().run(&model) {
                Outcome::Fail {
                    violation,
                    schedule,
                    ..
                } => {
                    let expected = match m {
                        EpochMutation::EarlyReclaim => "early-reclaim",
                        EpochMutation::LostPublish => "lost-publish",
                        EpochMutation::DoubleCompact => "double-compact",
                    };
                    assert_eq!(violation.oracle, expected, "{m:?}");
                    // The returned schedule must reproduce the same
                    // violation deterministically.
                    let replayed = replay(&model, &schedule)
                        .expect_err("replaying a failing schedule must re-fail");
                    assert_eq!(replayed.oracle, expected, "{m:?} replay");
                }
                other => panic!("{m:?} must be caught, got {other:?}"),
            }
        }
    }

    #[test]
    fn early_reclaim_needs_an_active_pin_to_fire() {
        // With zero readers there is no pin to reclaim under: the
        // mutated fold limit coincides with the faithful one and the
        // model passes — the oracle is about pins, not folding per se.
        let mut sc = EpochScenario::small().with_mutation(EpochMutation::EarlyReclaim);
        sc.readers = 0;
        let model = EpochModel::new(sc);
        assert!(
            matches!(Explorer::default().run(&model), Outcome::Pass(_)),
            "no pins, no early reclaim"
        );
    }
}
