//! Step-level model of the lock-free HotRing protocol
//! (`db_core::lockfree::StampedRing`) for the bounded model checker.
//!
//! Every atomic access of the real implementation is one explorer step,
//! in the same order the code performs them:
//!
//! * **owner push** — load control; CAS `head+1`; spin until the slot
//!   stamp is `writable(h)`; store the payload; store `readable(h)`.
//! * **owner pop** — load control; CAS `head-1`; spin until
//!   `readable(p)`; load the payload; store `writable(p)`.
//! * **thief steal** — load control; CAS `tail+take` (bounded retries,
//!   min-cutoff check); per claimed slot: spin until `readable(p)`,
//!   load the payload, store `writable(p + cap)` for the next lap.
//!
//! The model is validated against the real ring by the differential
//! tests in `tests/differential.rs` (same op sequence, same results),
//! and [`RingMutation`] seeds the protocol bugs the checker must catch:
//! skipping a CAS (blind store), publishing the stamp before the
//! payload, and reading a claimed slot without waiting for its stamp.
//!
//! Oracles:
//!
//! * every pushed value is consumed **exactly once** (no lost, no
//!   duplicated block — covers steal-vs-pop mutual exclusion);
//! * no consumption of an unpublished slot (stale/garbage payload);
//! * `tail` is monotone and `head - tail` never exceeds the capacity;
//! * quiescence: the drained ring ends empty with every slot stamp
//!   parked at the writable value for its next lap.

use crate::explore::{ActorId, Model, Violation};

/// Sentinel payload meaning "this slot was never published this lap".
const STALE: u32 = u32::MAX;

#[inline]
fn pack(head: u32, tail: u32) -> u64 {
    ((head as u64) << 32) | tail as u64
}

#[inline]
fn unpack(c: u64) -> (u32, u32) {
    ((c >> 32) as u32, c as u32)
}

#[inline]
fn writable(p: u32) -> u64 {
    (p as u64) << 1
}

#[inline]
fn readable(p: u32) -> u64 {
    ((p as u64) << 1) | 1
}

/// A seeded protocol bug for the mutation tests: each one removes or
/// reorders a single synchronization step of the faithful protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingMutation {
    /// The thief reserves its batch with a plain load+store instead of
    /// a CAS on the control word (lost tail update → double steal).
    ThiefSkipCas,
    /// The owner advances `head` with a plain load+store instead of a
    /// CAS (clobbers a concurrent thief's tail reservation).
    OwnerPushSkipCas,
    /// The owner publishes the slot stamp *before* storing the payload
    /// (a consumer can read the previous lap's value).
    PublishStampBeforeData,
    /// The thief reads a claimed slot without spinning on its stamp
    /// (reads a slot the owner has claimed but not yet published).
    ThiefSkipStampWait,
}

impl RingMutation {
    /// Every mutation, for exhaustive mutation tests.
    pub const ALL: [RingMutation; 4] = [
        RingMutation::ThiefSkipCas,
        RingMutation::OwnerPushSkipCas,
        RingMutation::PublishStampBeforeData,
        RingMutation::ThiefSkipStampWait,
    ];
}

/// Configuration of one ring-model check: the owner pushes
/// `values` entries (popping one to make room whenever the ring is
/// full, then draining), while `thieves` thieves each run
/// `rounds` bounded `take_from_tail(k, min, attempts)` calls.
#[derive(Debug, Clone)]
pub struct RingScenario {
    /// Ring capacity (2–4 keeps the state space tiny).
    pub capacity: u32,
    /// Values the owner pushes (`0..values`).
    pub values: u32,
    /// Number of thief actors.
    pub thieves: usize,
    /// `k` of each steal call.
    pub steal_k: u32,
    /// `min` cutoff of each steal call.
    pub steal_min: u32,
    /// CAS retry budget per steal call.
    pub steal_attempts: u32,
    /// Steal calls per thief.
    pub rounds: u32,
    /// The seeded bug, or `None` for the faithful protocol.
    pub mutation: Option<RingMutation>,
}

impl RingScenario {
    /// The default tiny config: capacity 3, 5 values, 2 thieves.
    pub fn small() -> Self {
        RingScenario {
            capacity: 3,
            values: 5,
            thieves: 2,
            steal_k: 2,
            steal_min: 1,
            steal_attempts: 2,
            rounds: 2,
            mutation: None,
        }
    }

    /// Same scenario with a seeded bug.
    pub fn with_mutation(mut self, m: RingMutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

/// Owner program counter. The owner pushes all values in order; a full
/// ring diverts it through one pop (pop-process-push, as the engine
/// does around a flush); after the last push it drains the ring.
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
enum OwnerPc {
    /// Decide the next op from `next_value` / drain phase.
    Decide,
    PushLoad {
        v: u32,
    },
    PushCas {
        v: u32,
        c: u64,
    },
    PushWaitSlot {
        v: u32,
        h: u32,
    },
    PushStoreData {
        v: u32,
        h: u32,
    },
    PushStoreStamp {
        v: u32,
        h: u32,
    },
    /// `resume` is the value whose push found the ring full.
    PopLoad {
        resume: Option<u32>,
    },
    PopCas {
        c: u64,
        resume: Option<u32>,
    },
    PopWait {
        p: u32,
        resume: Option<u32>,
    },
    PopRead {
        p: u32,
        resume: Option<u32>,
    },
    PopStoreStamp {
        p: u32,
        resume: Option<u32>,
    },
    Done,
}

/// Thief program counter for bounded `take_from_tail` rounds.
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
enum ThiefPc {
    /// Start of one steal call; `rounds` calls remain.
    Load {
        rounds: u32,
        attempts: u32,
    },
    Cas {
        rounds: u32,
        attempts: u32,
        c: u64,
        take: u32,
    },
    WaitSlot {
        rounds: u32,
        t: u32,
        i: u32,
        take: u32,
    },
    ReadSlot {
        rounds: u32,
        t: u32,
        i: u32,
        take: u32,
    },
    StoreStamp {
        rounds: u32,
        t: u32,
        i: u32,
        take: u32,
    },
    Done,
}

/// Full system state: the ring's three shared locations, every actor's
/// PC, and the ghost consumption ledger.
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct RingState {
    control: u64,
    stamps: Vec<u64>,
    data: Vec<u32>,
    owner: OwnerPc,
    next_value: u32,
    thieves: Vec<ThiefPc>,
    /// Ghost: consumption count per pushed value.
    consumed: Vec<u8>,
    /// Ghost: highest tail ever written (monotonicity oracle).
    tail_floor: u32,
}

/// The checkable model. Owner is actor 0; thieves are 1..=thieves.
#[derive(Debug, Clone)]
pub struct RingModel {
    /// The scenario being checked.
    pub scenario: RingScenario,
}

impl RingModel {
    /// Creates the model for a scenario.
    pub fn new(scenario: RingScenario) -> Self {
        RingModel { scenario }
    }

    #[inline]
    fn slot(&self, p: u32) -> usize {
        (p % self.scenario.capacity) as usize
    }

    fn consume(&self, s: &mut RingState, value: u32, by: &str) -> Result<(), Violation> {
        if value == STALE || value >= self.scenario.values {
            return Err(Violation::new(
                "unpublished-read",
                format!("{by} consumed unpublished slot payload {value:#x}"),
            ));
        }
        s.consumed[value as usize] += 1;
        if s.consumed[value as usize] > 1 {
            return Err(Violation::new(
                "duplicated-block",
                format!("value {value} consumed twice ({by} last)"),
            ));
        }
        Ok(())
    }

    /// Writes the control word, enforcing the tail-monotonicity and
    /// occupancy oracles at the write (transition-level invariants).
    fn write_control(&self, s: &mut RingState, c: u64, by: &str) -> Result<(), Violation> {
        let (h, t) = unpack(c);
        if t.wrapping_sub(s.tail_floor) > self.scenario.capacity {
            // A tail moving backwards shows up as a huge forward wrap.
            return Err(Violation::new(
                "tail-monotonicity",
                format!("{by} moved tail from {} to {t}", s.tail_floor),
            ));
        }
        if h.wrapping_sub(t) > self.scenario.capacity {
            return Err(Violation::new(
                "occupancy",
                format!("{by} left head-tail = {} > capacity", h.wrapping_sub(t)),
            ));
        }
        s.tail_floor = s.tail_floor.max(t);
        s.control = c;
        Ok(())
    }

    fn step_owner(&self, s: &RingState) -> Result<RingState, Violation> {
        let cap = self.scenario.capacity;
        let mut s = s.clone();
        match s.owner.clone() {
            OwnerPc::Decide => {
                s.owner = if s.next_value < self.scenario.values {
                    OwnerPc::PushLoad { v: s.next_value }
                } else {
                    OwnerPc::PopLoad { resume: None }
                };
            }
            OwnerPc::PushLoad { v } => {
                s.owner = OwnerPc::PushCas { v, c: s.control };
            }
            OwnerPc::PushCas { v, c } => {
                let (h, t) = unpack(c);
                if h.wrapping_sub(t) >= cap {
                    // Ring full: pop one (pop-process-push), then retry.
                    s.owner = OwnerPc::PopLoad { resume: Some(v) };
                } else if self.scenario.mutation == Some(RingMutation::OwnerPushSkipCas) {
                    // Mutation: blind store from the stale snapshot.
                    self.write_control(&mut s, pack(h.wrapping_add(1), t), "owner push (blind)")?;
                    s.owner = OwnerPc::PushWaitSlot { v, h };
                } else if s.control == c {
                    self.write_control(&mut s, pack(h.wrapping_add(1), t), "owner push")?;
                    s.owner = OwnerPc::PushWaitSlot { v, h };
                } else {
                    // CAS failed: reload.
                    s.owner = OwnerPc::PushLoad { v };
                }
            }
            OwnerPc::PushWaitSlot { v, h } => {
                debug_assert_eq!(s.stamps[self.slot(h)], writable(h));
                s.owner = if self.scenario.mutation == Some(RingMutation::PublishStampBeforeData) {
                    OwnerPc::PushStoreStamp { v, h }
                } else {
                    OwnerPc::PushStoreData { v, h }
                };
            }
            OwnerPc::PushStoreData { v, h } => {
                let sl = self.slot(h);
                s.data[sl] = v;
                s.owner = if self.scenario.mutation == Some(RingMutation::PublishStampBeforeData) {
                    // Mutated order ran the stamp store first; push done.
                    s.next_value = v + 1;
                    OwnerPc::Decide
                } else {
                    OwnerPc::PushStoreStamp { v, h }
                };
            }
            OwnerPc::PushStoreStamp { v, h } => {
                let sl = self.slot(h);
                s.stamps[sl] = readable(h);
                s.owner = if self.scenario.mutation == Some(RingMutation::PublishStampBeforeData) {
                    OwnerPc::PushStoreData { v, h }
                } else {
                    s.next_value = v + 1;
                    OwnerPc::Decide
                };
            }
            OwnerPc::PopLoad { resume } => {
                let (h, t) = unpack(s.control);
                if h == t {
                    match resume {
                        // Drain finished.
                        None => s.owner = OwnerPc::Done,
                        // Full-ring pop raced with thieves draining it:
                        // the push can proceed now.
                        Some(v) => s.owner = OwnerPc::PushLoad { v },
                    }
                } else {
                    s.owner = OwnerPc::PopCas {
                        c: s.control,
                        resume,
                    };
                }
            }
            OwnerPc::PopCas { c, resume } => {
                if s.control == c {
                    let (h, t) = unpack(c);
                    let p = h.wrapping_sub(1);
                    self.write_control(&mut s, pack(p, t), "owner pop")?;
                    s.owner = OwnerPc::PopWait { p, resume };
                } else {
                    s.owner = OwnerPc::PopLoad { resume };
                }
            }
            OwnerPc::PopWait { p, resume } => {
                debug_assert_eq!(s.stamps[self.slot(p)], readable(p));
                s.owner = OwnerPc::PopRead { p, resume };
            }
            OwnerPc::PopRead { p, resume } => {
                let value = s.data[self.slot(p)];
                self.consume(&mut s, value, "owner pop")?;
                s.owner = OwnerPc::PopStoreStamp { p, resume };
            }
            OwnerPc::PopStoreStamp { p, resume } => {
                let sl = self.slot(p);
                s.stamps[sl] = writable(p);
                s.owner = match resume {
                    None => OwnerPc::PopLoad { resume: None },
                    Some(v) => OwnerPc::PushLoad { v },
                };
            }
            OwnerPc::Done => unreachable!("stepping a done owner"),
        }
        Ok(s)
    }

    fn step_thief(&self, s: &RingState, idx: usize) -> Result<RingState, Violation> {
        let sc = &self.scenario;
        let mut s = s.clone();
        match s.thieves[idx].clone() {
            ThiefPc::Load { rounds, attempts } => {
                let c = s.control;
                let (h, t) = unpack(c);
                let avail = h.wrapping_sub(t);
                s.thieves[idx] = if avail < sc.steal_min {
                    // Under the cutoff: this call returns empty.
                    self.next_round(rounds)
                } else {
                    ThiefPc::Cas {
                        rounds,
                        attempts,
                        c,
                        take: sc.steal_k.min(avail),
                    }
                };
            }
            ThiefPc::Cas {
                rounds,
                attempts,
                c,
                take,
            } => {
                let (h, t) = unpack(c);
                let blind = sc.mutation == Some(RingMutation::ThiefSkipCas);
                if blind || s.control == c {
                    self.write_control(
                        &mut s,
                        pack(h, t.wrapping_add(take)),
                        if blind {
                            "thief steal (blind)"
                        } else {
                            "thief steal"
                        },
                    )?;
                    s.thieves[idx] = ThiefPc::WaitSlot {
                        rounds,
                        t,
                        i: 0,
                        take,
                    };
                } else if attempts > 1 {
                    s.thieves[idx] = ThiefPc::Load {
                        rounds,
                        attempts: attempts - 1,
                    };
                } else {
                    // Raced out: this call returns empty.
                    s.thieves[idx] = self.next_round(rounds);
                }
            }
            ThiefPc::WaitSlot { rounds, t, i, take } => {
                let p = t.wrapping_add(i);
                debug_assert!(
                    sc.mutation == Some(RingMutation::ThiefSkipStampWait)
                        || s.stamps[self.slot(p)] == readable(p)
                );
                s.thieves[idx] = ThiefPc::ReadSlot { rounds, t, i, take };
            }
            ThiefPc::ReadSlot { rounds, t, i, take } => {
                let p = t.wrapping_add(i);
                let value = s.data[self.slot(p)];
                self.consume(&mut s, value, "thief steal")?;
                s.thieves[idx] = ThiefPc::StoreStamp { rounds, t, i, take };
            }
            ThiefPc::StoreStamp { rounds, t, i, take } => {
                let p = t.wrapping_add(i);
                let sl = self.slot(p);
                s.stamps[sl] = writable(p.wrapping_add(sc.capacity));
                s.thieves[idx] = if i + 1 < take {
                    ThiefPc::WaitSlot {
                        rounds,
                        t,
                        i: i + 1,
                        take,
                    }
                } else {
                    self.next_round(rounds)
                };
            }
            ThiefPc::Done => unreachable!("stepping a done thief"),
        }
        Ok(s)
    }

    fn next_round(&self, rounds: u32) -> ThiefPc {
        if rounds > 1 {
            ThiefPc::Load {
                rounds: rounds - 1,
                attempts: self.scenario.steal_attempts,
            }
        } else {
            ThiefPc::Done
        }
    }
}

impl Model for RingModel {
    type State = RingState;

    fn initial(&self) -> RingState {
        let sc = &self.scenario;
        RingState {
            control: 0,
            stamps: (0..sc.capacity).map(writable).collect(),
            data: vec![STALE; sc.capacity as usize],
            owner: OwnerPc::Decide,
            next_value: 0,
            thieves: vec![
                ThiefPc::Load {
                    rounds: sc.rounds,
                    attempts: sc.steal_attempts,
                };
                sc.thieves
            ],
            consumed: vec![0; sc.values as usize],
            tail_floor: 0,
        }
    }

    fn actors(&self) -> usize {
        1 + self.scenario.thieves
    }

    fn done(&self, s: &RingState, a: ActorId) -> bool {
        if a == 0 {
            s.owner == OwnerPc::Done
        } else {
            s.thieves[a - 1] == ThiefPc::Done
        }
    }

    fn enabled(&self, s: &RingState, a: ActorId) -> bool {
        if self.done(s, a) {
            return false;
        }
        // Spin loops block until their stamp condition holds.
        if a == 0 {
            match s.owner {
                OwnerPc::PushWaitSlot { h, .. } => s.stamps[self.slot(h)] == writable(h),
                OwnerPc::PopWait { p, .. } => s.stamps[self.slot(p)] == readable(p),
                _ => true,
            }
        } else {
            match s.thieves[a - 1] {
                ThiefPc::WaitSlot { t, i, .. } => {
                    if self.scenario.mutation == Some(RingMutation::ThiefSkipStampWait) {
                        return true; // mutation: no spin, read immediately
                    }
                    let p = t.wrapping_add(i);
                    s.stamps[self.slot(p)] == readable(p)
                }
                _ => true,
            }
        }
    }

    fn is_local(&self, s: &RingState, a: ActorId) -> bool {
        // Only pure PC bookkeeping is local; every load/CAS/store of
        // control, a stamp, or a payload is shared.
        if a == 0 {
            matches!(s.owner, OwnerPc::Decide)
        } else {
            false
        }
    }

    fn step(&self, s: &RingState, a: ActorId) -> Result<RingState, Violation> {
        if a == 0 {
            self.step_owner(s)
        } else {
            self.step_thief(s, a - 1)
        }
    }

    fn check(&self, _s: &RingState) -> Result<(), Violation> {
        // Transition-level invariants run inside write_control/consume.
        Ok(())
    }

    fn check_final(&self, s: &RingState) -> Result<(), Violation> {
        let (h, t) = unpack(s.control);
        if h != t {
            return Err(Violation::new(
                "quiescence",
                format!("drained ring not empty: head {h}, tail {t}"),
            ));
        }
        for (v, &n) in s.consumed.iter().enumerate() {
            if n != 1 {
                return Err(Violation::new(
                    if n == 0 {
                        "lost-block"
                    } else {
                        "duplicated-block"
                    },
                    format!("value {v} consumed {n} times"),
                ));
            }
        }
        for p in 0..self.scenario.capacity {
            let stamp = s.stamps[p as usize];
            // Each slot must be parked writable for some future lap.
            if stamp & 1 != 0 {
                return Err(Violation::new(
                    "quiescence",
                    format!("slot {p} left readable at quiescence (stamp {stamp})"),
                ));
            }
        }
        Ok(())
    }
}
