//! # db-check — the concurrency-correctness subsystem
//!
//! The engines in this workspace stand on two hand-rolled lock-free
//! protocols: the [`StampedRing`](../db_core) push/pop/steal state
//! machine and the live-counter termination handshake. Both are small
//! enough to get *almost* right, which is the dangerous size. This
//! crate is the standing adversary — three cooperating analyses, all
//! runnable offline via `diggerbees check` and enforced in CI:
//!
//! * [`explore`] + [`ring_model`] / [`proto_model`] — a loom-style
//!   bounded schedule explorer (explicit-state DFS over interleavings,
//!   full-state dedup, persistent-set-style collapse of invisible
//!   steps) driving faithful transcriptions of the two protocols on
//!   tiny configs. Oracles: no lost or duplicated block, head/tail
//!   monotonicity, steal-vs-pop mutual exclusion, exactly-once
//!   visitation, termination only at quiescence. Seeded mutations
//!   ([`ring_model::RingMutation`], [`proto_model::ProtoMutation`])
//!   prove the oracles can actually fail.
//! * [`epoch_model`] — the same explorer over `db-delta`'s epoch
//!   lifecycle (pin/publish/compact/reclaim): one writer, pinned
//!   readers, and racing compactors. Oracles: no early reclaim past an
//!   active pin, at most one merge in flight, layer contiguity, no
//!   lost publish. [`epoch_model::EpochMutation`] seeds the bug
//!   classes the protocol exists to prevent.
//! * [`wal_model`] — the same explorer over `db-wal`'s commit /
//!   checkpoint / recovery protocol: append → fsync → ack commits, the
//!   pack → manifest-rename → truncate checkpoint, a crash at every
//!   interleaving point, and recovery from the durable artifacts.
//!   Oracles: no lost acknowledged write, no double apply.
//!   [`wal_model::WalMutation`] seeds the bug classes the ordering
//!   exists to prevent.
//! * [`race`] — a vector-clock happens-before detector over `db-trace`
//!   event streams (steal/recover events are the sync edges), runnable
//!   post-hoc on any `--trace` output.
//! * [`lint`] — a fast token/line-based source pass encoding repo
//!   rules: `Ordering::Relaxed` needs written justification on
//!   protocol atomics, deterministic crates stay clock-free, the serve
//!   request path stays panic-free, `catch_unwind` names its
//!   drop-guard.
//!
//! The model checker checks the *transcription*, not the shipped code;
//! the `differential` integration test pins the transcription to the
//! real `StampedRing` operation by operation, and the race detector
//! watches the shipped code's actual executions. The three analyses
//! overlap deliberately: a protocol bug must dodge all of them.

pub mod epoch_model;
pub mod explore;
pub mod lint;
pub mod proto_model;
pub mod race;
pub mod ring_model;
pub mod wal_model;

pub use epoch_model::{EpochModel, EpochMutation, EpochScenario};
pub use explore::{Explorer, Model, Outcome, Stats, Violation};
pub use lint::{lint_source, lint_tree, LintFinding};
pub use proto_model::{ProtoModel, ProtoMutation, ProtoScenario};
pub use race::{detect, RaceConfig, RaceError, RaceFinding, RaceReport};
pub use ring_model::{RingModel, RingMutation, RingScenario};
pub use wal_model::{WalModel, WalMutation, WalScenario};
