//! Repo-specific source lint pass: token/line-based, no rustc plugin.
//!
//! Five rules, each scoped to the paths where its invariant is
//! load-bearing and each with an explicit comment-escape so every
//! exception is a *written-down decision* in the diff:
//!
//! | rule | requirement | escape |
//! |------|-------------|--------|
//! | `R1-relaxed-justify` | every `Ordering::Relaxed` in the protocol/durability crates (`core`, `baselines`, `serve`, `gpu-sim`, `store`, `delta`, `wal`) carries a `relaxed-ok:` justification | `// relaxed-ok: <why>` |
//! | `R2-determinism` | no wall-clock (`std::time`, `Instant::now`, `SystemTime`) or `thread::sleep` in the deterministic crates (`gpu-sim`, `check` — including `crates/check/tests/`, `core/src/sim.rs`) | `// nondet-ok: <why>` |
//! | `R3-no-unwrap` | no `.unwrap()` / `.expect(` on the serve request path (`pool.rs`, `net.rs`, `exec.rs`, `request.rs`) — a panic there kills a worker mid-request | `// unwrap-ok: <why>` |
//! | `R4-guard-pairing` | every `catch_unwind(` call site names the drop-guard that restores shared state on unwind | `// guard: <which>` |
//! | `R5-io-no-unwrap` | no `.unwrap()` / `.expect(` in the durability path (`db-wal`, `db-store`, `db-delta`, `serve/delta.rs`) — an I/O panic there can tear a WAL frame, strand a half-swapped manifest, or abandon a half-written pack | `// io-ok: <why>` |
//!
//! The escape (or for R4 the `guard:` marker) must appear on the same
//! line or within the three lines above the flagged one. `#[cfg(test)]`
//! regions are skipped — test code may sleep, unwrap, and use relaxed
//! counters freely. The scanner strips line comments and string/char
//! literals (with cross-line string state) before matching, so doc
//! comments and string payloads cannot trigger rules; annotations are
//! matched on the *raw* line because they live in comments.
//!
//! [`lint_tree`] walks `src/`, every `crates/*/src/`, and (for R2)
//! `crates/check/tests/` under a repo root — the model-checker tests
//! are themselves determinism-critical. Vendored `shims/` and this
//! file itself (it defines the forbidden tokens as pattern strings)
//! are excluded.
//!
//! Four of the five rules have deeper interprocedural counterparts in
//! `db-analyze` (see [`superseded_by`]): when `diggerbees check
//! --analyze` runs, those textual findings yield to the analyzer's
//! call-chain versions.

use std::fs;
use std::io;
use std::path::Path;

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Stable rule name (`R1-relaxed-justify`, …).
    pub rule: &'static str,
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// What to do about it.
    pub detail: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.detail
        )
    }
}

const R1_SCOPE: [&str; 7] = [
    "crates/core/src/",
    "crates/baselines/src/",
    "crates/serve/src/",
    "crates/gpu-sim/src/",
    "crates/store/src/",
    "crates/delta/src/",
    "crates/wal/src/",
];

const R2_SCOPE: [&str; 3] = [
    "crates/gpu-sim/src/",
    "crates/check/src/",
    // The model-checker/differential tests are determinism-critical:
    // a wall-clock in there makes exploration results run-dependent.
    "crates/check/tests/",
];
const R2_EXTRA: [&str; 1] = ["crates/core/src/sim.rs"];

const R3_SCOPE: [&str; 4] = [
    "crates/serve/src/pool.rs",
    "crates/serve/src/net.rs",
    "crates/serve/src/exec.rs",
    "crates/serve/src/request.rs",
];

// nondet-ok: the forbidden tokens themselves, split so the scanner
// cannot match its own pattern table.
const R5_SCOPE: [&str; 3] = [
    "crates/wal/src/",
    // PackWriter/manifest fsync path and the epoch/compaction
    // machinery persist state too — same blast radius as the WAL.
    "crates/store/src/",
    "crates/delta/src/",
];
const R5_EXTRA: [&str; 1] = ["crates/serve/src/delta.rs"];

const R2_TOKENS: [&str; 4] = [
    concat!("std::", "time"),
    concat!("Instant::", "now"),
    concat!("System", "Time"),
    concat!("thread::", "sleep"),
];

/// How many lines above a flagged line an escape annotation may sit.
const ANNOTATION_WINDOW: usize = 3;

/// The db-analyze analysis that supersedes a textual rule, if any.
///
/// The interprocedural analyses see across function boundaries, so
/// when `diggerbees check --analyze` runs, the caller drops these
/// textual findings in favor of the analyzer's call-chain versions:
/// R1 → A2 (atomic-ordering audit), R2 → A5 (determinism taint),
/// R3/R5 → A1 (panic reachability). R4 has no analyzer counterpart —
/// guard pairing is a local, per-site contract.
pub fn superseded_by(rule: &str) -> Option<&'static str> {
    match rule {
        "R1-relaxed-justify" => Some("A2"),
        "R2-determinism" => Some("A5"),
        "R3-no-unwrap" | "R5-io-no-unwrap" => Some("A1"),
        _ => None,
    }
}

fn in_scope(file: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| file.starts_with(p))
}

/// Cross-line scanner state for string literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum StrState {
    #[default]
    Code,
    /// Inside a `"…"` literal.
    Str,
    /// Inside a `r##"…"##` literal with this many hashes.
    RawStr(usize),
}

/// Returns `line` with line comments and string/char literal *contents*
/// removed, advancing `state` across line boundaries (multi-line
/// strings). Lifetimes (`'a`) are left alone; only true char literals
/// are stripped.
fn strip_code(line: &str, state: &mut StrState) -> String {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        match *state {
            StrState::Str => {
                if b[i] == b'\\' {
                    i += 2;
                    continue;
                }
                if b[i] == b'"' {
                    *state = StrState::Code;
                    out.push('"');
                }
                i += 1;
            }
            StrState::RawStr(hashes) => {
                if b[i] == b'"' && b[i + 1..].iter().take_while(|&&c| c == b'#').count() >= hashes {
                    *state = StrState::Code;
                    out.push('"');
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            StrState::Code => match b[i] {
                b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break,
                b'"' => {
                    *state = StrState::Str;
                    out.push('"');
                    i += 1;
                }
                b'r' if i + 1 < b.len() && (b[i + 1] == b'"' || b[i + 1] == b'#') => {
                    let hashes = b[i + 1..].iter().take_while(|&&c| c == b'#').count();
                    if b.get(i + 1 + hashes) == Some(&b'"') {
                        *state = StrState::RawStr(hashes);
                        out.push('"');
                        i += 2 + hashes;
                    } else {
                        out.push('r');
                        i += 1;
                    }
                }
                b'\'' => {
                    // Char literal iff it closes within a couple of
                    // bytes ('x' or '\n'); otherwise it's a lifetime.
                    if i + 2 < b.len() && b[i + 1] == b'\\' {
                        let close = b[i + 2..].iter().position(|&c| c == b'\'');
                        i += close.map(|p| p + 3).unwrap_or(1);
                    } else if i + 2 < b.len() && b[i + 2] == b'\'' {
                        i += 3;
                    } else {
                        i += 1;
                    }
                }
                c => {
                    out.push(c as char);
                    i += 1;
                }
            },
        }
    }
    out
}

/// Lints one file's text. `file` is the repo-relative path (forward
/// slashes) used for rule scoping. Pure — the unit under test.
pub fn lint_source(file: &str, text: &str) -> Vec<LintFinding> {
    let r1 = in_scope(file, &R1_SCOPE);
    let r2 = in_scope(file, &R2_SCOPE) || R2_EXTRA.contains(&file);
    let r3 = R3_SCOPE.contains(&file);
    let r5 = in_scope(file, &R5_SCOPE) || R5_EXTRA.contains(&file);
    let raw: Vec<&str> = text.lines().collect();

    let mut findings = Vec::new();
    let mut state = StrState::default();
    // #[cfg(test)] region tracking: once the attribute is seen, the
    // next brace-opening line starts the region; net brace depth
    // (counted on stripped lines, so format-string braces are inert)
    // closes it.
    let mut pending_test_attr = false;
    let mut test_depth: i64 = 0;
    let mut in_test = false;

    let annotated = |lineno: usize, marker: &str| -> bool {
        let lo = lineno.saturating_sub(ANNOTATION_WINDOW);
        raw[lo..=lineno].iter().any(|l| l.contains(marker))
    };

    for (idx, raw_line) in raw.iter().enumerate() {
        let code = strip_code(raw_line, &mut state);
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;

        if in_test {
            test_depth += opens - closes;
            if test_depth <= 0 {
                in_test = false;
            }
            continue;
        }
        if pending_test_attr {
            if opens > 0 {
                in_test = true;
                test_depth = opens - closes;
                pending_test_attr = false;
                if test_depth <= 0 {
                    in_test = false;
                }
            } else if !code.trim().is_empty() && code.contains(';') {
                // `mod tests;` style — nothing inline to skip.
                pending_test_attr = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
            continue;
        }

        let lineno = idx + 1;
        if r1 && code.contains("Ordering::Relaxed") && !annotated(idx, "relaxed-ok:") {
            findings.push(LintFinding {
                rule: "R1-relaxed-justify",
                file: file.into(),
                line: lineno,
                detail: "Ordering::Relaxed on a protocol atomic needs a `// relaxed-ok:` \
                         justification"
                    .into(),
            });
        }
        if r2 {
            for tok in R2_TOKENS {
                if code.contains(tok) && !annotated(idx, "nondet-ok:") {
                    findings.push(LintFinding {
                        rule: "R2-determinism",
                        file: file.into(),
                        line: lineno,
                        detail: format!(
                            "`{tok}` in a deterministic crate; annotate `// nondet-ok:` if \
                             genuinely needed"
                        ),
                    });
                }
            }
        }
        if r3
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !annotated(idx, "unwrap-ok:")
        {
            findings.push(LintFinding {
                rule: "R3-no-unwrap",
                file: file.into(),
                line: lineno,
                detail: "panic on the serve request path kills a worker mid-request; handle \
                         the error or annotate `// unwrap-ok:`"
                    .into(),
            });
        }
        if r5
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !annotated(idx, "io-ok:")
        {
            findings.push(LintFinding {
                rule: "R5-io-no-unwrap",
                file: file.into(),
                line: lineno,
                detail: "panic in the durability path can tear a WAL frame or strand a \
                         half-swapped manifest; handle the error or annotate `// io-ok:`"
                    .into(),
            });
        }
        if code.contains("catch_unwind(") && !annotated(idx, "guard:") {
            findings.push(LintFinding {
                rule: "R4-guard-pairing",
                file: file.into(),
                line: lineno,
                detail: "catch_unwind must name the drop-guard restoring shared state \
                         (`// guard: <which>`)"
                    .into(),
            });
        }
    }
    findings
}

/// Files the walker lints: `src/**/*.rs` and `crates/*/src/**/*.rs`
/// under `root`. Vendored `shims/` and this linter's own source are
/// excluded.
fn collect_files(root: &Path) -> io::Result<Vec<String>> {
    fn walk(dir: &Path, rel: &str, out: &mut Vec<String>) -> io::Result<()> {
        let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let name = e.file_name();
            let name = name.to_string_lossy();
            let child = if rel.is_empty() {
                name.to_string()
            } else {
                format!("{rel}/{name}")
            };
            let ty = e.file_type()?;
            if ty.is_dir() {
                walk(&e.path(), &child, out)?;
            } else if name.ends_with(".rs") && child != "crates/check/src/lint.rs" {
                out.push(child);
            }
        }
        Ok(())
    }

    let mut files = Vec::new();
    if root.join("src").is_dir() {
        walk(&root.join("src"), "src", &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<io::Result<_>>()?;
        entries.sort_by_key(|e| e.file_name());
        for e in entries {
            let src = e.path().join("src");
            if src.is_dir() {
                let rel = format!("crates/{}/src", e.file_name().to_string_lossy());
                walk(&src, &rel, &mut files)?;
            }
        }
    }
    // The check crate's integration tests are determinism-critical
    // (R2 applies there); other crates' tests stay out of scope.
    let check_tests = root.join("crates/check/tests");
    if check_tests.is_dir() {
        walk(&check_tests, "crates/check/tests", &mut files)?;
    }
    Ok(files)
}

/// Lints the repo tree rooted at `root`; returns all findings in
/// path order.
///
/// # Errors
///
/// Propagates filesystem errors from the walk or the reads.
pub fn lint_tree(root: &Path) -> io::Result<Vec<LintFinding>> {
    let mut findings = Vec::new();
    for file in collect_files(root)? {
        let text = fs::read_to_string(root.join(&file))?;
        findings.extend(lint_source(&file, &text));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROTO: &str = "crates/core/src/lockfree.rs";

    #[test]
    fn unannotated_relaxed_is_flagged_and_escape_clears_it() {
        let bad = "fn f(a: &AtomicU32) { a.store(1, Ordering::Relaxed); }\n";
        let hits = lint_source(PROTO, bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "R1-relaxed-justify");
        assert_eq!(hits[0].line, 1);

        let same_line =
            "fn f(a: &AtomicU32) { a.store(1, Ordering::Relaxed); } // relaxed-ok: stat\n";
        assert!(lint_source(PROTO, same_line).is_empty());

        let above = "// relaxed-ok: statistics counter\nfn f(a: &AtomicU32) { a.store(1, Ordering::Relaxed); }\n";
        assert!(lint_source(PROTO, above).is_empty());
    }

    #[test]
    fn relaxed_outside_protocol_scope_is_ignored() {
        let bad = "fn f(a: &AtomicU32) { a.store(1, Ordering::Relaxed); }\n";
        assert!(lint_source("crates/metrics/src/registry.rs", bad).is_empty());
    }

    #[test]
    fn annotation_window_is_bounded() {
        let far =
            "// relaxed-ok: too far away\n\n\n\n\nfn f() { a.store(1, Ordering::Relaxed); }\n";
        assert_eq!(lint_source(PROTO, far).len(), 1);
    }

    #[test]
    fn test_modules_are_exempt() {
        let text = "\
fn hot(a: &AtomicU32) -> u32 { a.load(Ordering::Acquire) }

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxed_in_tests_is_fine() {
        let a = AtomicU32::new(0);
        a.store(1, Ordering::Relaxed);
        let s = format!(\"brace in string {}\", 1);
    }
}

fn after(a: &AtomicU32) { a.store(1, Ordering::Relaxed); }
";
        let hits = lint_source(PROTO, text);
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].line, 15);
    }

    #[test]
    fn doc_comments_and_strings_cannot_trigger() {
        let text = "\
//! Discusses Ordering::Relaxed at length.
/// More Ordering::Relaxed talk.
fn f() -> &'static str { \"Ordering::Relaxed inside a string\" }
";
        assert!(lint_source(PROTO, text).is_empty());
    }

    #[test]
    fn multiline_string_state_carries() {
        let text = "\
const DOC: &str = \"start
Ordering::Relaxed is just prose here
end\";
";
        assert!(lint_source(PROTO, text).is_empty());
    }

    #[test]
    fn determinism_rule_fires_in_sim_and_check() {
        let sleep = format!("fn f() {{ {}(d); }}\n", concat!("thread::", "sleep"));
        assert_eq!(
            lint_source("crates/gpu-sim/src/machine.rs", &sleep).len(),
            1
        );
        assert_eq!(lint_source("crates/core/src/sim.rs", &sleep).len(), 1);
        assert_eq!(lint_source("crates/check/src/explore.rs", &sleep).len(), 1);
        // Native engines may use wall clocks.
        assert!(lint_source("crates/core/src/native.rs", &sleep).is_empty());
    }

    #[test]
    fn unwrap_rule_scoped_to_request_path() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert_eq!(lint_source("crates/serve/src/pool.rs", bad).len(), 1);
        assert!(lint_source("crates/serve/src/corpus.rs", bad).is_empty());
        let ok = "fn f(x: Option<u32>) -> u32 { x.unwrap() } // unwrap-ok: startup only\n";
        assert!(lint_source("crates/serve/src/pool.rs", ok).is_empty());
    }

    #[test]
    fn catch_unwind_requires_named_guard() {
        let bad = "let r = panic::catch_unwind(AssertUnwindSafe(|| job()));\n";
        let hits = lint_source("crates/serve/src/pool.rs", bad);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, "R4-guard-pairing");
        let ok = "// guard: ActiveGuard decrements active on unwind\nlet r = panic::catch_unwind(AssertUnwindSafe(|| job()));\n";
        assert!(lint_source("crates/serve/src/pool.rs", ok).is_empty());
        // A `use` of catch_unwind is not a call site.
        let import = "use std::panic::catch_unwind;\n";
        assert!(lint_source("crates/serve/src/pool.rs", import).is_empty());
    }

    #[test]
    fn io_unwrap_rule_scoped_to_durability_path() {
        let bad = "fn f() { std::fs::write(p, b).unwrap(); }\n";
        assert_eq!(lint_source("crates/wal/src/log.rs", bad).len(), 1);
        assert_eq!(
            lint_source("crates/wal/src/log.rs", bad)[0].rule,
            "R5-io-no-unwrap"
        );
        assert_eq!(lint_source("crates/serve/src/delta.rs", bad).len(), 1);
        assert_eq!(lint_source("crates/delta/src/graph.rs", bad).len(), 1);
        // Outside the persistence path the rule is silent.
        assert!(lint_source("crates/serve/src/corpus.rs", bad).is_empty());
        let ok = "fn f() { len.try_into().unwrap() } // io-ok: frame len is u32 by construction\n";
        assert!(lint_source("crates/wal/src/record.rs", ok).is_empty());
    }

    #[test]
    fn zero_hash_raw_strings_cannot_trigger() {
        // Regression pin: `r"…"` (zero-hash raw strings) must enter
        // the raw-string state like `r#"…"#` does, so forbidden tokens
        // inside them stay inert.
        let text = format!(
            "fn f() -> &'static str {{ r\"{}\" }}\n",
            concat!("Instant::", "now")
        );
        assert!(
            lint_source("crates/gpu-sim/src/machine.rs", &text).is_empty(),
            "token inside zero-hash raw string must not fire"
        );

        // Multi-line zero-hash raw string, token on the inner line.
        let text = format!(
            "const D: &str = r\"line one\n{}\nline three\";\n",
            concat!("Instant::", "now")
        );
        assert!(lint_source("crates/gpu-sim/src/machine.rs", &text).is_empty());

        // Trailing backslash must not escape the closing quote
        // (raw strings have no escapes).
        let text = format!(
            "const P: &str = r\"C:\\\"; fn f() {{ {}(); }}\n",
            concat!("Instant::", "now")
        );
        assert_eq!(
            lint_source("crates/gpu-sim/src/machine.rs", &text).len(),
            1,
            "code after the raw string still fires"
        );
    }

    #[test]
    fn determinism_rule_covers_check_integration_tests() {
        let sleep = format!("fn f() {{ {}(d); }}\n", concat!("thread::", "sleep"));
        assert_eq!(
            lint_source("crates/check/tests/differential.rs", &sleep).len(),
            1,
            "model-checker tests are determinism-critical"
        );
        // Other crates' tests stay out of scope.
        assert!(lint_source("crates/serve/tests/smoke.rs", &sleep).is_empty());
    }

    #[test]
    fn superseded_rules_map_to_analyses() {
        assert_eq!(superseded_by("R1-relaxed-justify"), Some("A2"));
        assert_eq!(superseded_by("R2-determinism"), Some("A5"));
        assert_eq!(superseded_by("R3-no-unwrap"), Some("A1"));
        assert_eq!(superseded_by("R5-io-no-unwrap"), Some("A1"));
        assert_eq!(superseded_by("R4-guard-pairing"), None);
    }

    #[test]
    fn extended_scopes_cover_store_delta_wal() {
        let relaxed = "fn f(a: &AtomicU32) { a.store(1, Ordering::Relaxed); }\n";
        for file in [
            "crates/store/src/partition.rs",
            "crates/delta/src/graph.rs",
            "crates/wal/src/log.rs",
        ] {
            assert_eq!(lint_source(file, relaxed).len(), 1, "{file}");
        }
        let unwrap = "fn f() { std::fs::write(p, b).unwrap(); }\n";
        for file in ["crates/store/src/pack.rs", "crates/delta/src/graph.rs"] {
            let hits = lint_source(file, unwrap);
            assert_eq!(hits.len(), 1, "{file}");
            assert_eq!(hits[0].rule, "R5-io-no-unwrap");
        }
    }

    #[test]
    fn lifetimes_do_not_confuse_the_stripper() {
        let text =
            "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g() { a.store(1, Ordering::Relaxed); }\n";
        assert_eq!(lint_source(PROTO, text).len(), 1);
    }
}
