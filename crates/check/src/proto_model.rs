//! Step-level model of the DiggerBees work/steal handshake — the
//! visited-CAS discovery protocol and the `live`-counter termination
//! protocol shared by `native_lockfree`, `native`, and `deque_dfs`.
//!
//! Workers run the engines' actual loop structure on a tiny graph:
//! pop an entry, scan its adjacency row, claim the first unvisited
//! child with a CAS, bump the `live` counter **before** publishing the
//! continuation and the child (the ordering the engines' regression
//! comments insist on), and decrement `live` on exhaustion, raising the
//! global `done` flag when it hits zero. Idle workers steal from the
//! bottom of a victim's stack. Each atomic access is one explorer step.
//!
//! The ring internals are verified separately by
//! [`crate::ring_model`]; here stacks are atomic push/pop/steal
//! regions, so the state space stays tiny while the *handshake* — the
//! part the Work Stealing Simulator literature shows silently diverges
//! — is explored exhaustively.
//!
//! Oracles:
//!
//! * **exactly-once visitation** — no vertex is discovered twice;
//! * **no lost block** — at termination every reachable vertex was
//!   visited and every stack is empty;
//! * **handshake soundness** — `live` never goes negative, and `done`
//!   is only ever raised on a truly quiescent system.
//!
//! [`ProtoMutation`] seeds the historical bug classes: publishing the
//! child before counting it, replacing the visited CAS with a plain
//! store, and stealing by copy instead of by transfer.

use crate::explore::{ActorId, Model, Violation};

/// A seeded handshake bug for the mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoMutation {
    /// Publish the continuation + child *before* incrementing `live` —
    /// the exact termination race the engines' "count BEFORE
    /// publishing" comments guard against.
    PublishBeforeLive,
    /// Replace the visited compare-exchange with a plain store (two
    /// workers can both claim the same vertex).
    SkipVisitedCas,
    /// The thief copies entries out of the victim's stack without
    /// removing them (every stolen block is executed twice).
    StealDuplicates,
}

impl ProtoMutation {
    /// Every mutation, for exhaustive mutation tests.
    pub const ALL: [ProtoMutation; 3] = [
        ProtoMutation::PublishBeforeLive,
        ProtoMutation::SkipVisitedCas,
        ProtoMutation::StealDuplicates,
    ];
}

/// Configuration of one handshake check.
#[derive(Debug, Clone)]
pub struct ProtoScenario {
    /// Tiny adjacency lists (vertex id → neighbors). Vertex 0 is the
    /// root; every vertex should be reachable from it.
    pub adj: Vec<Vec<u32>>,
    /// Number of workers (2–3).
    pub workers: usize,
    /// Minimum victim-stack length before a steal fires (cutoff).
    pub steal_cutoff: usize,
    /// The seeded bug, or `None` for the faithful protocol.
    pub mutation: Option<ProtoMutation>,
}

impl ProtoScenario {
    /// A 4-vertex path: deep, so continuations and steals both occur.
    pub fn path4(workers: usize) -> Self {
        ProtoScenario {
            adj: vec![vec![1], vec![0, 2], vec![1, 3], vec![2]],
            workers,
            steal_cutoff: 1,
            mutation: None,
        }
    }

    /// A 4-vertex star: the root fans out, so several children are in
    /// flight at once (maximum steal overlap).
    pub fn star4(workers: usize) -> Self {
        ProtoScenario {
            adj: vec![vec![1, 2, 3], vec![0], vec![0], vec![0]],
            workers,
            steal_cutoff: 1,
            mutation: None,
        }
    }

    /// A 4-vertex diamond (`0→{1,2}`, `{1,2}→3`): the only shape where
    /// two concurrently-live entries race to discover the same child,
    /// which is what the visited-CAS exists for.
    pub fn diamond4(workers: usize) -> Self {
        ProtoScenario {
            adj: vec![vec![1, 2], vec![3], vec![3], vec![]],
            workers,
            steal_cutoff: 1,
            mutation: None,
        }
    }

    /// Same scenario with a seeded bug.
    pub fn with_mutation(mut self, m: ProtoMutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

/// Worker program counter; each variant boundary is one atomic access.
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
enum WorkerPc {
    /// Check `done`, then pop own stack or go steal.
    Top,
    /// Load `visited[adj[u][i]]` (the test of test-and-test-and-set).
    ScanLoad {
        u: u32,
        i: u32,
    },
    /// Compare-exchange `visited[v]` 0 → 1.
    VisitCas {
        u: u32,
        i: u32,
        v: u32,
    },
    /// `live += 1` (counts the child before it is published).
    IncLive {
        u: u32,
        i: u32,
        v: u32,
    },
    /// Push the parent continuation `(u, i)`.
    PushCont {
        u: u32,
        i: u32,
        v: u32,
    },
    /// Push the child `(v, 0)`.
    PushChild {
        u: u32,
        i: u32,
        v: u32,
    },
    /// `live -= 1`; raise `done` when it hits zero.
    DecLive,
    Exit,
}

/// Full system state.
#[derive(Clone, Hash, PartialEq, Eq, Debug)]
pub struct ProtoState {
    visited: Vec<u8>,
    live: i32,
    done: bool,
    stacks: Vec<Vec<(u32, u32)>>,
    workers: Vec<WorkerPc>,
    /// Ghost: CAS-win count per vertex (exactly-once oracle).
    discoveries: Vec<u8>,
}

/// The checkable model: `scenario.workers` workers, worker 0 seeded
/// with the root.
#[derive(Debug, Clone)]
pub struct ProtoModel {
    /// The scenario being checked.
    pub scenario: ProtoScenario,
}

impl ProtoModel {
    /// Creates the model for a scenario.
    pub fn new(scenario: ProtoScenario) -> Self {
        ProtoModel { scenario }
    }

    fn deg(&self, u: u32) -> u32 {
        self.scenario.adj[u as usize].len() as u32
    }

    /// The steal step: scan victims in index order for a stack at or
    /// above the cutoff, transfer (or, mutated, copy) the bottom half.
    /// One atomic region, like the ColdSeg under its lock.
    fn try_steal(&self, s: &mut ProtoState, w: usize) -> bool {
        for v in 0..self.scenario.workers {
            if v == w || s.stacks[v].len() < self.scenario.steal_cutoff.max(1) {
                continue;
            }
            let take = s.stacks[v].len().div_ceil(2);
            let batch: Vec<(u32, u32)> =
                if self.scenario.mutation == Some(ProtoMutation::StealDuplicates) {
                    s.stacks[v][..take].to_vec()
                } else {
                    s.stacks[v].drain(..take).collect()
                };
            s.stacks[w].extend(batch);
            return true;
        }
        false
    }
}

impl Model for ProtoModel {
    type State = ProtoState;

    fn initial(&self) -> ProtoState {
        let n = self.scenario.adj.len();
        let mut visited = vec![0u8; n];
        visited[0] = 1;
        let mut discoveries = vec![0u8; n];
        discoveries[0] = 1;
        let mut stacks = vec![Vec::new(); self.scenario.workers];
        stacks[0].push((0u32, 0u32));
        ProtoState {
            visited,
            live: 1,
            done: false,
            stacks,
            workers: vec![WorkerPc::Top; self.scenario.workers],
            discoveries,
        }
    }

    fn actors(&self) -> usize {
        self.scenario.workers
    }

    fn done(&self, s: &ProtoState, a: ActorId) -> bool {
        s.workers[a] == WorkerPc::Exit
    }

    fn enabled(&self, s: &ProtoState, a: ActorId) -> bool {
        if self.done(s, a) {
            return false;
        }
        // A worker at Top with no local work, nothing stealable, and
        // `done` unset is spinning; stepping it would not change the
        // state (the dedup would prune it), so treat it as blocked
        // rather than letting every branch interleave no-ops.
        if s.workers[a] == WorkerPc::Top && !s.done && s.stacks[a].is_empty() {
            let mut probe = s.clone();
            if !self.try_steal(&mut probe, a) {
                return false;
            }
        }
        true
    }

    fn is_local(&self, _s: &ProtoState, _a: ActorId) -> bool {
        false
    }

    fn step(&self, s: &ProtoState, a: ActorId) -> Result<ProtoState, Violation> {
        let mut s = s.clone();
        match s.workers[a].clone() {
            WorkerPc::Top => {
                if s.done {
                    s.workers[a] = WorkerPc::Exit;
                } else if let Some((u, i)) = s.stacks[a].pop() {
                    s.workers[a] = WorkerPc::ScanLoad { u, i };
                } else {
                    // Steal (enabled() guarantees a victim exists).
                    let stole = self.try_steal(&mut s, a);
                    debug_assert!(stole, "enabled() promised a victim");
                }
            }
            WorkerPc::ScanLoad { u, i } => {
                if i >= self.deg(u) {
                    s.workers[a] = WorkerPc::DecLive;
                } else {
                    let v = self.scenario.adj[u as usize][i as usize];
                    s.workers[a] = if s.visited[v as usize] != 0 {
                        WorkerPc::ScanLoad { u, i: i + 1 }
                    } else {
                        WorkerPc::VisitCas { u, i, v }
                    };
                }
            }
            WorkerPc::VisitCas { u, i, v } => {
                let won = if self.scenario.mutation == Some(ProtoMutation::SkipVisitedCas) {
                    // Mutation: plain store, no claim check.
                    s.visited[v as usize] = 1;
                    true
                } else if s.visited[v as usize] == 0 {
                    s.visited[v as usize] = 1;
                    true
                } else {
                    false
                };
                if won {
                    s.discoveries[v as usize] = s.discoveries[v as usize].saturating_add(1);
                    if s.discoveries[v as usize] > 1 {
                        return Err(Violation::new(
                            "duplicate-visit",
                            format!("vertex {v} discovered twice"),
                        ));
                    }
                    s.workers[a] =
                        if self.scenario.mutation == Some(ProtoMutation::PublishBeforeLive) {
                            WorkerPc::PushCont { u, i: i + 1, v }
                        } else {
                            WorkerPc::IncLive { u, i: i + 1, v }
                        };
                } else {
                    s.workers[a] = WorkerPc::ScanLoad { u, i: i + 1 };
                }
            }
            WorkerPc::IncLive { u, i, v } => {
                s.live += 1;
                s.workers[a] = if self.scenario.mutation == Some(ProtoMutation::PublishBeforeLive) {
                    // Mutated order already published; expansion done.
                    WorkerPc::Top
                } else {
                    WorkerPc::PushCont { u, i, v }
                };
            }
            WorkerPc::PushCont { u, i, v } => {
                s.stacks[a].push((u, i));
                s.workers[a] = WorkerPc::PushChild { u, i, v };
            }
            WorkerPc::PushChild { u, i, v } => {
                s.stacks[a].push((v, 0));
                s.workers[a] = if self.scenario.mutation == Some(ProtoMutation::PublishBeforeLive) {
                    WorkerPc::IncLive { u, i, v }
                } else {
                    WorkerPc::Top
                };
            }
            WorkerPc::DecLive => {
                s.live -= 1;
                if s.live < 0 {
                    return Err(Violation::new(
                        "live-underflow",
                        "live counter went negative".to_string(),
                    ));
                }
                if s.live == 0 {
                    s.done = true;
                }
                s.workers[a] = WorkerPc::Top;
            }
            WorkerPc::Exit => unreachable!("stepping an exited worker"),
        }
        Ok(s)
    }

    fn check(&self, s: &ProtoState) -> Result<(), Violation> {
        // `done` raised while entries are still in flight is the
        // termination-handshake failure (it strands those entries).
        if s.done {
            let stacked: usize = s.stacks.iter().map(Vec::len).sum();
            let in_hand = s
                .workers
                .iter()
                .filter(|pc| !matches!(pc, WorkerPc::Top | WorkerPc::Exit | WorkerPc::DecLive))
                .count();
            if stacked + in_hand > 0 && s.live <= 0 {
                return Err(Violation::new(
                    "early-termination",
                    format!("done raised with {stacked} stacked and {in_hand} in-hand entries"),
                ));
            }
        }
        Ok(())
    }

    fn check_final(&self, s: &ProtoState) -> Result<(), Violation> {
        for (v, &d) in s.discoveries.iter().enumerate() {
            if d != 1 {
                return Err(Violation::new(
                    if d == 0 {
                        "lost-vertex"
                    } else {
                        "duplicate-visit"
                    },
                    format!("vertex {v} discovered {d} times"),
                ));
            }
        }
        let stacked: usize = s.stacks.iter().map(Vec::len).sum();
        if stacked > 0 {
            return Err(Violation::new(
                "lost-block",
                format!("{stacked} entries stranded on stacks at termination"),
            ));
        }
        if s.live != 0 {
            return Err(Violation::new(
                "handshake",
                format!("live = {} at termination", s.live),
            ));
        }
        Ok(())
    }
}
