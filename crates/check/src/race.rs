//! Post-hoc happens-before race detector over `db-trace` event streams.
//!
//! Actors are `(block, warp)` lanes. Each actor's own events are
//! program-ordered; cross-actor ordering exists **only** where the
//! engines synchronize:
//!
//! * `StealIntra { victim_warp }` — the thief's CAS on the victim's
//!   ring tail: join the thief's clock with the victim lane's clock.
//! * `Flush` → `Refill` / `StealInter` — the per-block ColdSeg is a
//!   locked structure: each block's "cold clock" accumulates flusher
//!   clocks, and whoever pulls from the ColdSeg joins with it.
//! * `Recover { victim_block }` — the recovery path drains a killed
//!   SM's hot rings and ColdSeg: join with the block's cold clock and
//!   every lane of the victim block.
//! * `KernelPhase Start/Finish` — the fork/join boundary: `Start`
//!   happens-before everything, everything happens-before `Finish`.
//!
//! With those edges, a vector clock per actor gives the classic
//! happens-before check. The detector then enforces the transfer
//! discipline the whole repo rests on: a vertex pushed by one lane and
//! popped by another **must** be ordered by a steal-edge chain —
//! otherwise the entry crossed actors through an unsynchronized ring
//! access (exactly the shared-ring data-race class of Wu et al.).
//! Duplicate pushes and duplicate pops (lost updates) are flagged
//! unconditionally.
//!
//! The detector consumes any `--trace` output, including faulted runs
//! (fault/recover events are ordinary synchronization edges). Input
//! soundness — balanced begin/end markers, per-actor cycle
//! monotonicity — is delegated to [`db_trace::validate::check_stream`]
//! and reported as [`RaceError::BadInput`] rather than as findings.
//!
//! Native engines stamp wall-clock nanoseconds, so a victim thread can
//! be descheduled between its ring publish and its `Push` emission,
//! making the thief's steal event land *earlier* in the merged
//! timeline. [`RaceConfig::skew`] widens every steal join to also
//! cover victim events up to `skew` ticks after the steal — 0 for
//! simulator traces (deterministic cycles, fully sound), a few
//! microseconds for native traces (documented FP suppression).

use db_trace::{EventKind, PhaseKind, TraceEvent};
use std::collections::HashMap;

/// Detector configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct RaceConfig {
    /// Timestamp slack (in trace ticks) granted to steal-edge joins;
    /// see the module docs. 0 = strict happens-before.
    pub skew: u64,
}

/// Why the detector refused to analyze a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaceError {
    /// The stream failed the pairing/monotonicity validator.
    BadInput(String),
}

impl std::fmt::Display for RaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaceError::BadInput(e) => write!(f, "unsound trace input: {e}"),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceFinding {
    /// Stable, test-matchable rule name.
    pub rule: &'static str,
    /// The vertex involved.
    pub vertex: u32,
    /// Human-readable description with both endpoints.
    pub detail: String,
}

impl std::fmt::Display for RaceFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] vertex {}: {}", self.rule, self.vertex, self.detail)
    }
}

/// Detector outcome: findings plus stream statistics.
#[derive(Debug, Clone, Default)]
pub struct RaceReport {
    /// Everything flagged, in stream order.
    pub findings: Vec<RaceFinding>,
    /// Events analyzed.
    pub events: usize,
    /// Distinct actors ((block, warp) lanes) seen.
    pub actors: usize,
    /// Synchronization edges applied (steal/recover joins).
    pub sync_edges: usize,
    /// Cross-actor pushes→pops that were properly steal-ordered.
    pub ordered_transfers: usize,
}

type Actor = (u32, u32);

/// A sparse vector clock: actor → ticket.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct VClock(HashMap<Actor, u64>);

impl VClock {
    fn tick(&mut self, a: Actor) {
        *self.0.entry(a).or_insert(0) += 1;
    }

    fn join(&mut self, other: &VClock) {
        for (&a, &t) in &other.0 {
            let e = self.0.entry(a).or_insert(0);
            *e = (*e).max(t);
        }
    }

    /// `self ≤ other` — every component covered.
    fn le(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .all(|(a, &t)| other.0.get(a).copied().unwrap_or(0) >= t)
    }
}

/// Where a vertex's `Push` happened.
#[derive(Debug, Clone)]
struct PushSite {
    actor: Actor,
    clock: VClock,
    cycle: u64,
}

/// Runs the detector over `events` with `cfg`.
///
/// # Errors
///
/// Returns [`RaceError::BadInput`] when the stream fails the
/// `db-trace` pairing validator — findings over an unsound stream
/// would be meaningless.
pub fn detect(events: &[TraceEvent], cfg: &RaceConfig) -> Result<RaceReport, RaceError> {
    db_trace::validate::check_stream(events).map_err(|e| RaceError::BadInput(e.to_string()))?;

    // Merge into one global timeline. Per-actor order is preserved
    // (sort is stable and per-actor cycles are non-decreasing); the
    // cross-actor order is the engines' best-effort timestamp order.
    let mut order: Vec<usize> = (0..events.len()).collect();
    order.sort_by_key(|&i| events[i].cycle);

    let mut clocks: HashMap<Actor, VClock> = HashMap::new();
    // Per-block ColdSeg clock: accumulated at Flush, joined at
    // Refill / StealInter / Recover.
    let mut cold: HashMap<u32, VClock> = HashMap::new();
    let mut pushes: HashMap<u32, PushSite> = HashMap::new();
    let mut popped: HashMap<u32, Actor> = HashMap::new();
    let mut start_clock: Option<VClock> = None;
    let mut report = RaceReport {
        events: events.len(),
        ..RaceReport::default()
    };

    // Pre-index per-actor event positions for skew-window joins: for a
    // steal at cycle c we want the victim's clock as of cycle c + skew.
    // Processing in merged order makes the current clock exactly "as of
    // now", so the skew window is applied by deferring steal joins:
    // simpler and equivalent is to join again after the window passes.
    // With the modest skews in practice we instead join with the
    // victim's clock advanced to cover victim events whose cycle is
    // ≤ steal cycle + skew; those are exactly the victim events not yet
    // processed that the sort placed after us. We handle this by a
    // second pass structure: collect victim events by actor first.
    let mut by_actor: HashMap<Actor, Vec<usize>> = HashMap::new();
    // pos[i] = position of event i within its actor's list.
    let mut pos: Vec<usize> = vec![0; events.len()];
    for &i in &order {
        let e = &events[i];
        let list = by_actor.entry((e.block, e.warp)).or_default();
        pos[i] = list.len();
        list.push(i);
    }
    // Cursor per actor: how many of its events are already in its clock.
    let mut cursor: HashMap<Actor, usize> = HashMap::new();

    // Advances `victim`'s clock to include its own events up to and
    // including `deadline`, returning the advanced clock. The victim's
    // real clock is advanced too (its events are ticked exactly once).
    fn clock_upto(
        victim: Actor,
        deadline: u64,
        by_actor: &HashMap<Actor, Vec<usize>>,
        cursor: &mut HashMap<Actor, usize>,
        clocks: &mut HashMap<Actor, VClock>,
        events: &[TraceEvent],
    ) -> VClock {
        let list = by_actor.get(&victim).map(Vec::as_slice).unwrap_or(&[]);
        let cur = cursor.entry(victim).or_insert(0);
        let clock = clocks.entry(victim).or_default();
        while *cur < list.len() && events[list[*cur]].cycle <= deadline {
            clock.tick(victim);
            *cur += 1;
        }
        clock.clone()
    }

    for &i in &order {
        let e = &events[i];
        let actor: Actor = (e.block, e.warp);
        // Tick this actor's clock for this event unless a skew-window
        // advance already covered it.
        {
            let idx = pos[i];
            let cur = cursor.entry(actor).or_insert(0);
            if idx >= *cur {
                let clock = clocks.entry(actor).or_default();
                for _ in *cur..=idx {
                    clock.tick(actor);
                }
                *cur = idx + 1;
            }
        }
        // Fork edge: everything after Start inherits the Start clock.
        if let Some(sc) = &start_clock {
            clocks.entry(actor).or_default().join(sc);
        }

        match e.kind {
            EventKind::KernelPhase {
                phase: PhaseKind::Start,
            } => {
                start_clock = Some(clocks[&actor].clone());
            }
            EventKind::KernelPhase { .. } => {}
            EventKind::Push { vertex } => {
                if let Some(prev) = pushes.get(&vertex) {
                    report.findings.push(RaceFinding {
                        rule: "duplicate-push",
                        vertex,
                        detail: format!(
                            "pushed by {:?} at {} and again by {actor:?} at {}",
                            prev.actor, prev.cycle, e.cycle
                        ),
                    });
                } else {
                    pushes.insert(
                        vertex,
                        PushSite {
                            actor,
                            clock: clocks[&actor].clone(),
                            cycle: e.cycle,
                        },
                    );
                }
            }
            EventKind::Pop { vertex } => {
                if let Some(&first) = popped.get(&vertex) {
                    report.findings.push(RaceFinding {
                        rule: "duplicate-pop",
                        vertex,
                        detail: format!(
                            "expansion completed by {first:?} and again by {actor:?} at {} \
                             (lost update on the ring)",
                            e.cycle
                        ),
                    });
                    continue;
                }
                popped.insert(vertex, actor);
                match pushes.get(&vertex) {
                    None => {
                        report.findings.push(RaceFinding {
                            rule: "pop-before-push",
                            vertex,
                            detail: format!(
                                "popped by {actor:?} at {} with no prior push in the stream",
                                e.cycle
                            ),
                        });
                    }
                    Some(site) if site.actor != actor => {
                        if site.clock.le(&clocks[&actor]) {
                            report.ordered_transfers += 1;
                        } else {
                            report.findings.push(RaceFinding {
                                rule: "unsynchronized-transfer",
                                vertex,
                                detail: format!(
                                    "pushed by {:?} at {} but popped by {actor:?} at {} with no \
                                     steal edge ordering the transfer",
                                    site.actor, site.cycle, e.cycle
                                ),
                            });
                        }
                    }
                    Some(_) => {}
                }
            }
            EventKind::StealIntra { victim_warp, .. } => {
                let victim: Actor = (e.block, victim_warp);
                if victim != actor {
                    let vc = clock_upto(
                        victim,
                        e.cycle.saturating_add(cfg.skew),
                        &by_actor,
                        &mut cursor,
                        &mut clocks,
                        events,
                    );
                    clocks.entry(actor).or_default().join(&vc);
                    report.sync_edges += 1;
                }
            }
            // ColdSeg edges: the per-block cold segment is a locked
            // structure, so anything flushed into it happens-before
            // anything later pulled out of it (refill, inter-block
            // steal, recovery). `cold[b]` accumulates the flushers'
            // clocks; consumers join with it. This over-approximates
            // (a refill is ordered after *all* prior flushes, not just
            // the ones whose entries it took), which can only suppress
            // findings, never invent them.
            EventKind::Flush { .. } => {
                let ac = clocks[&actor].clone();
                cold.entry(e.block).or_default().join(&ac);
            }
            EventKind::Refill { .. } => {
                if let Some(cc) = cold.get(&e.block) {
                    clocks.entry(actor).or_default().join(cc);
                    report.sync_edges += 1;
                }
            }
            EventKind::StealInter { victim_block, .. } => {
                if let Some(cc) = cold.get(&victim_block) {
                    clocks.entry(actor).or_default().join(cc);
                }
                report.sync_edges += 1;
            }
            EventKind::Recover { victim_block, .. } => {
                // Recovery drains a killed SM's hot rings *and* its
                // cold segment; the victim's lanes are stopped, so
                // join with everything the block ever did.
                if let Some(cc) = cold.get(&victim_block) {
                    let cc = cc.clone();
                    clocks.entry(actor).or_default().join(&cc);
                }
                let deadline = e.cycle.saturating_add(cfg.skew);
                let victims: Vec<Actor> = by_actor
                    .keys()
                    .filter(|&&(b, _)| b == victim_block)
                    .copied()
                    .collect();
                for victim in victims {
                    if victim == actor {
                        continue;
                    }
                    let vc = clock_upto(
                        victim,
                        deadline,
                        &by_actor,
                        &mut cursor,
                        &mut clocks,
                        events,
                    );
                    clocks.entry(actor).or_default().join(&vc);
                }
                report.sync_edges += 1;
            }
            _ => {}
        }
    }
    report.actors = by_actor.len();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, block: u32, warp: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            block,
            warp,
            kind,
        }
    }

    fn wrap(mut body: Vec<TraceEvent>) -> Vec<TraceEvent> {
        let mut v = vec![ev(
            0,
            0,
            0,
            EventKind::KernelPhase {
                phase: PhaseKind::Start,
            },
        )];
        let last = body.iter().map(|e| e.cycle).max().unwrap_or(0);
        v.append(&mut body);
        v.push(ev(
            last + 1,
            0,
            0,
            EventKind::KernelPhase {
                phase: PhaseKind::Finish,
            },
        ));
        v
    }

    #[test]
    fn clean_single_actor_stream_is_green() {
        let t = wrap(vec![
            ev(1, 0, 0, EventKind::Push { vertex: 7 }),
            ev(2, 0, 0, EventKind::Pop { vertex: 7 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn steal_edge_orders_cross_actor_transfer() {
        let t = wrap(vec![
            ev(1, 0, 0, EventKind::Push { vertex: 7 }),
            ev(
                2,
                0,
                1,
                EventKind::StealIntra {
                    victim_warp: 0,
                    entries: 1,
                },
            ),
            ev(3, 0, 1, EventKind::Pop { vertex: 7 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.ordered_transfers, 1);
        assert_eq!(r.sync_edges, 1);
    }

    #[test]
    fn missing_steal_edge_is_flagged() {
        let t = wrap(vec![
            ev(1, 0, 0, EventKind::Push { vertex: 7 }),
            ev(3, 0, 1, EventKind::Pop { vertex: 7 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "unsynchronized-transfer");
    }

    #[test]
    fn duplicate_pop_is_flagged() {
        let t = wrap(vec![
            ev(1, 0, 0, EventKind::Push { vertex: 7 }),
            ev(2, 0, 0, EventKind::Pop { vertex: 7 }),
            ev(
                3,
                0,
                1,
                EventKind::StealIntra {
                    victim_warp: 0,
                    entries: 1,
                },
            ),
            ev(4, 0, 1, EventKind::Pop { vertex: 7 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert!(r.findings.iter().any(|f| f.rule == "duplicate-pop"));
    }

    #[test]
    fn flush_then_inter_block_steal_orders_the_transfer() {
        let t = wrap(vec![
            ev(1, 0, 1, EventKind::Push { vertex: 9 }),
            ev(2, 0, 1, EventKind::Flush { entries: 1 }),
            ev(
                3,
                1,
                0,
                EventKind::StealInter {
                    victim_block: 0,
                    entries: 1,
                },
            ),
            ev(4, 1, 0, EventKind::Pop { vertex: 9 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn flush_then_refill_orders_cross_warp_transfer() {
        let t = wrap(vec![
            ev(1, 0, 0, EventKind::Push { vertex: 9 }),
            ev(2, 0, 0, EventKind::Flush { entries: 1 }),
            ev(3, 0, 1, EventKind::Refill { entries: 1 }),
            ev(4, 0, 1, EventKind::Pop { vertex: 9 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.ordered_transfers, 1);
    }

    #[test]
    fn inter_block_steal_without_flush_is_not_ordered() {
        // An entry leaving a block that never flushed means the cold
        // edge cannot explain the transfer: flagged.
        let t = wrap(vec![
            ev(1, 0, 1, EventKind::Push { vertex: 9 }),
            ev(
                2,
                1,
                0,
                EventKind::StealInter {
                    victim_block: 0,
                    entries: 1,
                },
            ),
            ev(3, 1, 0, EventKind::Pop { vertex: 9 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, "unsynchronized-transfer");
    }

    #[test]
    fn recovery_joins_killed_block_lanes() {
        let t = wrap(vec![
            ev(1, 0, 1, EventKind::Push { vertex: 9 }),
            ev(2, 0, 1, EventKind::Fault { code: 0 }),
            ev(
                3,
                1,
                0,
                EventKind::Recover {
                    victim_block: 0,
                    entries: 1,
                },
            ),
            ev(4, 1, 0, EventKind::Pop { vertex: 9 }),
        ]);
        let r = detect(&t, &RaceConfig::default()).unwrap();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }

    #[test]
    fn skew_window_covers_late_victim_emission() {
        // The victim's Push lands at cycle 5, after the thief's steal
        // at cycle 4 (emission skew). Strict HB flags it; a skew of 2
        // accepts it.
        let body = vec![
            ev(
                4,
                0,
                1,
                EventKind::StealIntra {
                    victim_warp: 0,
                    entries: 1,
                },
            ),
            ev(5, 0, 0, EventKind::Push { vertex: 7 }),
            ev(6, 0, 1, EventKind::Pop { vertex: 7 }),
        ];
        let strict = detect(&wrap(body.clone()), &RaceConfig { skew: 0 }).unwrap();
        assert_eq!(strict.findings.len(), 1);
        let lax = detect(&wrap(body), &RaceConfig { skew: 2 }).unwrap();
        assert!(lax.findings.is_empty(), "{:?}", lax.findings);
    }

    #[test]
    fn unsound_stream_is_rejected() {
        // Finish before Start.
        let t = vec![
            ev(
                1,
                0,
                0,
                EventKind::KernelPhase {
                    phase: PhaseKind::Finish,
                },
            ),
            ev(
                2,
                0,
                0,
                EventKind::KernelPhase {
                    phase: PhaseKind::Start,
                },
            ),
        ];
        assert!(matches!(
            detect(&t, &RaceConfig::default()),
            Err(RaceError::BadInput(_))
        ));
    }
}
