//! Bounded schedule explorer — the loom-style core of the model checker.
//!
//! A [`Model`] describes a small concurrent system as a set of actors,
//! each an explicit state machine whose transitions are *individual
//! atomic accesses* (one load, one CAS, one store per step — the same
//! granularity the hardware interleaves). The explorer runs a DFS over
//! every schedule of those steps, deduplicating on full system states,
//! and checks the model's safety oracles on every reachable state plus
//! its end-to-end oracles on every quiescent (all-actors-done) state.
//!
//! Two reductions keep tiny configs tractable without losing soundness
//! for safety properties:
//!
//! * **State dedup** — the system is a transition graph, not a tree;
//!   each distinct state is expanded once. Any violation reachable by
//!   some schedule is still reached.
//! * **Persistent-set-style local-step collapse** — when an enabled
//!   actor's next step is *local* (touches only that actor's private
//!   state, e.g. advancing a scan index), it commutes with every step
//!   of every other actor, so the explorer commits the lowest such
//!   actor deterministically instead of branching. This is the trivial
//!   ample-set of DPOR: a singleton set containing an invisible step.
//!
//! Blocked actors (a spin loop whose condition is false) are simply not
//! enabled; a state where no actor is enabled and not every actor is
//! done is reported as a deadlock.

use std::collections::HashSet;
use std::hash::Hash;

/// Index of an actor within a model.
pub type ActorId = usize;

/// A failed oracle, with enough detail to debug the schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle failed (stable, test-matchable name).
    pub oracle: &'static str,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl Violation {
    /// Creates a violation.
    pub fn new(oracle: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            oracle,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.oracle, self.detail)
    }
}

/// A small concurrent system checkable by [`Explorer`].
pub trait Model {
    /// Full system state: shared memory + every actor's program counter
    /// and locals + ghost (specification) variables.
    type State: Clone + Hash + Eq;

    /// The initial state.
    fn initial(&self) -> Self::State;

    /// Number of actors.
    fn actors(&self) -> usize;

    /// Whether actor `a` has terminated in `s`.
    fn done(&self, s: &Self::State, a: ActorId) -> bool;

    /// Whether actor `a` can take a step in `s` (false while blocked on
    /// a spin condition, or when done).
    fn enabled(&self, s: &Self::State, a: ActorId) -> bool;

    /// Whether actor `a`'s *next* step is local (private state only).
    /// Local steps are committed without branching; claiming a shared
    /// step local is unsound, so when in doubt return `false`.
    fn is_local(&self, s: &Self::State, a: ActorId) -> bool;

    /// Applies actor `a`'s next atomic step. Protocol-level assertions
    /// (ghost-counter overflows, monotonicity breaks) surface as `Err`.
    fn step(&self, s: &Self::State, a: ActorId) -> Result<Self::State, Violation>;

    /// Safety oracles checked on every reachable state.
    fn check(&self, s: &Self::State) -> Result<(), Violation>;

    /// End-to-end oracles checked on quiescent states (all actors done).
    fn check_final(&self, s: &Self::State) -> Result<(), Violation>;
}

/// What the explorer found.
#[derive(Debug, Clone)]
pub enum Outcome {
    /// Every schedule satisfied every oracle.
    Pass(Stats),
    /// Some schedule violated an oracle; `schedule` is the actor-id
    /// sequence that reproduces it from the initial state.
    Fail {
        /// The failed oracle.
        violation: Violation,
        /// Actor ids, in order, that reproduce the violation.
        schedule: Vec<ActorId>,
        /// Exploration statistics up to the failure.
        stats: Stats,
    },
    /// The state or depth bound was exceeded before the search finished
    /// — the config is too big for exhaustive checking, which callers
    /// must treat as a failure, not a pass.
    BoundExceeded(Stats),
}

impl Outcome {
    /// Whether the search completed with no violation.
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass(_))
    }

    /// The statistics regardless of outcome.
    pub fn stats(&self) -> &Stats {
        match self {
            Outcome::Pass(s) => s,
            Outcome::Fail { stats, .. } => stats,
            Outcome::BoundExceeded(s) => s,
        }
    }
}

/// Exploration statistics.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    /// Distinct states expanded.
    pub states: u64,
    /// Transitions taken (including ones leading to already-seen states).
    pub transitions: u64,
    /// Transitions pruned because the successor state was already seen.
    pub deduped: u64,
    /// Quiescent states on which the final oracles ran.
    pub final_states: u64,
    /// Deepest schedule reached.
    pub max_depth: usize,
}

/// The bounded DFS schedule explorer.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Abort (as [`Outcome::BoundExceeded`]) after this many distinct
    /// states. Tiny protocol configs need well under a million.
    pub max_states: u64,
    /// Abort any single schedule longer than this many steps.
    pub max_depth: usize,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer {
            max_states: 20_000_000,
            max_depth: 100_000,
        }
    }
}

/// One DFS frame: the state, the schedule position that produced it,
/// and the branch actors still to try from it.
struct Frame<S> {
    state: S,
    branches: Vec<ActorId>,
    next_branch: usize,
}

impl Explorer {
    /// Exhaustively checks `model` over all schedules.
    pub fn run<M: Model>(&self, model: &M) -> Outcome {
        let mut stats = Stats::default();
        let initial = model.initial();
        if let Err(v) = model.check(&initial) {
            return Outcome::Fail {
                violation: v,
                schedule: Vec::new(),
                stats,
            };
        }
        let mut seen: HashSet<M::State> = HashSet::new();
        seen.insert(initial.clone());
        stats.states = 1;

        // The schedule (actor per level) runs parallel to the DFS stack.
        let mut stack: Vec<Frame<M::State>> = Vec::new();
        let mut schedule: Vec<ActorId> = Vec::new();

        match self.branches_of(model, &initial, &mut stats) {
            Ok(branches) => stack.push(Frame {
                state: initial,
                branches,
                next_branch: 0,
            }),
            Err(v) => {
                return Outcome::Fail {
                    violation: v,
                    schedule,
                    stats,
                }
            }
        }

        while let Some(top) = stack.last_mut() {
            if top.next_branch >= top.branches.len() {
                stack.pop();
                schedule.pop();
                continue;
            }
            let actor = top.branches[top.next_branch];
            top.next_branch += 1;
            let state = top.state.clone();
            schedule.push(actor);
            stats.transitions += 1;
            stats.max_depth = stats.max_depth.max(schedule.len());
            if schedule.len() > self.max_depth {
                return Outcome::BoundExceeded(stats);
            }
            let next = match model.step(&state, actor) {
                Ok(s) => s,
                Err(violation) => {
                    return Outcome::Fail {
                        violation,
                        schedule,
                        stats,
                    }
                }
            };
            if let Err(violation) = model.check(&next) {
                return Outcome::Fail {
                    violation,
                    schedule,
                    stats,
                };
            }
            if !seen.insert(next.clone()) {
                stats.deduped += 1;
                schedule.pop();
                continue;
            }
            stats.states += 1;
            if stats.states > self.max_states {
                return Outcome::BoundExceeded(stats);
            }
            let branches = match self.branches_of(model, &next, &mut stats) {
                Ok(b) => b,
                Err(violation) => {
                    return Outcome::Fail {
                        violation,
                        schedule,
                        stats,
                    }
                }
            };
            if branches.is_empty() {
                // Quiescent state: final oracles already ran; backtrack.
                schedule.pop();
                continue;
            }
            stack.push(Frame {
                state: next,
                branches,
                next_branch: 0,
            });
        }
        Outcome::Pass(stats)
    }

    /// The actors to branch over from `s`: a singleton for a local step
    /// (persistent-set collapse), every enabled actor otherwise. Runs
    /// the quiescence / deadlock checks as a side effect.
    fn branches_of<M: Model>(
        &self,
        model: &M,
        s: &M::State,
        stats: &mut Stats,
    ) -> Result<Vec<ActorId>, Violation> {
        let n = model.actors();
        let enabled: Vec<ActorId> = (0..n).filter(|&a| model.enabled(s, a)).collect();
        if enabled.is_empty() {
            let all_done = (0..n).all(|a| model.done(s, a));
            if all_done {
                stats.final_states += 1;
                model.check_final(s)?;
                return Ok(Vec::new());
            }
            let blocked: Vec<ActorId> = (0..n).filter(|&a| !model.done(s, a)).collect();
            return Err(Violation::new(
                "deadlock",
                format!("actors {blocked:?} blocked with no enabled step"),
            ));
        }
        if let Some(&local) = enabled.iter().find(|&&a| model.is_local(s, a)) {
            return Ok(vec![local]);
        }
        Ok(enabled)
    }
}

/// Replays `schedule` from the initial state, returning the violation
/// it ends in (if any) — used to render counterexamples. Mirrors the
/// explorer's full oracle set: step/state oracles along the way, the
/// final oracles if the end state is quiescent, and the deadlock check
/// if it is stuck.
pub fn replay<M: Model>(model: &M, schedule: &[ActorId]) -> Result<M::State, Violation> {
    let mut s = model.initial();
    model.check(&s)?;
    for &a in schedule {
        s = model.step(&s, a)?;
        model.check(&s)?;
    }
    let n = model.actors();
    if (0..n).all(|a| model.done(&s, a)) {
        model.check_final(&s)?;
    } else if (0..n).all(|a| !model.enabled(&s, a)) {
        let blocked: Vec<ActorId> = (0..n).filter(|&a| !model.done(&s, a)).collect();
        return Err(Violation::new(
            "deadlock",
            format!("actors {blocked:?} blocked with no enabled step"),
        ));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two actors each do `INC` non-atomic increments (load then store)
    /// on one shared counter — the canonical lost-update demo. With
    /// `atomic: false` the explorer must find a schedule where the final
    /// count is short; with `atomic: true` it must pass.
    struct CounterModel {
        atomic: bool,
        incs: u32,
    }

    #[derive(Clone, Debug, Hash, PartialEq, Eq)]
    struct CounterState {
        value: u32,
        // per actor: (increments left, loaded snapshot for the pending store)
        actors: Vec<(u32, Option<u32>)>,
    }

    impl Model for CounterModel {
        type State = CounterState;

        fn initial(&self) -> CounterState {
            CounterState {
                value: 0,
                actors: vec![(self.incs, None); 2],
            }
        }

        fn actors(&self) -> usize {
            2
        }

        fn done(&self, s: &CounterState, a: ActorId) -> bool {
            s.actors[a] == (0, None)
        }

        fn enabled(&self, s: &CounterState, a: ActorId) -> bool {
            !self.done(s, a)
        }

        fn is_local(&self, _s: &CounterState, _a: ActorId) -> bool {
            false
        }

        fn step(&self, s: &CounterState, a: ActorId) -> Result<CounterState, Violation> {
            let mut s = s.clone();
            let (left, pending) = s.actors[a];
            match pending {
                None => {
                    if self.atomic {
                        s.value += 1;
                        s.actors[a] = (left - 1, None);
                    } else {
                        s.actors[a] = (left, Some(s.value));
                    }
                }
                Some(loaded) => {
                    s.value = loaded + 1;
                    s.actors[a] = (left - 1, None);
                }
            }
            Ok(s)
        }

        fn check(&self, _s: &CounterState) -> Result<(), Violation> {
            Ok(())
        }

        fn check_final(&self, s: &CounterState) -> Result<(), Violation> {
            if s.value != 2 * self.incs {
                return Err(Violation::new(
                    "lost-update",
                    format!("final count {} != {}", s.value, 2 * self.incs),
                ));
            }
            Ok(())
        }
    }

    #[test]
    fn atomic_counter_passes() {
        let out = Explorer::default().run(&CounterModel {
            atomic: true,
            incs: 3,
        });
        assert!(out.passed(), "{out:?}");
        assert!(out.stats().final_states >= 1);
    }

    #[test]
    fn torn_counter_fails_with_replayable_schedule() {
        let model = CounterModel {
            atomic: false,
            incs: 2,
        };
        let out = Explorer::default().run(&model);
        let Outcome::Fail {
            violation,
            schedule,
            ..
        } = out
        else {
            panic!("expected a lost update, got {out:?}");
        };
        assert_eq!(violation.oracle, "lost-update");
        // The schedule must replay to the same violation: `replay` runs
        // the full oracle set, including `check_final` at quiescence.
        let replayed = replay(&model, &schedule).unwrap_err();
        assert_eq!(replayed.oracle, "lost-update");
    }

    #[test]
    fn bound_exceeded_is_not_a_pass() {
        let out = Explorer {
            max_states: 3,
            max_depth: 100,
        }
        .run(&CounterModel {
            atomic: true,
            incs: 3,
        });
        assert!(matches!(out, Outcome::BoundExceeded(_)));
        assert!(!out.passed());
    }
}
