//! Step-level model of `db-wal`'s commit / checkpoint / recovery
//! protocol — the durability contract behind crash-consistent dynamic
//! graphs.
//!
//! One writer commits records through the append → fsync → ack
//! sequence, a checkpointer runs the pack → tmp-manifest → rename →
//! truncate protocol, a crasher kills the process at exactly one
//! interleaving point per schedule (the explorer places it everywhere),
//! and a recoverer rebuilds state from the durable artifacts: the
//! renamed manifest's pack plus the durable WAL suffix past the
//! checkpoint LSN. Records are abstracted to their LSNs (append order);
//! a pack is the contiguous prefix of LSNs it covers.
//!
//! Crash semantics: the OS page cache evaporates — the WAL tail that
//! was appended but never fsynced is gone, and a tmp manifest that was
//! written but never renamed is invisible to recovery. What survives
//! is exactly what the protocol made durable, in order.
//!
//! Oracles (checked by the recoverer's step):
//!
//! * **no lost ack** — every record acknowledged before the crash is
//!   in the recovered state (from the pack or from replay);
//! * **no double apply** — no record reaches the recovered state
//!   twice (checkpoint-covered records must be *skipped* by replay).
//!
//! [`WalMutation`] seeds the bug classes the protocol ordering exists
//! to prevent: acknowledging before the fsync, replaying from LSN 0
//! while ignoring the manifest, and truncating the WAL before the
//! manifest swap lands.

use crate::explore::{ActorId, Model, Violation};

/// A seeded durability bug for the mutation tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMutation {
    /// The writer acknowledges at append time, before the fsync — a
    /// crash in the window loses an acknowledged record.
    AckBeforeFsync,
    /// Recovery replays every durable WAL record from LSN 0, ignoring
    /// the manifest's checkpoint LSN — pack-covered records apply twice.
    ReplayFromZero,
    /// The checkpointer truncates the WAL *before* the manifest swap —
    /// a crash in the window leaves neither the records nor a manifest
    /// that knows about the pack.
    TruncateBeforeManifest,
}

impl WalMutation {
    /// Every mutation, for exhaustive mutation tests.
    pub const ALL: [WalMutation; 3] = [
        WalMutation::AckBeforeFsync,
        WalMutation::ReplayFromZero,
        WalMutation::TruncateBeforeManifest,
    ];
}

/// Configuration of one durability check.
#[derive(Debug, Clone)]
pub struct WalScenario {
    /// Records the writer commits.
    pub writes: u8,
    /// Checkpoint attempts the checkpointer makes.
    pub checkpoints: u8,
    /// The seeded bug, or `None` for the faithful protocol.
    pub mutation: Option<WalMutation>,
}

impl WalScenario {
    /// The default exhaustive config: 2 commits, 1 checkpoint — small
    /// enough to explore fully, large enough that the crash lands in
    /// every window of both protocols (mid-commit, between pack and
    /// rename, between rename and truncate).
    pub fn small() -> Self {
        WalScenario {
            writes: 2,
            checkpoints: 1,
            mutation: None,
        }
    }

    /// Same scenario with a seeded bug.
    pub fn with_mutation(mut self, m: WalMutation) -> Self {
        self.mutation = Some(m);
        self
    }
}

/// Writer program counter: one commit is append → fsync → ack.
#[derive(Debug, Clone, Copy, Hash, PartialEq, Eq)]
enum WriterPc {
    Append { remaining: u8 },
    Fsync { remaining: u8 },
    Ack { remaining: u8 },
    Exit,
}

/// Checkpointer program counter: pack → tmp → rename → truncate (the
/// `TruncateBeforeManifest` mutation reorders truncate first).
#[derive(Debug, Clone, Copy, Hash, PartialEq, Eq)]
enum CkptPc {
    Idle { remaining: u8 },
    Tmp { remaining: u8, upto: u8 },
    Rename { remaining: u8, upto: u8 },
    Truncate { remaining: u8, upto: u8 },
    Exit,
}

/// Full system state. LSNs fit in `u8` (the scenarios are tiny).
#[derive(Debug, Clone, Hash, PartialEq, Eq)]
pub struct WalState {
    /// Records appended to the WAL (OS buffer): LSNs `0..appended`.
    appended: u8,
    /// Durable (fsynced) prefix: LSNs `0..durable` survive a crash.
    durable: u8,
    /// Records acknowledged to the client (acks are in LSN order).
    acked: u8,
    /// Low-water mark: WAL records below this LSN have been truncated.
    truncated_below: u8,
    /// Durable pack snapshot covering LSNs `0..n`, if one was written.
    pack: Option<u8>,
    /// Tmp manifest: written and synced, rename pending. Lost on crash.
    tmp_manifest: Option<u8>,
    /// The renamed (durable) manifest: checkpoint covers LSNs `0..n`.
    manifest: Option<u8>,
    /// Set once the crasher fired; writer and checkpointer stop.
    crashed: bool,
    /// Set once the recoverer ran its oracles.
    recovered: bool,
    writer: WriterPc,
    ckpt: CkptPc,
}

/// The checkable model. Actor order: writer, checkpointer, crasher,
/// recoverer.
#[derive(Debug, Clone)]
pub struct WalModel {
    /// The scenario being checked.
    pub scenario: WalScenario,
}

impl WalModel {
    /// Creates the model for a scenario.
    pub fn new(scenario: WalScenario) -> Self {
        WalModel { scenario }
    }

    fn mutation(&self) -> Option<WalMutation> {
        self.scenario.mutation
    }
}

impl Model for WalModel {
    type State = WalState;

    fn initial(&self) -> WalState {
        WalState {
            appended: 0,
            durable: 0,
            acked: 0,
            truncated_below: 0,
            pack: None,
            tmp_manifest: None,
            manifest: None,
            crashed: false,
            recovered: false,
            writer: if self.scenario.writes > 0 {
                WriterPc::Append {
                    remaining: self.scenario.writes,
                }
            } else {
                WriterPc::Exit
            },
            ckpt: if self.scenario.checkpoints > 0 {
                CkptPc::Idle {
                    remaining: self.scenario.checkpoints,
                }
            } else {
                CkptPc::Exit
            },
        }
    }

    fn actors(&self) -> usize {
        4
    }

    fn done(&self, s: &WalState, a: ActorId) -> bool {
        match a {
            0 => s.crashed || s.writer == WriterPc::Exit,
            1 => s.crashed || s.ckpt == CkptPc::Exit,
            2 => s.crashed,
            _ => s.recovered,
        }
    }

    fn enabled(&self, s: &WalState, a: ActorId) -> bool {
        if self.done(s, a) {
            return false;
        }
        // The recoverer runs only on the post-crash state.
        a != 3 || s.crashed
    }

    fn is_local(&self, _s: &WalState, _a: ActorId) -> bool {
        false
    }

    fn step(&self, s: &WalState, a: ActorId) -> Result<WalState, Violation> {
        let mut s = s.clone();
        match a {
            // Writer: append → fsync → ack, one phase per step.
            0 => {
                s.writer = match s.writer {
                    WriterPc::Append { remaining } => {
                        s.appended += 1;
                        if self.mutation() == Some(WalMutation::AckBeforeFsync) {
                            s.acked = s.appended;
                        }
                        WriterPc::Fsync { remaining }
                    }
                    WriterPc::Fsync { remaining } => {
                        s.durable = s.appended;
                        WriterPc::Ack { remaining }
                    }
                    WriterPc::Ack { remaining } => {
                        // Faithful protocol acks here, strictly after
                        // the fsync; the mutation already acked.
                        if self.mutation() != Some(WalMutation::AckBeforeFsync) {
                            s.acked = s.appended;
                        }
                        if remaining > 1 {
                            WriterPc::Append {
                                remaining: remaining - 1,
                            }
                        } else {
                            WriterPc::Exit
                        }
                    }
                    WriterPc::Exit => unreachable!("stepping an exited writer"),
                };
            }
            // Checkpointer: pack → tmp-manifest → rename → truncate.
            1 => {
                s.ckpt = match s.ckpt {
                    CkptPc::Idle { remaining } => {
                        let upto = s.durable;
                        if upto <= s.manifest.unwrap_or(0) {
                            // Nothing new to cover: the attempt is
                            // consumed with zero state changes.
                            if remaining > 1 {
                                CkptPc::Idle {
                                    remaining: remaining - 1,
                                }
                            } else {
                                CkptPc::Exit
                            }
                        } else {
                            // Pack phase: a durable snapshot covering
                            // every record up to the decided LSN.
                            s.pack = Some(upto);
                            if self.mutation() == Some(WalMutation::TruncateBeforeManifest) {
                                // Bug: drop the WAL records first.
                                s.truncated_below = s.truncated_below.max(upto);
                            }
                            CkptPc::Tmp { remaining, upto }
                        }
                    }
                    CkptPc::Tmp { remaining, upto } => {
                        s.tmp_manifest = Some(upto);
                        CkptPc::Rename { remaining, upto }
                    }
                    CkptPc::Rename { remaining, upto } => {
                        s.manifest = s.tmp_manifest.take();
                        CkptPc::Truncate { remaining, upto }
                    }
                    CkptPc::Truncate { remaining, upto } => {
                        if self.mutation() != Some(WalMutation::TruncateBeforeManifest) {
                            s.truncated_below = s.truncated_below.max(upto);
                        }
                        if remaining > 1 {
                            CkptPc::Idle {
                                remaining: remaining - 1,
                            }
                        } else {
                            CkptPc::Exit
                        }
                    }
                    CkptPc::Exit => unreachable!("stepping an exited checkpointer"),
                };
            }
            // Crasher: the page cache evaporates — the unsynced WAL
            // tail and the un-renamed tmp manifest are gone.
            2 => {
                s.crashed = true;
                s.appended = s.durable;
                s.tmp_manifest = None;
            }
            // Recoverer: rebuild from the durable artifacts and run
            // the two durability oracles.
            _ => {
                let covered = s.manifest.unwrap_or(0);
                // Replay floor: faithful recovery skips records the
                // checkpoint already covers; the mutation replays the
                // whole durable WAL.
                let floor = if self.mutation() == Some(WalMutation::ReplayFromZero) {
                    s.truncated_below
                } else {
                    covered.max(s.truncated_below)
                };
                // Sized to cover every acked LSN too: a crash drops the
                // unsynced tail below an early ack, and the oracle must
                // still look at the lost record's slot.
                let mut recovered = vec![0u8; s.appended.max(covered).max(s.acked) as usize];
                for lsn in 0..covered {
                    recovered[lsn as usize] += 1;
                }
                for lsn in floor..s.durable {
                    recovered[lsn as usize] += 1;
                }
                for (lsn, &n) in recovered.iter().enumerate() {
                    if n > 1 {
                        return Err(Violation::new(
                            "double-apply",
                            format!("record {lsn} applied {n} times during recovery"),
                        ));
                    }
                    if (lsn as u8) < s.acked && n == 0 {
                        return Err(Violation::new(
                            "lost-ack",
                            format!("acknowledged record {lsn} missing after recovery"),
                        ));
                    }
                }
                s.recovered = true;
            }
        }
        Ok(s)
    }

    fn check(&self, s: &WalState) -> Result<(), Violation> {
        if s.durable > s.appended {
            return Err(Violation::new(
                "durable-overrun",
                format!("durable {} past appended {}", s.durable, s.appended),
            ));
        }
        if let Some(m) = s.manifest {
            if s.pack.is_none_or(|p| p < m) {
                return Err(Violation::new(
                    "dangling-manifest",
                    format!("manifest covers {m} but no pack reaches it"),
                ));
            }
        }
        Ok(())
    }

    fn check_final(&self, s: &WalState) -> Result<(), Violation> {
        if s.crashed && !s.recovered {
            return Err(Violation::new(
                "no-recovery",
                "crashed schedule quiesced without running recovery".to_string(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{replay, Explorer, Outcome};

    #[test]
    fn faithful_protocol_has_no_counterexample() {
        let model = WalModel::new(WalScenario::small());
        match Explorer::default().run(&model) {
            Outcome::Pass(stats) => {
                assert!(stats.states > 50, "exploration too shallow: {stats:?}");
                assert!(stats.final_states > 0);
            }
            other => panic!("faithful model must pass, got {other:?}"),
        }
    }

    #[test]
    fn every_mutation_is_caught_and_replays() {
        for m in WalMutation::ALL {
            let model = WalModel::new(WalScenario::small().with_mutation(m));
            match Explorer::default().run(&model) {
                Outcome::Fail {
                    violation,
                    schedule,
                    ..
                } => {
                    let expected = match m {
                        WalMutation::AckBeforeFsync => "lost-ack",
                        WalMutation::ReplayFromZero => "double-apply",
                        WalMutation::TruncateBeforeManifest => "lost-ack",
                    };
                    assert_eq!(violation.oracle, expected, "{m:?}");
                    let replayed = replay(&model, &schedule)
                        .expect_err("replaying a failing schedule must re-fail");
                    assert_eq!(replayed.oracle, expected, "{m:?} replay");
                }
                other => panic!("{m:?} must be caught, got {other:?}"),
            }
        }
    }

    #[test]
    fn replay_from_zero_needs_a_checkpoint_to_fire() {
        // With no checkpointer there is never a manifest, so "replay
        // everything from the WAL" coincides with faithful recovery.
        let mut sc = WalScenario::small().with_mutation(WalMutation::ReplayFromZero);
        sc.checkpoints = 0;
        let model = WalModel::new(sc);
        assert!(
            matches!(Explorer::default().run(&model), Outcome::Pass(_)),
            "no checkpoint, no double apply"
        );
    }
}
