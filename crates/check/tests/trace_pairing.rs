//! Every engine's trace stream must be structurally sound: exactly one
//! balanced `KernelPhase Start`/`Finish` pair bracketing the run, and
//! non-decreasing cycles within each `(block, warp)` lane. This is the
//! input contract of the `db-check` race detector and both exporters,
//! enforced here per engine via `db_trace::validate::check_stream`
//! (and, in debug builds, again at record time inside
//! `RingBufferTracer`).

use db_baselines::cpu_ws::{self, CpuWsConfig, CpuWsStyle};
use db_baselines::deque_dfs;
use db_core::native::{NativeConfig, NativeEngine};
use db_core::native_lockfree::LockFreeEngine;
use db_core::{run_sim_traced, DiggerBeesConfig};
use db_gpu_sim::machine::MachineModel;
use db_graph::{CsrGraph, GraphBuilder};
use db_trace::validate::check_stream;
use db_trace::{RingBufferTracer, TraceEvent};

fn grid(w: u32, h: u32) -> CsrGraph {
    let mut b = GraphBuilder::undirected(w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.edge(y * w + x, y * w + x + 1);
            }
            if y + 1 < h {
                b.edge(y * w + x, (y + 1) * w + x);
            }
        }
    }
    b.build()
}

fn small_cfg() -> DiggerBeesConfig {
    DiggerBeesConfig {
        blocks: 2,
        warps_per_block: 2,
        hot_size: 16,
        hot_cutoff: 4,
        cold_cutoff: 8,
        flush_batch: 8,
        ..Default::default()
    }
}

/// Drains the tracer and asserts the stream contract for one engine.
fn assert_sound(name: &str, tracer: &RingBufferTracer) -> Vec<TraceEvent> {
    assert_eq!(tracer.dropped(), 0, "{name}: trace truncated");
    let events = tracer.drain();
    let summary =
        check_stream(&events).unwrap_or_else(|e| panic!("{name}: unsound trace stream: {e}"));
    assert_eq!(summary.runs, 1, "{name}: expected one Start/Finish pair");
    assert!(summary.events > 2, "{name}: stream has no payload events");
    events
}

#[test]
fn sim_engine_stream_is_sound() {
    let g = grid(12, 12);
    let tracer = RingBufferTracer::new(1 << 18);
    run_sim_traced(&g, 0, &small_cfg(), &MachineModel::a100(), &tracer);
    assert_sound("sim", &tracer);
}

#[test]
fn native_engine_stream_is_sound() {
    let g = grid(12, 12);
    let tracer = RingBufferTracer::new(1 << 18);
    NativeEngine::new(NativeConfig { algo: small_cfg() }).run_traced(&g, 0, &tracer);
    assert_sound("native", &tracer);
}

#[test]
fn lockfree_engine_stream_is_sound() {
    let g = grid(12, 12);
    let tracer = RingBufferTracer::new(1 << 18);
    LockFreeEngine::new(NativeConfig { algo: small_cfg() }).run_traced(&g, 0, &tracer);
    assert_sound("lockfree", &tracer);
}

#[test]
fn deque_baseline_stream_is_sound() {
    let g = grid(12, 12);
    let tracer = RingBufferTracer::new(1 << 18);
    deque_dfs::run_traced(&g, 0, 4, 7, &tracer);
    assert_sound("deque", &tracer);
}

#[test]
fn cpu_ws_baseline_streams_are_sound() {
    let g = grid(12, 12);
    for style in [CpuWsStyle::Ckl, CpuWsStyle::Acr] {
        let tracer = RingBufferTracer::new(1 << 18);
        cpu_ws::run_traced(
            &g,
            0,
            style,
            &CpuWsConfig::default(),
            &MachineModel::xeon_max(),
            &tracer,
        );
        assert_sound(&format!("cpu_ws {style:?}"), &tracer);
    }
}

#[test]
fn sim_trace_is_race_free_under_strict_happens_before() {
    // The deterministic simulator's stream must pass the detector with
    // zero skew: DES cycles are exact, so every cross-lane transfer is
    // explained by a steal/flush edge or the finding is real.
    let g = grid(16, 16);
    let tracer = RingBufferTracer::new(1 << 20);
    run_sim_traced(&g, 0, &small_cfg(), &MachineModel::a100(), &tracer);
    let events = assert_sound("sim", &tracer);
    let report = db_check::race::detect(&events, &db_check::race::RaceConfig { skew: 0 })
        .expect("validated stream");
    assert!(
        report.findings.is_empty(),
        "races reported on a correct sim run: {:#?}",
        report.findings
    );
    assert!(report.sync_edges > 0, "no sync edges seen: {report:?}");
}

#[test]
fn native_lockfree_trace_is_race_free_with_skew() {
    // Native timestamps come from per-thread clocks read *around* the
    // protocol actions, not atomically with them; a small skew window
    // absorbs that emission jitter (see db_check::race docs).
    let g = grid(16, 16);
    let tracer = RingBufferTracer::new(1 << 20);
    LockFreeEngine::new(NativeConfig { algo: small_cfg() }).run_traced(&g, 0, &tracer);
    let events = assert_sound("lockfree", &tracer);
    let report = db_check::race::detect(&events, &db_check::race::RaceConfig { skew: 1_000_000 })
        .expect("validated stream");
    assert!(
        report.findings.is_empty(),
        "races reported on a correct lockfree run: {:#?}",
        report.findings
    );
}
