//! Mutation coverage: every seeded protocol bug must be caught by the
//! bounded model checker, and the faithful protocols must pass — the
//! checker's own false-positive/false-negative regression suite.

use db_check::explore::{replay, Explorer, Outcome};
use db_check::proto_model::{ProtoModel, ProtoMutation, ProtoScenario};
use db_check::ring_model::{RingModel, RingMutation, RingScenario};

fn explorer() -> Explorer {
    Explorer::default()
}

#[test]
fn faithful_ring_protocol_passes() {
    let outcome = explorer().run(&RingModel::new(RingScenario::small()));
    assert!(
        outcome.passed(),
        "faithful StampedRing transcription failed: {outcome:?}"
    );
    let stats = outcome.stats();
    assert!(stats.states > 100, "suspiciously small space: {stats:?}");
    assert!(stats.final_states > 0);
}

#[test]
fn every_ring_mutation_is_caught_and_replayable() {
    for m in RingMutation::ALL {
        let model = RingModel::new(RingScenario::small().with_mutation(m));
        match explorer().run(&model) {
            Outcome::Fail {
                violation,
                schedule,
                ..
            } => {
                // The counterexample schedule must reproduce the same
                // oracle failure from the initial state.
                let replayed =
                    replay(&model, &schedule).expect_err("replay of a counterexample must fail");
                assert_eq!(
                    replayed.oracle, violation.oracle,
                    "{m:?}: replay diverged from the reported violation"
                );
            }
            other => panic!("mutation {m:?} escaped the model checker: {other:?}"),
        }
    }
}

#[test]
fn faithful_handshake_passes_on_all_shapes() {
    for (name, sc) in [
        ("path4", ProtoScenario::path4(2)),
        ("star4", ProtoScenario::star4(2)),
        ("diamond4", ProtoScenario::diamond4(2)),
    ] {
        let outcome = explorer().run(&ProtoModel::new(sc));
        assert!(outcome.passed(), "faithful {name} failed: {outcome:?}");
    }
}

#[test]
fn every_proto_mutation_is_caught_and_replayable() {
    // Each mutation paired with the graph shape that exposes it:
    // the termination race needs depth (path), the double-steal needs
    // fan-out (star), the visited race needs two parents of one child
    // (diamond).
    let cases = [
        (ProtoMutation::PublishBeforeLive, ProtoScenario::path4(2)),
        (ProtoMutation::StealDuplicates, ProtoScenario::star4(2)),
        (ProtoMutation::SkipVisitedCas, ProtoScenario::diamond4(2)),
    ];
    assert_eq!(cases.len(), ProtoMutation::ALL.len());
    for (m, sc) in cases {
        let model = ProtoModel::new(sc.with_mutation(m));
        match explorer().run(&model) {
            Outcome::Fail {
                violation,
                schedule,
                ..
            } => {
                let replayed =
                    replay(&model, &schedule).expect_err("replay of a counterexample must fail");
                assert_eq!(
                    replayed.oracle, violation.oracle,
                    "{m:?}: replay diverged from the reported violation"
                );
            }
            other => panic!("mutation {m:?} escaped the model checker: {other:?}"),
        }
    }
}

#[test]
fn three_worker_handshake_still_passes() {
    // One size up from the mutation configs: the faithful handshake
    // with a third worker (more steal interleavings) stays green.
    let outcome = explorer().run(&ProtoModel::new(ProtoScenario::star4(3)));
    assert!(outcome.passed(), "{outcome:?}");
}
