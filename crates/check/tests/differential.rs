//! Differential tests: the ring model checks a *transcription* of
//! `StampedRing`, so these tests pin the transcription's semantic
//! assumptions to the real implementation:
//!
//! 1. the real ring, driven sequentially, matches the reference
//!    semantics the model encodes (LIFO owner end, FIFO steal end,
//!    `min`-cutoff and `k`-clamp on steals, push-fails-when-full);
//! 2. the real ring, driven concurrently with the exact actor shape of
//!    [`RingScenario::small`], satisfies the model's oracles (every
//!    value consumed exactly once, quiescent at the end).
//!
//! If the real protocol ever drifts from the model, one of these fails
//! and the model must be re-transcribed before its green runs mean
//! anything again.

use db_check::ring_model::RingScenario;
use db_core::lockfree::StampedRing;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Reference semantics of the ring as the model transcribes them:
/// owner pushes/pops at the front (LIFO), thieves take from the back
/// (oldest first).
#[derive(Debug, Default)]
struct Reference {
    deque: VecDeque<(u32, u32)>,
    cap: usize,
}

impl Reference {
    fn push(&mut self, e: (u32, u32)) -> Result<(), (u32, u32)> {
        if self.deque.len() >= self.cap {
            return Err(e);
        }
        self.deque.push_front(e);
        Ok(())
    }

    fn pop(&mut self) -> Option<(u32, u32)> {
        self.deque.pop_front()
    }

    fn take_from_tail(&mut self, k: u32, min: u32) -> Vec<(u32, u32)> {
        if (self.deque.len() as u32) < min {
            return Vec::new();
        }
        let take = k.min(self.deque.len() as u32) as usize;
        let mut out = Vec::with_capacity(take);
        for _ in 0..take {
            out.push(self.deque.pop_back().expect("len checked"));
        }
        out
    }
}

#[test]
fn sequential_ops_match_the_reference_semantics() {
    for seed in 0..20u64 {
        let mut rng = SmallRng::seed_from_u64(0xD1FF ^ seed);
        let cap = rng.gen_range(2u32..=5);
        let ring = StampedRing::new(cap);
        let mut reference = Reference {
            deque: VecDeque::new(),
            cap: cap as usize,
        };
        let mut next = 0u32;
        for _ in 0..400 {
            match rng.gen_range(0u32..3) {
                0 => {
                    let e = (next, next.wrapping_mul(3));
                    next += 1;
                    assert_eq!(
                        ring.push(e).is_ok(),
                        reference.push(e).is_ok(),
                        "push full/ok disagreement at cap {cap}"
                    );
                }
                1 => {
                    assert_eq!(ring.pop(), reference.pop(), "pop disagreement");
                }
                _ => {
                    let k = rng.gen_range(1u32..=3);
                    let min = rng.gen_range(1u32..=2);
                    // Sequentially there is no contention, so one
                    // attempt never races out.
                    assert_eq!(
                        ring.take_from_tail(k, min, 1),
                        reference.take_from_tail(k, min),
                        "steal disagreement (k {k}, min {min})"
                    );
                }
            }
            assert_eq!(ring.len() as usize, reference.deque.len());
        }
    }
}

#[test]
fn concurrent_small_scenario_upholds_the_model_oracles() {
    // The same actor shape as RingScenario::small(), on the real ring:
    // one owner pushing `values` entries (popping when full, then
    // draining), `thieves` thieves each doing `rounds` bounded steals.
    // Scaled up and repeated so real interleavings actually happen.
    let sc = RingScenario::small();
    for round in 0..50u64 {
        let values = sc.values * 40;
        let ring = StampedRing::new(sc.capacity);
        let consumed = Mutex::new(vec![0u8; values as usize]);
        let done = AtomicBool::new(false);
        let consume = |batch: &[(u32, u32)]| {
            let mut c = consumed.lock().unwrap();
            for &(v, _) in batch {
                c[v as usize] += 1;
            }
        };
        std::thread::scope(|scope| {
            for _ in 0..sc.thieves {
                scope.spawn(|| {
                    while !done.load(Ordering::Acquire) {
                        let got = ring.take_from_tail(sc.steal_k, sc.steal_min, sc.steal_attempts);
                        consume(&got);
                        std::hint::spin_loop();
                    }
                });
            }
            // Owner: push all values, popping one when full; then drain.
            for v in 0..values {
                let mut e = (v, round as u32);
                while let Err(back) = ring.push(e) {
                    if let Some(got) = ring.pop() {
                        consume(&[got]);
                    }
                    e = back;
                }
            }
            while let Some(got) = ring.pop() {
                consume(&[got]);
            }
            done.store(true, Ordering::Release);
        });
        // The model's final oracles, on the real execution.
        assert!(ring.is_empty(), "ring not quiescent after drain");
        let c = consumed.into_inner().unwrap();
        for (v, &n) in c.iter().enumerate() {
            assert_eq!(n, 1, "value {v} consumed {n} times (round {round})");
        }
    }
}
