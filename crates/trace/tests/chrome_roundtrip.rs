//! Property tests for the Chrome-trace exporter: serializing an event
//! stream to a Chrome trace document and parsing it back must preserve
//! every event exactly once, in order, and the per-lane timestamp
//! monotonicity of the input stream.

use db_trace::chrome::{chrome_trace_document, events_from_document};
use db_trace::json::Value;
use db_trace::{EventKind, PhaseKind, TraceEvent};
use proptest::prelude::*;
use std::collections::HashMap;

/// Maps raw generated integers onto every event-kind variant so each
/// payload shape goes through the exporter.
fn mk_kind(sel: u32, a: u32, b: u32) -> EventKind {
    match sel % 9 {
        0 => EventKind::Push { vertex: a },
        1 => EventKind::Pop { vertex: a },
        2 => EventKind::Flush { entries: b },
        3 => EventKind::Refill { entries: b },
        4 => EventKind::StealIntra {
            victim_warp: a % 64,
            entries: b,
        },
        5 => EventKind::StealInter {
            victim_block: a % 256,
            entries: b,
        },
        6 => EventKind::StealFail { victim: a % 256 },
        7 => EventKind::WarpIdle,
        _ => EventKind::KernelPhase {
            phase: if a.is_multiple_of(2) {
                PhaseKind::Start
            } else {
                PhaseKind::Finish
            },
        },
    }
}

proptest! {
    #[test]
    fn chrome_round_trip_preserves_stream(
        raw in proptest::collection::vec(
            (0u64..1_000_000, 0u32..6, 0u32..4, 0u32..1_000_000),
            0..200,
        )
    ) {
        let mut events: Vec<TraceEvent> = raw
            .iter()
            .map(|&(cycle, block, warp, x)| TraceEvent {
                cycle,
                block,
                warp,
                kind: mk_kind(x, x.wrapping_mul(31) % 9973, x % 4096),
            })
            .collect();
        // Engines emit in nondecreasing cycle order; model that here so
        // the lane-monotonicity property below is meaningful.
        events.sort_by_key(|e| e.cycle);

        // Full pipeline: document -> JSON text -> parse -> events.
        let text = chrome_trace_document(&events).to_json();
        let doc = Value::parse(&text).expect("exporter emits valid JSON");
        let back = events_from_document(&doc);

        // Every event exactly once, order preserved.
        prop_assert_eq!(&back, &events);

        // Timestamps stay monotone within each (block, warp) lane.
        let mut last: HashMap<(u32, u32), u64> = HashMap::new();
        for e in &back {
            let prev = last.entry((e.block, e.warp)).or_insert(0);
            prop_assert!(
                e.cycle >= *prev,
                "lane ({}, {}) went backwards: {} after {}",
                e.block,
                e.warp,
                e.cycle,
                *prev
            );
            *prev = e.cycle;
        }
    }

    #[test]
    fn chrome_metadata_covers_every_lane(
        raw in proptest::collection::vec((0u32..8, 0u32..4), 1..64)
    ) {
        let events: Vec<TraceEvent> = raw
            .iter()
            .enumerate()
            .map(|(i, &(block, warp))| TraceEvent {
                cycle: i as u64,
                block,
                warp,
                kind: EventKind::WarpIdle,
            })
            .collect();
        let doc = chrome_trace_document(&events);
        let items = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents");

        // Collect the (pid, tid) lanes named by metadata records.
        let mut named_threads = Vec::new();
        let mut named_processes = Vec::new();
        for it in items {
            if it.get("ph").and_then(|p| p.as_str()) != Some("M") {
                continue;
            }
            let pid = it.get("pid").and_then(|p| p.as_u64()).unwrap() as u32;
            match it.get("name").and_then(|n| n.as_str()) {
                Some("thread_name") => {
                    let tid = it.get("tid").and_then(|t| t.as_u64()).unwrap() as u32;
                    named_threads.push((pid, tid));
                }
                Some("process_name") => named_processes.push(pid),
                _ => {}
            }
        }
        for e in &events {
            prop_assert!(named_processes.contains(&e.block));
            prop_assert!(named_threads.contains(&(e.block, e.warp)));
        }
    }
}
