//! Tracer implementations.
//!
//! The `Tracer` trait carries an associated `const ENABLED`. Engines are
//! generic over `T: Tracer` and route every emission through [`emit`],
//! which guards on `T::ENABLED` — a compile-time constant, so for
//! `NullTracer` the branch *and the closure that would construct the
//! event* fold away entirely. The instrumented hot path compiles to the
//! same code as the uninstrumented one (the criterion `ring_ops` /
//! `native` benches are the regression check on this claim).

use crate::event::{EventKind, TraceEvent};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A sink for trace events. Implementations must be cheap and
/// thread-safe: `record` is called from every worker.
pub trait Tracer: Sync {
    /// When `false`, `emit` compiles to nothing; `record` is never called.
    const ENABLED: bool;

    fn record(&self, ev: TraceEvent);
}

/// Records an event only if the tracer type is enabled. The closure runs
/// only when `T::ENABLED`, so event construction costs nothing when
/// tracing is compiled out.
#[inline(always)]
pub fn emit<T: Tracer>(tracer: &T, ev: impl FnOnce() -> TraceEvent) {
    if T::ENABLED {
        tracer.record(ev());
    }
}

/// The disabled tracer: zero size, zero overhead.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&self, _ev: TraceEvent) {}
}

/// Aggregate counters: total events per kind, entry totals for bulk
/// transfers, and a per-block Push histogram (the paper's Fig. 9
/// per-block task distribution, derived from the stream instead of
/// hard-wired `SimStats` increments).
#[derive(Debug)]
pub struct CountingTracer {
    kind_counts: [AtomicU64; EventKind::COUNT],
    pushes_per_block: Vec<AtomicU64>,
    entries_flushed: AtomicU64,
    entries_refilled: AtomicU64,
    entries_stolen_intra: AtomicU64,
    entries_stolen_inter: AtomicU64,
}

/// Plain-data snapshot of a [`CountingTracer`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    pub pushes: u64,
    pub pops: u64,
    pub flushes: u64,
    pub refills: u64,
    pub steals_intra: u64,
    pub steals_inter: u64,
    pub steal_fails: u64,
    pub warp_idles: u64,
    pub kernel_phases: u64,
    pub serve_events: u64,
    pub pushes_per_block: Vec<u64>,
    pub entries_flushed: u64,
    pub entries_refilled: u64,
    pub entries_stolen_intra: u64,
    pub entries_stolen_inter: u64,
}

impl CountingTracer {
    /// `blocks` sizes the per-block Push histogram; events from blocks
    /// beyond it still count toward the totals.
    pub fn new(blocks: usize) -> Self {
        CountingTracer {
            kind_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            pushes_per_block: (0..blocks).map(|_| AtomicU64::new(0)).collect(),
            entries_flushed: AtomicU64::new(0),
            entries_refilled: AtomicU64::new(0),
            entries_stolen_intra: AtomicU64::new(0),
            entries_stolen_inter: AtomicU64::new(0),
        }
    }

    pub fn snapshot(&self) -> CounterSnapshot {
        let k = |i: usize| self.kind_counts[i].load(Ordering::Relaxed);
        CounterSnapshot {
            pushes: k(0),
            pops: k(1),
            flushes: k(2),
            refills: k(3),
            steals_intra: k(4),
            steals_inter: k(5),
            steal_fails: k(6),
            warp_idles: k(7),
            kernel_phases: k(8),
            serve_events: k(9),
            pushes_per_block: self
                .pushes_per_block
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            entries_flushed: self.entries_flushed.load(Ordering::Relaxed),
            entries_refilled: self.entries_refilled.load(Ordering::Relaxed),
            entries_stolen_intra: self.entries_stolen_intra.load(Ordering::Relaxed),
            entries_stolen_inter: self.entries_stolen_inter.load(Ordering::Relaxed),
        }
    }
}

impl Tracer for CountingTracer {
    const ENABLED: bool = true;

    fn record(&self, ev: TraceEvent) {
        self.kind_counts[ev.kind.index()].fetch_add(1, Ordering::Relaxed);
        match ev.kind {
            EventKind::Push { .. } => {
                if let Some(c) = self.pushes_per_block.get(ev.block as usize) {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
            EventKind::Flush { entries } => {
                self.entries_flushed
                    .fetch_add(entries as u64, Ordering::Relaxed);
            }
            EventKind::Refill { entries } => {
                self.entries_refilled
                    .fetch_add(entries as u64, Ordering::Relaxed);
            }
            EventKind::StealIntra { entries, .. } => {
                self.entries_stolen_intra
                    .fetch_add(entries as u64, Ordering::Relaxed);
            }
            EventKind::StealInter { entries, .. } => {
                self.entries_stolen_inter
                    .fetch_add(entries as u64, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// Bounded in-memory event buffer with drop-oldest overflow, so tracing
/// an adversarially large run cannot OOM. The mutex keeps it simple;
/// tracing runs are diagnostic runs, not benchmark runs.
#[derive(Debug)]
pub struct RingBufferTracer {
    inner: Mutex<RingInner>,
}

#[derive(Debug)]
struct RingInner {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
    /// Debug builds assert per-actor cycle monotonicity at record time
    /// (the invariant `validate::check_stream` enforces post-hoc), so a
    /// misbehaving engine fails its own tests instead of producing a
    /// stream the race detector rejects later.
    #[cfg(debug_assertions)]
    last_cycle: std::collections::HashMap<(u32, u32), u64>,
}

impl RingBufferTracer {
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferTracer {
            inner: Mutex::new(RingInner {
                buf: VecDeque::with_capacity(capacity.min(1 << 20)),
                capacity,
                dropped: 0,
                #[cfg(debug_assertions)]
                last_cycle: std::collections::HashMap::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.lock().buf.drain(..).collect()
    }

    /// Copies the buffered events without clearing them.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.lock().buf.iter().copied().collect()
    }

    /// Events discarded (oldest-first) because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    pub fn len(&self) -> usize {
        self.lock().buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().buf.is_empty()
    }
}

impl Tracer for RingBufferTracer {
    const ENABLED: bool = true;

    fn record(&self, ev: TraceEvent) {
        let mut g = self.lock();
        #[cfg(debug_assertions)]
        {
            let prev = g
                .last_cycle
                .insert((ev.block, ev.warp), ev.cycle)
                .unwrap_or(0);
            debug_assert!(
                ev.cycle >= prev,
                "cycle went backwards on actor ({}, {}): {} -> {}",
                ev.block,
                ev.warp,
                prev,
                ev.cycle,
            );
        }
        if g.buf.len() == g.capacity {
            g.buf.pop_front();
            g.dropped += 1;
        }
        g.buf.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PhaseKind;

    fn ev(cycle: u64, block: u32, warp: u32, kind: EventKind) -> TraceEvent {
        TraceEvent {
            cycle,
            block,
            warp,
            kind,
        }
    }

    #[test]
    fn null_tracer_is_disabled() {
        const { assert!(!NullTracer::ENABLED) };
        // emit must not call record; this would be a type error to observe
        // directly, so just exercise the path.
        emit(&NullTracer, || unreachable!("closure must not run"));
    }

    #[test]
    fn counting_tracer_counts_by_kind_and_block() {
        let t = CountingTracer::new(2);
        emit(&t, || ev(0, 0, 0, EventKind::Push { vertex: 9 }));
        emit(&t, || ev(1, 1, 0, EventKind::Push { vertex: 10 }));
        emit(&t, || ev(2, 1, 1, EventKind::Push { vertex: 11 }));
        emit(&t, || ev(3, 0, 0, EventKind::Pop { vertex: 9 }));
        emit(&t, || ev(4, 0, 0, EventKind::Flush { entries: 32 }));
        emit(&t, || {
            ev(
                5,
                0,
                1,
                EventKind::StealIntra {
                    victim_warp: 0,
                    entries: 4,
                },
            )
        });
        emit(&t, || {
            ev(
                6,
                1,
                0,
                EventKind::StealInter {
                    victim_block: 0,
                    entries: 8,
                },
            )
        });
        emit(&t, || {
            ev(
                7,
                1,
                0,
                EventKind::KernelPhase {
                    phase: PhaseKind::Finish,
                },
            )
        });
        let s = t.snapshot();
        assert_eq!(s.pushes, 3);
        assert_eq!(s.pops, 1);
        assert_eq!(s.flushes, 1);
        assert_eq!(s.steals_intra, 1);
        assert_eq!(s.steals_inter, 1);
        assert_eq!(s.kernel_phases, 1);
        assert_eq!(s.pushes_per_block, vec![1, 2]);
        assert_eq!(s.entries_flushed, 32);
        assert_eq!(s.entries_stolen_intra, 4);
        assert_eq!(s.entries_stolen_inter, 8);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let t = RingBufferTracer::new(3);
        for i in 0..5u64 {
            t.record(ev(i, 0, 0, EventKind::WarpIdle));
        }
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.len(), 3);
        let cycles: Vec<u64> = t.drain().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 2);
    }
}
