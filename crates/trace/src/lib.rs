//! # db-trace — structured event tracing for the DiggerBees engines
//!
//! The paper's claims are dynamics claims: how often warps steal, where
//! flush/refill traffic goes, how evenly tasks spread across blocks
//! (Fig. 8/9). This crate is the observability layer that makes those
//! dynamics visible without perturbing them:
//!
//! * [`TraceEvent`] / [`EventKind`] — the typed event model. Every event
//!   carries block/warp/cycle provenance.
//! * [`Tracer`] — the sink abstraction. Engines are generic over
//!   `T: Tracer` and emit through [`emit`], which guards on the
//!   associated `const ENABLED`; with [`NullTracer`] the entire
//!   instrumentation folds away at compile time (the criterion ring
//!   benches are the watchdog for this zero-overhead guarantee).
//! * [`CountingTracer`] — lock-free aggregate counters, including the
//!   per-block Push histogram Fig. 9 is derived from.
//! * [`RingBufferTracer`] — bounded drop-oldest buffer for full event
//!   streams; adversarial runs cannot OOM the tracer.
//! * [`chrome`] — Chrome-trace / Perfetto JSON exporter (one track per
//!   block, one lane per warp) with a parser for round-trip tests.
//! * [`csv`] — flat CSV exporter for the figure harness, with the
//!   inverse parser for post-hoc analysis tools.
//! * [`json`] — the dependency-free JSON document model the exporters
//!   are built on (the workspace builds offline, without serde).
//! * [`validate`] — stream well-formedness checks (balanced kernel
//!   phases, per-actor cycle monotonicity) that `db-check`'s race
//!   detector requires of its input.

pub mod chrome;
pub mod csv;
pub mod event;
pub mod json;
pub mod tracer;
pub mod validate;

pub use event::{EventKind, PhaseKind, ServeOp, TraceEvent};
pub use tracer::{emit, CounterSnapshot, CountingTracer, NullTracer, RingBufferTracer, Tracer};
