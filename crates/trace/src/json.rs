//! Minimal JSON document model: writer and recursive-descent parser.
//!
//! The workspace builds offline with no serde, so the exporters and the
//! machine-model round-trip serialize through this module. Object key
//! order is preserved (insertion order), which keeps emitted traces
//! stable and diffable.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Value {
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    pub fn num(n: impl Into<f64>) -> Value {
        Value::Num(n.into())
    }

    /// u64 → Num; exact for values below 2^53, which covers cycle counts
    /// in practice (a 2 GHz device would need ~52 days to overflow).
    pub fn u64(n: u64) -> Value {
        Value::Num(n as f64)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    pub fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(*n, out),
            Value::Str(s) => write_str(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    pub fn parse(input: &str) -> Result<Value, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after document"));
        }
        Ok(v)
    }
}

fn write_num(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no NaN/Inf; null is the conventional degradation.
        out.push_str("null");
    }
}

fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("invalid number '{text}'")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::Value;

    #[test]
    fn round_trip_document() {
        let doc = Value::Obj(vec![
            ("name".into(), Value::str("H100 \"flagship\"\n")),
            ("sm_count".into(), Value::u64(132)),
            ("clock_ghz".into(), Value::Num(1.83)),
            ("tma".into(), Value::Bool(true)),
            ("extra".into(), Value::Null),
            (
                "xs".into(),
                Value::Arr(vec![Value::u64(1), Value::Num(-2.5), Value::Bool(false)]),
            ),
        ]);
        let text = doc.to_json();
        let back = Value::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("sm_count").unwrap().as_u64(), Some(132));
        assert_eq!(
            back.get("name").unwrap().as_str(),
            Some("H100 \"flagship\"\n")
        );
        assert_eq!(back.get("xs").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Value::parse(" { \"a\" : [ 1 , 2.5e1 , \"x\\u0041\\u00e9\" ] } ").unwrap();
        let xs = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(xs[0].as_u64(), Some(1));
        assert_eq!(xs[1].as_f64(), Some(25.0));
        assert_eq!(xs[2].as_str(), Some("xAé"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("").is_err());
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("[1] trailing").is_err());
        assert!(Value::parse("nul").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::u64(42).to_json(), "42");
        assert_eq!(Value::Num(2.5).to_json(), "2.5");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }
}
