//! The typed event model.
//!
//! Every event carries full provenance — which block, which warp, at what
//! cycle — so a trace can be replayed onto a per-block / per-warp timeline.
//! The simulated engines stamp DES cycles; the native engines stamp
//! nanoseconds since kernel start. Both are monotone per warp lane, which
//! is the only property the exporters rely on.

/// Marks the boundaries of a traced kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    Start,
    Finish,
}

/// What happened. Payloads carry the quantities the paper's figures are
/// built from: vertices for push/pop, entry counts for bulk transfers,
/// victim identity for steals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A task (vertex) was pushed onto this warp's stack.
    Push { vertex: u32 },
    /// A task was popped and its expansion completed.
    Pop { vertex: u32 },
    /// HotRing overflow: `entries` tasks moved to the ColdSeg.
    Flush { entries: u32 },
    /// HotRing underflow: `entries` tasks moved back from the ColdSeg.
    Refill { entries: u32 },
    /// Intra-block steal from `victim_warp`'s HotRing tail.
    StealIntra { victim_warp: u32, entries: u32 },
    /// Inter-block steal from block `victim_block`'s ColdSeg bottom.
    StealInter { victim_block: u32, entries: u32 },
    /// A steal attempt that found no work or lost the race.
    StealFail { victim: u32 },
    /// The warp went idle (no local work, entering steal scan).
    WarpIdle,
    /// Kernel phase boundary.
    KernelPhase { phase: PhaseKind },
}

impl EventKind {
    /// Number of distinct kinds (for counter arrays).
    pub const COUNT: usize = 9;

    /// Dense index for counter arrays; stable across releases only
    /// within one trace file (the name, not the index, is exported).
    pub fn index(&self) -> usize {
        match self {
            EventKind::Push { .. } => 0,
            EventKind::Pop { .. } => 1,
            EventKind::Flush { .. } => 2,
            EventKind::Refill { .. } => 3,
            EventKind::StealIntra { .. } => 4,
            EventKind::StealInter { .. } => 5,
            EventKind::StealFail { .. } => 6,
            EventKind::WarpIdle => 7,
            EventKind::KernelPhase { .. } => 8,
        }
    }

    /// Display name used by both exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Push { .. } => "Push",
            EventKind::Pop { .. } => "Pop",
            EventKind::Flush { .. } => "Flush",
            EventKind::Refill { .. } => "Refill",
            EventKind::StealIntra { .. } => "StealIntra",
            EventKind::StealInter { .. } => "StealInter",
            EventKind::StealFail { .. } => "StealFail",
            EventKind::WarpIdle => "WarpIdle",
            EventKind::KernelPhase { .. } => "KernelPhase",
        }
    }

    /// Name → kind index, the inverse of `name()` over indices.
    pub fn index_of_name(name: &str) -> Option<usize> {
        Some(match name {
            "Push" => 0,
            "Pop" => 1,
            "Flush" => 2,
            "Refill" => 3,
            "StealIntra" => 4,
            "StealInter" => 5,
            "StealFail" => 6,
            "WarpIdle" => 7,
            "KernelPhase" => 8,
            _ => return None,
        })
    }
}

/// One timestamped, located event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// DES cycle (sim engines) or nanoseconds since start (native engines).
    pub cycle: u64,
    /// Owning block (SM) — CPU baselines use one block per worker.
    pub block: u32,
    /// Warp lane within the block (0 for CPU workers).
    pub warp: u32,
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_named() {
        let kinds = [
            EventKind::Push { vertex: 0 },
            EventKind::Pop { vertex: 0 },
            EventKind::Flush { entries: 0 },
            EventKind::Refill { entries: 0 },
            EventKind::StealIntra {
                victim_warp: 0,
                entries: 0,
            },
            EventKind::StealInter {
                victim_block: 0,
                entries: 0,
            },
            EventKind::StealFail { victim: 0 },
            EventKind::WarpIdle,
            EventKind::KernelPhase {
                phase: PhaseKind::Start,
            },
        ];
        assert_eq!(kinds.len(), EventKind::COUNT);
        for (i, k) in kinds.iter().enumerate() {
            assert_eq!(k.index(), i);
            assert_eq!(EventKind::index_of_name(k.name()), Some(i));
        }
        assert_eq!(EventKind::index_of_name("Bogus"), None);
    }
}
